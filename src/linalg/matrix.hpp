// Dense row-major double matrix plus the BLAS-2/3 style kernels used by the
// PCA pipeline (multiply, Gram matrix, transpose, norms).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace spca {

/// Dense real matrix, row-major storage.
class Matrix final {
 public:
  Matrix() = default;

  /// Zero-initialized `rows x cols` matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The `n x n` identity.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diagonal(const Vector& d);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws ContractViolation when out of range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of row `r`.
  [[nodiscard]] std::span<double> row_span(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row_span(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies of a row / column as vectors.
  [[nodiscard]] Vector row(std::size_t r) const;
  [[nodiscard]] Vector col(std::size_t c) const;

  void set_row(std::size_t r, const Vector& v);
  void set_col(std::size_t c, const Vector& v);

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scalar) noexcept;

  [[nodiscard]] friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(Matrix lhs, double scalar) noexcept {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(double scalar, Matrix rhs) noexcept {
    rhs *= scalar;
    return rhs;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product A*B; inner dimensions must agree.
[[nodiscard]] Matrix multiply(const Matrix& a, const Matrix& b);

/// Matrix-vector product A*x.
[[nodiscard]] Vector multiply(const Matrix& a, const Vector& x);

/// x^T * A (returned as a vector of length A.cols()).
[[nodiscard]] Vector multiply_transposed(const Vector& x, const Matrix& a);

/// A^T.
[[nodiscard]] Matrix transpose(const Matrix& a);

/// Gram matrix A^T * A, computed symmetrically (the PCA covariance kernel).
[[nodiscard]] Matrix gram(const Matrix& a);

/// Frobenius norm |A|_F.
[[nodiscard]] double frobenius_norm(const Matrix& a) noexcept;

/// Largest absolute entry.
[[nodiscard]] double max_abs(const Matrix& a) noexcept;

/// Max absolute entry difference between equally-shaped matrices.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace spca
