// Column statistics and centering for data matrices: the "adjust X into Y
// with zero column mean" step of Sec. III-B.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Mean of each column of `a` (length a.cols()).
[[nodiscard]] Vector column_means(const Matrix& a);

/// Population variance of each column (normalized by n, matching eq. 10's
/// unnormalized sum-of-squares divided by n where needed by callers).
[[nodiscard]] Vector column_variances(const Matrix& a);

/// Returns `a` with each column shifted to zero mean — the Y matrix built
/// from the raw measurement matrix X.
[[nodiscard]] Matrix center_columns(const Matrix& a);

/// Sample covariance-like Gram matrix Y^T Y of the centered data.
[[nodiscard]] Matrix centered_gram(const Matrix& a);

/// Online mean/variance accumulator (Welford) used for summary statistics in
/// the evaluation harness.
class RunningStats final {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sum of squared deviations from the mean (the V of eq. 10).
  [[nodiscard]] double sum_squared_deviations() const noexcept { return m2_; }
  /// Population variance (divides by n); 0 for fewer than 2 samples.
  [[nodiscard]] double variance_population() const noexcept;
  /// Sample variance (divides by n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double variance_sample() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spca
