// Householder QR factorization and least-squares solve.
//
// Used by the synthetic-trace generator's trend fitting and by tests as an
// independent check on the Jacobi-based decompositions.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Thin QR factorization A = Q R with A of shape (n x m), n >= m.
struct Qr {
  /// Orthonormal columns, n x m.
  Matrix q;
  /// Upper triangular, m x m.
  Matrix r;
};

/// Computes the thin QR factorization of `a` via Householder reflections.
/// Precondition: a.rows() >= a.cols().
[[nodiscard]] Qr qr(const Matrix& a);

/// Solves the least-squares problem min |A x - b|_2 via QR.
/// Throws NumericalError if A is (numerically) rank deficient.
[[nodiscard]] Vector solve_least_squares(const Matrix& a, const Vector& b);

/// Back-substitution for an upper-triangular system R x = y.
[[nodiscard]] Vector solve_upper_triangular(const Matrix& r, const Vector& y);

}  // namespace spca
