#include "linalg/vector.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

double& Vector::at(std::size_t i) {
  SPCA_EXPECTS(i < data_.size());
  return data_[i];
}

double Vector::at(std::size_t i) const {
  SPCA_EXPECTS(i < data_.size());
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  SPCA_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  SPCA_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  SPCA_EXPECTS(scalar != 0.0);
  return *this *= 1.0 / scalar;
}

double dot(const Vector& a, const Vector& b) {
  SPCA_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm(const Vector& v) noexcept { return std::sqrt(norm_squared(v)); }

double norm_squared(const Vector& v) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) sum += v[i] * v[i];
  return sum;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  SPCA_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void normalize(Vector& v) {
  const double n = norm(v);
  if (!(n > 0.0) || !std::isfinite(n)) {
    throw NumericalError("normalize: vector has zero or non-finite norm");
  }
  v /= n;
}

}  // namespace spca
