#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/qr.hpp"

namespace spca {

namespace {

/// Sum of squares of off-diagonal entries — the Jacobi convergence measure.
double off_diagonal_norm_squared(const Matrix& a) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      sum += 2.0 * a(i, j) * a(i, j);
    }
  }
  return sum;
}

}  // namespace

EigenSym eigen_symmetric(const Matrix& input, int max_sweeps) {
  SPCA_EXPECTS(input.rows() == input.cols());
  SPCA_EXPECTS(max_sweeps > 0);
  const std::size_t n = input.rows();

  Matrix a = input;
  Matrix v = Matrix::identity(n);
  if (n == 0) return {Vector{}, v};

  const double frob2 = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) s += a(i, j) * a(i, j);
    return s;
  }();
  // Relative tolerance on the off-diagonal mass; 0 matrices converge at
  // once. 1e-26 leaves the off-diagonal norm at ~1e-13 of the Frobenius
  // norm — eigenvalues accurate to ~1e-13 relative, orders beyond what the
  // detection thresholds resolve — while sparing the near-converged endgame
  // sweeps that dominate a warm-started solve (Jacobi converges
  // quadratically, so each extra decade of tolerance costs a full sweep).
  const double tol2 = frob2 * 1e-26;

  // Per-element rotation threshold: an entry whose square is below
  // tol2 / n^2 contributes at most tol2 * (n-1)/n in total even if every
  // off-diagonal entry sits right at the threshold, so skipping those
  // rotations cannot stall convergence — and it turns the near-diagonal
  // sweeps of a warm-started solve into O(n^2) scans instead of O(n^3)
  // rotation work.
  const double skip2 = tol2 / (static_cast<double>(n) * static_cast<double>(n));

  int sweep = 0;
  while (off_diagonal_norm_squared(a) > tol2) {
    if (++sweep > max_sweeps) {
      throw NumericalError("eigen_symmetric: Jacobi failed to converge");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq * apq <= skip2) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Stable computation of the rotation angle (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // A <- J^T A J applied to rows/columns p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i) > a(j, j);
  });

  EigenSym out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  out.sweeps = sweep;
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, k) = v(i, order[k]);
    }
  }
  return out;
}

EigenSym eigen_symmetric_warm(const Matrix& a, const Matrix& warm_basis,
                              int max_sweeps, int warm_sweeps) {
  SPCA_EXPECTS(a.rows() == a.cols());
  SPCA_EXPECTS(warm_basis.rows() == a.rows() &&
               warm_basis.cols() == a.cols());
  SPCA_EXPECTS(warm_sweeps > 0);
  // Rotate into the warm basis: B = V^T A V is near-diagonal when V is
  // close to A's eigenbasis, so the inner Jacobi finishes almost at once.
  const Matrix b =
      multiply(transpose(warm_basis), multiply(a, warm_basis));
  try {
    EigenSym inner = eigen_symmetric(b, std::min(max_sweeps, warm_sweeps));
    EigenSym out;
    out.values = std::move(inner.values);
    out.vectors = multiply(warm_basis, inner.vectors);
    out.sweeps = inner.sweeps;
    return out;
  } catch (const NumericalError&) {
    // Degenerate or heavily rotated spectra can leave B far from diagonal;
    // the cold path on the original matrix is then both cheaper and more
    // accurate than grinding out the rotated problem.
    EigenSym out = eigen_symmetric(a, max_sweeps);
    out.sweeps += std::min(max_sweeps, warm_sweeps);
    out.warm_fallback = true;
    return out;
  }
}

EigenSym eigen_top_k(const Matrix& a, std::size_t k, double tol,
                     int max_iters, std::uint64_t seed) {
  SPCA_EXPECTS(a.rows() == a.cols());
  SPCA_EXPECTS(k >= 1 && k <= a.rows());
  SPCA_EXPECTS(tol > 0.0);
  SPCA_EXPECTS(max_iters > 0);
  const std::size_t m = a.rows();

  // Deterministic pseudo-random start block, orthonormalized.
  Matrix q(m, k);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      q(i, j) = static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
    }
  }
  q = qr(q).q;

  const double a_norm = frobenius_norm(a);
  if (a_norm == 0.0) {
    EigenSym out;
    out.values = Vector(k);
    out.vectors = q;
    return out;
  }

  for (int iter = 0; iter < max_iters; ++iter) {
    const Matrix aq = multiply(a, q);
    // Residual of the current invariant-subspace candidate.
    const Matrix h = multiply(transpose(q), aq);  // k x k Rayleigh quotient
    const Matrix residual = aq - multiply(q, h);
    q = qr(aq).q;
    if (frobenius_norm(residual) <= tol * a_norm) break;
  }

  // Diagonalize the small Rayleigh quotient for the final pairs.
  const Matrix aq = multiply(a, q);
  const Matrix h = multiply(transpose(q), aq);
  const EigenSym small = eigen_symmetric(h);
  EigenSym out;
  out.values = small.values;
  out.vectors = multiply(q, small.vectors);
  return out;
}

}  // namespace spca
