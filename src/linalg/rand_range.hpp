// Seeded randomized range-finder kernels (Halko/Martinsson/Tropp style).
//
// The NOC refit only needs the top-k principal axes plus enough spectral
// mass accounting to build the Q-statistic threshold; a randomized range
// finder recovers an (k+p)-dimensional dominant subspace of an m x m Gram
// matrix in O(m^2 (k+p)) instead of the O(m^3) full Jacobi solve, and of
// an l x m sketch matrix in O(l m (k+p)). All randomness flows from one
// SplitMix64 stream derived from a caller-supplied seed, so results are
// bit-identical across runs and thread counts (the Gaussian test matrix is
// filled serially; the products use the deterministic parallel kernels).
#pragma once

#include <cstdint>

#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace spca {

/// Fills an `rows x cols` matrix with i.i.d. standard normal entries drawn
/// from a SplitMix64 stream seeded with `seed` (row-major fill order).
[[nodiscard]] Matrix gaussian_test_matrix(std::size_t rows, std::size_t cols,
                                          std::uint64_t seed);

/// Approximate orthonormal basis for the dominant `dim`-dimensional column
/// space of the symmetric PSD matrix `a`: Y = A*Omega followed by
/// `power_iters` re-orthonormalized power iterations Y <- A*orth(Y).
/// Returns an a.rows() x dim orthonormal block.
[[nodiscard]] Matrix rand_range_basis(const Matrix& a, std::size_t dim,
                                      int power_iters, std::uint64_t seed);

/// Top-(k+p) eigenpairs of a symmetric PSD matrix via the randomized range
/// finder: project onto Q = rand_range_basis(a, k+p), diagonalize the small
/// (k+p)x(k+p) Rayleigh quotient exactly, and lift the eigenvectors back.
/// Returns min(k+p, m) values (descending) with an m x dim vector block.
[[nodiscard]] EigenSym rand_eigen_top_k(const Matrix& a, std::size_t k,
                                        std::size_t oversample,
                                        int power_iters, std::uint64_t seed);

/// Truncated SVD of a (typically wide) l x m row matrix `z` keeping the top
/// min(k+p, l, m) right singular pairs: range-find the row space of `z`
/// through Y = Z^T*Omega with power iterations Y <- Z^T(Z*orth(Y)), then
/// solve the small l x dim projected problem exactly. `right` has
/// orthonormal columns (m x dim) and `left` is not materialized.
[[nodiscard]] Svd rand_svd_rows(const Matrix& z, std::size_t k,
                                std::size_t oversample, int power_iters,
                                std::uint64_t seed);

}  // namespace spca
