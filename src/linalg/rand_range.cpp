#include "linalg/rand_range.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "linalg/qr.hpp"
#include "rand/distributions.hpp"
#include "rand/splitmix64.hpp"

namespace spca {

Matrix gaussian_test_matrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Matrix omega(rows, cols);
  SplitMix64 gen(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      omega(i, j) = standard_normal(gen);
    }
  }
  return omega;
}

Matrix rand_range_basis(const Matrix& a, std::size_t dim, int power_iters,
                        std::uint64_t seed) {
  SPCA_EXPECTS(a.rows() == a.cols());
  SPCA_EXPECTS(dim >= 1 && dim <= a.rows());
  SPCA_EXPECTS(power_iters >= 0);
  Matrix y = multiply(a, gaussian_test_matrix(a.cols(), dim, seed));
  // Re-orthonormalize between applications of A: powers of the spectrum
  // collapse the test block onto the leading eigenvector fast enough that
  // the un-orthonormalized columns lose independence in double precision.
  for (int it = 0; it < power_iters; ++it) {
    y = multiply(a, qr(y).q);
  }
  return qr(y).q;
}

EigenSym rand_eigen_top_k(const Matrix& a, std::size_t k,
                          std::size_t oversample, int power_iters,
                          std::uint64_t seed) {
  SPCA_EXPECTS(a.rows() == a.cols());
  SPCA_EXPECTS(k >= 1);
  const std::size_t m = a.rows();
  const std::size_t dim = std::min(k + oversample, m);
  const Matrix q = rand_range_basis(a, dim, power_iters, seed);
  // Exact small solve on the projected Rayleigh quotient.
  const Matrix h = multiply(transpose(q), multiply(a, q));
  EigenSym small = eigen_symmetric(h);
  EigenSym out;
  out.values = std::move(small.values);
  out.vectors = multiply(q, small.vectors);
  out.sweeps = small.sweeps;
  return out;
}

Svd rand_svd_rows(const Matrix& z, std::size_t k, std::size_t oversample,
                  int power_iters, std::uint64_t seed) {
  SPCA_EXPECTS(k >= 1);
  SPCA_EXPECTS(power_iters >= 0);
  const std::size_t l = z.rows();
  const std::size_t m = z.cols();
  SPCA_EXPECTS(l >= 1 && m >= 1);
  const std::size_t dim = std::min({k + oversample, l, m});

  // Range-find the row space of Z: Y = Z^T Omega spans it, power iterations
  // sharpen the split between kept and discarded singular directions.
  const Matrix zt = transpose(z);
  Matrix y = multiply(zt, gaussian_test_matrix(l, dim, seed));
  for (int it = 0; it < power_iters; ++it) {
    y = multiply(zt, multiply(z, qr(y).q));
  }
  const Matrix q = qr(y).q;  // m x dim

  // Small exact SVD of the projected rows B = Z Q (l x dim): Z ~ U S W^T Q^T,
  // so the right singular vectors of Z are Q * W.
  const Matrix b = multiply(z, q);
  Svd small = svd(b, /*want_left=*/false);
  Svd out;
  out.values = std::move(small.values);
  out.right = multiply(q, small.right);
  return out;
}

}  // namespace spca
