#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace spca {

namespace {

/// Minimum multiply-adds per parallel chunk of a Householder update; small
/// trailing blocks run inline (same results either way — each column/row is
/// an independent unit of work).
constexpr std::size_t kMinChunkFlops = 32 * 1024;

std::size_t grain_for(std::size_t flops_per_item) noexcept {
  return std::max<std::size_t>(
      1, kMinChunkFlops / std::max<std::size_t>(1, flops_per_item));
}

}  // namespace

Qr qr(const Matrix& a) {
  SPCA_EXPECTS(a.rows() >= a.cols());
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();

  Matrix work = a;
  // Accumulate Q explicitly by applying the reflectors to an identity block.
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;

  for (std::size_t k = 0; k < m; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm_x = 0.0;
    for (std::size_t i = k; i < n; ++i) norm_x += work(i, k) * work(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;

    const double alpha = (work(k, k) > 0.0) ? -norm_x : norm_x;
    Vector vhh(n);
    vhh[k] = work(k, k) - alpha;
    for (std::size_t i = k + 1; i < n; ++i) vhh[i] = work(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) vnorm2 += vhh[i] * vhh[i];
    if (vnorm2 == 0.0) continue;

    // work <- (I - 2 v v^T / v^T v) * work: columns are independent, and
    // each column's dot product runs over rows in the serial order, so the
    // parallel update is bit-identical to the serial one.
    global_pool().parallel_for(
        k, m,
        [&](std::size_t j_lo, std::size_t j_hi) {
          for (std::size_t j = j_lo; j < j_hi; ++j) {
            double dotv = 0.0;
            for (std::size_t i = k; i < n; ++i) dotv += vhh[i] * work(i, j);
            const double scale = 2.0 * dotv / vnorm2;
            for (std::size_t i = k; i < n; ++i) work(i, j) -= scale * vhh[i];
          }
        },
        grain_for(2 * (n - k)));
    // q <- q * (I - 2 v v^T / v^T v): rows are independent.
    global_pool().parallel_for(
        0, n,
        [&](std::size_t i_lo, std::size_t i_hi) {
          for (std::size_t i = i_lo; i < i_hi; ++i) {
            double dotv = 0.0;
            for (std::size_t j = k; j < n; ++j) dotv += q(i, j) * vhh[j];
            const double scale = 2.0 * dotv / vnorm2;
            for (std::size_t j = k; j < n; ++j) q(i, j) -= scale * vhh[j];
          }
        },
        grain_for(2 * (n - k)));
  }

  Qr out;
  out.q = Matrix(n, m);
  out.r = Matrix(m, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      out.q(i, j) = q(i, j);
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      out.r(i, j) = work(i, j);
    }
  }
  return out;
}

Vector solve_upper_triangular(const Matrix& r, const Vector& y) {
  SPCA_EXPECTS(r.rows() == r.cols() && r.rows() == y.size());
  const std::size_t m = r.rows();
  Vector x(m);
  for (std::size_t ii = m; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < m; ++j) sum -= r(ii, j) * x[j];
    if (r(ii, ii) == 0.0) {
      throw NumericalError("solve_upper_triangular: singular R");
    }
    x[ii] = sum / r(ii, ii);
  }
  return x;
}

Vector solve_least_squares(const Matrix& a, const Vector& b) {
  SPCA_EXPECTS(a.rows() == b.size());
  const Qr f = qr(a);
  // x = R^{-1} Q^T b
  const Vector qtb = multiply_transposed(b, f.q);
  const double diag_min = [&] {
    double d = std::abs(f.r(0, 0));
    for (std::size_t i = 1; i < f.r.rows(); ++i) {
      d = std::min(d, std::abs(f.r(i, i)));
    }
    return d;
  }();
  const double diag_max = [&] {
    double d = 0.0;
    for (std::size_t i = 0; i < f.r.rows(); ++i) {
      d = std::max(d, std::abs(f.r(i, i)));
    }
    return d;
  }();
  if (diag_max == 0.0 || diag_min < 1e-13 * diag_max) {
    throw NumericalError("solve_least_squares: rank-deficient matrix");
  }
  return solve_upper_triangular(f.r, qtb);
}

}  // namespace spca
