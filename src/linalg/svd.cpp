#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

Svd svd(const Matrix& input, bool want_left, int max_sweeps) {
  SPCA_EXPECTS(max_sweeps > 0);
  const std::size_t n = input.rows();
  const std::size_t m = input.cols();

  // Work on A column-by-column: rotate pairs of columns until all are
  // pairwise orthogonal (one-sided Jacobi, Hestenes variant).
  Matrix a = input;
  Matrix v = Matrix::identity(m);

  constexpr double kOrthTol = 1e-14;
  // Columns whose squared norm falls below this floor are numerically zero
  // (they arise when rank < m, e.g. wide sketch matrices); rotating them
  // against rounding noise would never converge.
  const double frob2 = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j) s += a(i, j) * a(i, j);
    return s;
  }();
  const double norm_floor = frob2 * 1e-28;

  bool rotated = (m > 1);
  int sweep = 0;
  while (rotated) {
    if (++sweep > max_sweeps) {
      throw NumericalError("svd: one-sided Jacobi failed to converge");
    }
    rotated = false;
    for (std::size_t p = 0; p + 1 < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          alpha += aip * aip;
          beta += aiq * aiq;
          gamma += aip * aiq;
        }
        if (alpha <= norm_floor || beta <= norm_floor) continue;
        if (std::abs(gamma) <= kOrthTol * std::sqrt(alpha * beta)) continue;
        rotated = true;

        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            (zeta >= 0.0)
                ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                : 1.0 / (zeta - std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < m; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Column norms are the singular values; normalized columns form U.
  Vector sigma(m);
  for (std::size_t j = 0; j < m; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(sum);
  }

  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sigma[i] > sigma[j]; });

  Svd out;
  out.values = Vector(m);
  out.right = Matrix(m, m);
  for (std::size_t k = 0; k < m; ++k) {
    out.values[k] = sigma[order[k]];
    for (std::size_t i = 0; i < m; ++i) {
      out.right(i, k) = v(i, order[k]);
    }
  }
  if (want_left) {
    out.left = Matrix(n, m);
    for (std::size_t k = 0; k < m; ++k) {
      const double sv = out.values[k];
      if (sv <= 0.0) continue;  // null direction: leave the U column zero
      const std::size_t src = order[k];
      for (std::size_t i = 0; i < n; ++i) {
        out.left(i, k) = a(i, src) / sv;
      }
    }
  }
  return out;
}

Matrix svd_reconstruct(const Svd& s) {
  SPCA_EXPECTS(!s.left.empty());
  Matrix scaled = s.left;  // U * diag(sigma)
  for (std::size_t j = 0; j < scaled.cols(); ++j) {
    for (std::size_t i = 0; i < scaled.rows(); ++i) {
      scaled(i, j) *= s.values[j];
    }
  }
  return multiply(scaled, transpose(s.right));
}

}  // namespace spca
