// Thin singular value decomposition via one-sided Jacobi.
//
// The PCA pipeline needs right singular vectors (the principal components)
// and singular values of tall-or-wide data matrices: the full n x m window
// matrix Y for the Lakhina baseline and the l x m sketch matrix Z-hat for
// the paper's method. One-sided Jacobi orthogonalizes the columns in place,
// is simple, backward stable, and — like two-sided Jacobi — computes small
// singular values with high relative accuracy.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Thin SVD A = U diag(sigma) V^T with A of shape (rows x cols).
struct Svd {
  /// Singular values in descending order; length min(rows, cols) ... but see
  /// note: for rows < cols the trailing cols-rows values are exact zeros and
  /// are included so `values.size() == cols` always matches `right.cols()`.
  Vector values;
  /// Left singular vectors (rows x k), orthonormal columns.
  Matrix left;
  /// Right singular vectors (cols x k), orthonormal columns; column j is the
  /// j-th principal component when A is a centered data matrix.
  Matrix right;
};

/// Computes the thin SVD of `a`.
///
/// `want_left` may be set false to skip materializing U (the detection
/// pipeline only needs singular values and right vectors).
/// Throws NumericalError if the sweep limit is exceeded.
[[nodiscard]] Svd svd(const Matrix& a, bool want_left = true,
                      int max_sweeps = 64);

/// Reconstructs U diag(sigma) V^T — used by tests to verify the factorization.
[[nodiscard]] Matrix svd_reconstruct(const Svd& s);

}  // namespace spca
