#include "linalg/stats.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "par/thread_pool.hpp"

namespace spca {

namespace {

/// Minimum elements per parallel chunk of the centering kernels.
constexpr std::size_t kMinChunkElems = 32 * 1024;

std::size_t grain_for(std::size_t elems_per_item) noexcept {
  return std::max<std::size_t>(
      1, kMinChunkElems / std::max<std::size_t>(1, elems_per_item));
}

}  // namespace

Vector column_means(const Matrix& a) {
  SPCA_EXPECTS(a.rows() > 0);
  Vector mean(a.cols());
  // Fan out over columns so each mean[j] accumulates over rows in the serial
  // (ascending) order — bit-identical to the serial sweep.
  global_pool().parallel_for(
      0, a.cols(),
      [&](std::size_t j_lo, std::size_t j_hi) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const auto row = a.row_span(i);
          for (std::size_t j = j_lo; j < j_hi; ++j) mean[j] += row[j];
        }
      },
      grain_for(a.rows()));
  mean /= static_cast<double>(a.rows());
  return mean;
}

Vector column_variances(const Matrix& a) {
  const Vector mean = column_means(a);
  Vector var(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row_span(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  var /= static_cast<double>(a.rows());
  return var;
}

Matrix center_columns(const Matrix& a) {
  const Vector mean = column_means(a);
  Matrix y = a;
  global_pool().parallel_for(
      0, y.rows(),
      [&](std::size_t i_lo, std::size_t i_hi) {
        for (std::size_t i = i_lo; i < i_hi; ++i) {
          auto row = y.row_span(i);
          for (std::size_t j = 0; j < row.size(); ++j) row[j] -= mean[j];
        }
      },
      grain_for(y.cols()));
  return y;
}

Matrix centered_gram(const Matrix& a) { return gram(center_columns(a)); }

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance_population() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::variance_sample() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

}  // namespace spca
