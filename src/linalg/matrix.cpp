#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace spca {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SPCA_EXPECTS(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  SPCA_EXPECTS(r < rows_ && c < cols_);
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  SPCA_EXPECTS(r < rows_ && c < cols_);
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  SPCA_EXPECTS(r < rows_);
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  SPCA_EXPECTS(c < cols_);
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  SPCA_EXPECTS(r < rows_ && v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  SPCA_EXPECTS(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  SPCA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  SPCA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  SPCA_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector multiply(const Matrix& a, const Vector& x) {
  SPCA_EXPECTS(a.cols() == x.size());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    const auto row = a.row_span(i);
    for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

Vector multiply_transposed(const Vector& x, const Matrix& a) {
  SPCA_EXPECTS(a.rows() == x.size());
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto row = a.row_span(i);
    for (std::size_t j = 0; j < row.size(); ++j) y[j] += xi * row[j];
  }
  return y;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

Matrix gram(const Matrix& a) {
  const std::size_t m = a.cols();
  Matrix g(m, m);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row_span(i);
    for (std::size_t p = 0; p < m; ++p) {
      const double rp = row[p];
      if (rp == 0.0) continue;
      for (std::size_t q = p; q < m; ++q) {
        g(p, q) += rp * row[q];
      }
    }
  }
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < p; ++q) {
      g(p, q) = g(q, p);
    }
  }
  return g;
}

double frobenius_norm(const Matrix& a) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

double max_abs(const Matrix& a) noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(a(i, j)));
    }
  }
  return best;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  SPCA_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

}  // namespace spca
