#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "par/thread_pool.hpp"

namespace spca {

namespace {

/// Cache tile edge for the k dimension of the matrix product: 64 rows of B
/// at m <= ~512 columns keep the streamed block inside L2 while the output
/// row stays in L1.
constexpr std::size_t kTileK = 64;

/// Minimum number of multiply-adds a parallel chunk must amortize; below
/// this the fork/join overhead beats the speedup and the kernels run inline
/// (which is also what keeps the tiny fixed-size tests allocation-quiet).
constexpr std::size_t kMinChunkFlops = 32 * 1024;

std::size_t grain_for(std::size_t flops_per_item) noexcept {
  return std::max<std::size_t>(
      1, kMinChunkFlops / std::max<std::size_t>(1, flops_per_item));
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SPCA_EXPECTS(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  SPCA_EXPECTS(r < rows_ && c < cols_);
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  SPCA_EXPECTS(r < rows_ && c < cols_);
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  SPCA_EXPECTS(r < rows_);
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  SPCA_EXPECTS(c < cols_);
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  SPCA_EXPECTS(r < rows_ && v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  SPCA_EXPECTS(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  SPCA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  SPCA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  SPCA_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const std::size_t inner = a.cols();
  const std::size_t n = b.cols();
  // Output rows are independent, so the fan-out is over rows of A; within a
  // chunk the k dimension is tiled (kTileK rows of B stay cache-hot across
  // the chunk's rows) while each c(i, j) still accumulates in ascending k —
  // the same addition sequence as the classic i-k-j loop, so results are
  // bit-identical to the serial kernel at every thread count.
  global_pool().parallel_for(
      0, a.rows(),
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t kk = 0; kk < inner; kk += kTileK) {
          const std::size_t k_end = std::min(kk + kTileK, inner);
          for (std::size_t i = row_lo; i < row_hi; ++i) {
            const auto a_row = a.row_span(i);
            const auto c_row = c.row_span(i);
            for (std::size_t k = kk; k < k_end; ++k) {
              const double aik = a_row[k];
              if (aik == 0.0) continue;
              const auto b_row = b.row_span(k);
              for (std::size_t j = 0; j < n; ++j) {
                c_row[j] += aik * b_row[j];
              }
            }
          }
        }
      },
      grain_for(inner * n));
  return c;
}

Vector multiply(const Matrix& a, const Vector& x) {
  SPCA_EXPECTS(a.cols() == x.size());
  Vector y(a.rows());
  global_pool().parallel_for(
      0, a.rows(),
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          double sum = 0.0;
          const auto row = a.row_span(i);
          for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * x[j];
          y[i] = sum;
        }
      },
      grain_for(a.cols()));
  return y;
}

Vector multiply_transposed(const Vector& x, const Matrix& a) {
  SPCA_EXPECTS(a.rows() == x.size());
  Vector y(a.cols());
  // Fan out over output entries (columns of A): each y[j] accumulates over
  // rows in ascending order with the serial kernel's zero skip, so the
  // per-entry addition sequence — and hence the bits — match serial.
  global_pool().parallel_for(
      0, a.cols(),
      [&](std::size_t col_lo, std::size_t col_hi) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const double xi = x[i];
          if (xi == 0.0) continue;
          const auto row = a.row_span(i);
          for (std::size_t j = col_lo; j < col_hi; ++j) y[j] += xi * row[j];
        }
      },
      grain_for(a.rows()));
  return y;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

Matrix gram(const Matrix& a) {
  const std::size_t m = a.cols();
  Matrix g(m, m);
  // Fan out over output rows p of the upper triangle: every g(p, q) belongs
  // to exactly one chunk and accumulates over data rows in ascending order
  // with the serial kernel's zero skip — bit-identical to serial. Each lane
  // streams the whole matrix once, trading reads (which parallelize) for a
  // deterministic, reduction-free combine.
  global_pool().parallel_for(
      0, m,
      [&](std::size_t p_lo, std::size_t p_hi) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const auto row = a.row_span(i);
          for (std::size_t p = p_lo; p < p_hi; ++p) {
            const double rp = row[p];
            if (rp == 0.0) continue;
            const auto g_row = g.row_span(p);
            for (std::size_t q = p; q < m; ++q) {
              g_row[q] += rp * row[q];
            }
          }
        }
      },
      grain_for(a.rows() * (m / 2 + 1)));
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < p; ++q) {
      g(p, q) = g(q, p);
    }
  }
  return g;
}

double frobenius_norm(const Matrix& a) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

double max_abs(const Matrix& a) noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(a(i, j)));
    }
  }
  return best;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  SPCA_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

}  // namespace spca
