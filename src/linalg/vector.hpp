// Dense double-precision vector with the handful of BLAS-1 style operations
// the PCA pipeline needs. Kept deliberately small: no expression templates,
// no allocator tricks — profiling shows the O(m^2 l) SVD dominates.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace spca {

/// Dense real vector.
class Vector final {
 public:
  Vector() = default;

  /// Zero-initialized vector of dimension `n`.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  Vector(std::size_t n, double fill) : data_(n, fill) {}

  Vector(std::initializer_list<double> values) : data_(values) {}

  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// Bounds-checked access; throws ContractViolation when out of range.
  [[nodiscard]] double& at(std::size_t i);
  [[nodiscard]] double at(std::size_t i) const;

  [[nodiscard]] std::span<double> span() noexcept { return data_; }
  [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  [[nodiscard]] double* begin() noexcept { return data_.data(); }
  [[nodiscard]] double* end() noexcept { return data_.data() + data_.size(); }
  [[nodiscard]] const double* begin() const noexcept { return data_.data(); }
  [[nodiscard]] const double* end() const noexcept {
    return data_.data() + data_.size();
  }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar) noexcept;
  Vector& operator/=(double scalar);

  [[nodiscard]] friend Vector operator+(Vector lhs, const Vector& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend Vector operator-(Vector lhs, const Vector& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend Vector operator*(Vector lhs, double scalar) noexcept {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend Vector operator*(double scalar, Vector rhs) noexcept {
    rhs *= scalar;
    return rhs;
  }

 private:
  std::vector<double> data_;
};

/// Euclidean inner product; dimensions must match.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
[[nodiscard]] double norm(const Vector& v) noexcept;

/// Squared Euclidean norm.
[[nodiscard]] double norm_squared(const Vector& v) noexcept;

/// y += alpha * x (classic axpy); dimensions must match.
void axpy(double alpha, const Vector& x, Vector& y);

/// Normalizes `v` in place to unit L2 norm; throws NumericalError on a
/// (near-)zero vector.
void normalize(Vector& v);

}  // namespace spca
