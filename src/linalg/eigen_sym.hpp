// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Jacobi is the right tool here: the matrices are small (m x m covariance
// matrices with m = number of OD flows, at most a few hundred), it is
// backward stable, and it computes small eigenvalues to high *relative*
// accuracy — which matters because the Q-statistic threshold (eq. 7/22 of
// the paper) is built from the residual eigenvalues sigma_{r+1..m}, the
// smallest ones.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Result of a symmetric eigendecomposition A = V diag(lambda) V^T.
struct EigenSym {
  /// Eigenvalues in descending order.
  Vector values;
  /// Orthonormal eigenvectors as columns, ordered to match `values`.
  Matrix vectors;
  /// Jacobi sweeps the solve actually performed (cold + any warm attempt).
  int sweeps = 0;
  /// True when a warm-started solve abandoned the rotated problem and fell
  /// back to the cold path (rank-deficient / near-degenerate spectra).
  bool warm_fallback = false;
};

/// Decomposes the symmetric matrix `a`.
///
/// Preconditions: `a` is square and numerically symmetric.
/// Throws NumericalError if the sweep limit is exceeded (does not happen for
/// symmetric input; the limit guards against NaN poisoning).
[[nodiscard]] EigenSym eigen_symmetric(const Matrix& a, int max_sweeps = 64);

/// Warm-started variant for streaming use: when `a` differs only slightly
/// from a matrix whose eigenbasis `warm_basis` is known (the sliding-window
/// covariance between consecutive intervals), rotating into that basis
/// first — B = V^T A V — leaves B nearly diagonal, so Jacobi converges in
/// one or two sweeps instead of O(log) of them. Results are identical to
/// the cold solver up to rounding. `warm_basis` must be m x m orthonormal.
///
/// The inner solve runs under a `warm_sweeps` budget: spectra with repeated
/// or near-degenerate eigenvalues rotate the eigenbasis arbitrarily between
/// windows, which can leave B far from diagonal — instead of burning the
/// full sweep limit there, the solve falls back to the cold path on `a` and
/// reports it via `EigenSym::warm_fallback`.
[[nodiscard]] EigenSym eigen_symmetric_warm(const Matrix& a,
                                            const Matrix& warm_basis,
                                            int max_sweeps = 64,
                                            int warm_sweeps = 8);

/// Top-k eigenpairs of a positive semi-definite matrix by orthogonal
/// (simultaneous) iteration: the alternative when only the r leading
/// principal components are needed. Converges linearly with ratio
/// lambda_{k+1}/lambda_k; iteration stops when the invariant-subspace
/// residual |A Q - Q (Q^T A Q)|_F falls below `tol` * |A|_F.
/// Returns k values (descending) and an m x k orthonormal vector block.
///
/// Honest guidance (see micro_linalg): at this library's m <= ~150 the full
/// Jacobi solver is FASTER than orthogonal iteration unless the spectrum
/// decays very steeply — use this when m is large and k << m, or when only
/// a subspace (not the full residual spectrum for the Q-statistic) is
/// needed.
[[nodiscard]] EigenSym eigen_top_k(const Matrix& a, std::size_t k,
                                   double tol = 1e-10, int max_iters = 500,
                                   std::uint64_t seed = 1);

}  // namespace spca
