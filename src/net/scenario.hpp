// Shared deterministic deployment scenario for the socket daemons and the
// transport parity tests.
//
// The monitor and NOC daemons run in separate processes, yet the loopback
// e2e check demands that their joint trajectory is bit-identical to a
// single-process SimNetwork run. That only works if every process derives
// the exact same world — topology, synthetic trace, flow ownership, and
// detector parameters — from the same small config. This module is that
// single source of truth: spca_monitord, spca_nocd, the examples, and the
// tests all call build_scenario() with the same flags and agree by
// construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/sketch_detector.hpp"
#include "dist/message.hpp"
#include "net/transport.hpp"
#include "traffic/flow.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Parameters every process of a deployment must agree on.
struct NetScenarioConfig {
  /// "diamond" (4 routers, 16 OD flows), "abilene" (9 routers, 81 flows),
  /// or "synth<N>" (N-router chorded ring, N^2 flows — scale-out runs).
  std::string topology = "diamond";
  /// Total measurement intervals to replay.
  std::size_t intervals = 96;
  /// Sliding-window length n (also the warm-up length).
  std::size_t window = 24;
  /// Sketch length l.
  std::size_t sketch_rows = 12;
  /// Number of monitor processes (flow j belongs to monitor 1 + j % k).
  std::size_t monitors = 2;
  /// Seed of both the traffic generator and the projection source.
  std::uint64_t seed = 7;
  /// Labelled anomaly episodes injected after warm-up.
  std::size_t anomalies = 4;
  /// Model-fitting strategy of the NOC refit: exact | warm | rsvd | fd.
  std::string model_backend = "warm";
  /// Fusion rule of the ensemble detection plane: off | any | all |
  /// weighted. Anything but "off" makes every monitor run the first-line
  /// scorer and ship kScoreReports, and the NOC fuse them with the
  /// sketch-PCA verdict. Off by default so the wire profile of existing
  /// deployments is unchanged.
  std::string fusion = "off";
};

/// A fully materialized scenario.
struct NetScenario {
  NetScenarioConfig config;
  TraceSet trace;
  SketchDetectorConfig detector;
};

/// Builds the deterministic scenario (same config in any process -> same
/// trace and detector parameters, bit for bit).
[[nodiscard]] NetScenario build_scenario(const NetScenarioConfig& config);

/// The flows owned by the monitor with NodeId `monitor` (1-based; matches
/// DistributedDetector's round-robin: flow j -> monitor 1 + j % k).
[[nodiscard]] std::vector<FlowId> scenario_flows_of(std::size_t num_flows,
                                                    std::size_t num_monitors,
                                                    NodeId monitor);

/// The monitor NodeIds of a deployment: 1..k (the NOC is kNocId = 0).
[[nodiscard]] std::vector<NodeId> scenario_monitor_ids(
    std::size_t num_monitors);

/// One deployment trajectory, in replay order.
struct ScenarioRun {
  /// Intervals whose detection raised an alarm.
  std::vector<std::int64_t> alarm_intervals;
  /// Anomaly distance of every post-warm-up interval.
  std::vector<double> distances;
  /// Fusion trajectory (empty when the scenario runs with fusion "off"):
  /// intervals whose fused ensemble verdict alarmed, and the fused
  /// statistic of every post-warm-up interval. Part of the trajectory the
  /// parity checks compare, so a TCP deployment must fuse bit-identically
  /// to the simulation.
  std::vector<std::int64_t> fused_alarm_intervals;
  std::vector<double> fused_statistics;
  /// Send-side wire accounting.
  NetworkStats stats;
};

/// Runs the scenario single-process over the given transport (SimNetwork by
/// default) and returns the trajectory — the reference the daemons'
/// loopback e2e must reproduce bit-for-bit.
[[nodiscard]] ScenarioRun run_scenario_reference(const NetScenario& scenario,
                                                 Transport* transport =
                                                     nullptr);

/// Declares the shared scenario flags (--topology, --intervals, --window,
/// --sketch-rows, --monitors, --seed, --anomalies, --model-backend,
/// --fusion) on `flags`.
void define_scenario_flags(CliFlags& flags);

/// Reads the scenario flags back; throws InputError on invalid values.
[[nodiscard]] NetScenarioConfig scenario_from_flags(const CliFlags& flags);

}  // namespace spca
