// Transport abstraction of the monitor/NOC protocol: anything that can
// carry serialized `Message`s between nodes and account for the bytes.
//
// Two implementations exist: the in-process `SimNetwork` (dist/) used by the
// simulation benches, and the POSIX-socket `TcpTransport`/`TcpBus` (net/)
// that push the same bytes through real TCP connections. The protocol actors
// (LocalMonitor, Noc, DistributedDetector) only ever see this interface, so
// the detection trajectories are transport-independent by construction — an
// invariant the parity tests assert bit-for-bit.
//
// This header is deliberately header-only: dist/ implements the interface
// and net/ links against dist/ for the message codec, so any out-of-line
// definition here would create a link cycle between the two modules.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "dist/message.hpp"
#include "obs/metrics.hpp"

namespace spca {

/// Cumulative send-side traffic statistics of a transport. Only serialized
/// `Message` payload bytes are counted — TCP framing overhead is tracked
/// separately in the `spca.net.frame_*` metrics — so the numbers are
/// directly comparable between SimNetwork and the socket transports.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Per message type (indexed by MessageType value 1..6).
  std::array<std::uint64_t, 7> messages_by_type{};
  std::array<std::uint64_t, 7> bytes_by_type{};
};

/// Aggregates per-process stats (the multi-process deployment's total is
/// the sum over the NOC and every monitor, comparable to a single
/// SimNetwork's stats).
inline NetworkStats& operator+=(NetworkStats& a, const NetworkStats& b) {
  a.messages += b.messages;
  a.bytes += b.bytes;
  for (std::size_t i = 0; i < a.messages_by_type.size(); ++i) {
    a.messages_by_type[i] += b.messages_by_type[i];
    a.bytes_by_type[i] += b.bytes_by_type[i];
  }
  return a;
}

inline bool operator==(const NetworkStats& a, const NetworkStats& b) {
  return a.messages == b.messages && a.bytes == b.bytes &&
         a.messages_by_type == b.messages_by_type &&
         a.bytes_by_type == b.bytes_by_type;
}

/// Accounts one sent message in `stats` and mirrors it into the global
/// `spca.net.*` metrics. Every Transport implementation calls this exactly
/// once per send, with `wire_size = serialize(msg).size()`, which keeps the
/// double-entry between NetworkStats and the metrics registry intact.
inline void account_send(NetworkStats& stats, const Message& msg,
                         std::size_t wire_size) {
  static Counter& messages =
      MetricsRegistry::global().counter("spca.net.messages");
  static Counter& bytes_tx =
      MetricsRegistry::global().counter("spca.net.bytes_tx");
  // Indexed by MessageType value; slot 0 is unused.
  static Counter* const bytes_by_type[7] = {
      nullptr,
      &MetricsRegistry::global().counter("spca.net.volume_report_bytes"),
      &MetricsRegistry::global().counter("spca.net.sketch_request_bytes"),
      &MetricsRegistry::global().counter("spca.net.sketch_response_bytes"),
      &MetricsRegistry::global().counter("spca.net.alarm_bytes"),
      &MetricsRegistry::global().counter("spca.net.aggregate_bytes"),
      &MetricsRegistry::global().counter("spca.net.score_report_bytes"),
  };
  ++stats.messages;
  stats.bytes += wire_size;
  const auto type_index = static_cast<std::size_t>(msg.type);
  messages.inc();
  bytes_tx.inc(wire_size);
  if (type_index >= 1 && type_index <= 6) {
    ++stats.messages_by_type[type_index];
    stats.bytes_by_type[type_index] += wire_size;
    bytes_by_type[type_index]->inc(wire_size);
  }
}

/// Carries protocol messages between nodes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Serializes and dispatches `msg` towards `msg.to`.
  virtual void send(const Message& msg) = 0;

  /// Delivers (parses and removes) every message currently queued for
  /// `node`, in arrival order. Non-blocking: returns what has arrived.
  [[nodiscard]] virtual std::vector<Message> drain(NodeId node) = 0;

  /// Removes and returns only the queued messages of `type` for `node`,
  /// leaving others queued (used to consume the NOC's operator alarms
  /// without swallowing concurrently arriving protocol traffic).
  [[nodiscard]] virtual std::vector<Message> take(NodeId node,
                                                  MessageType type) = 0;

  /// True if `node` has queued messages.
  [[nodiscard]] virtual bool has_mail(NodeId node) const = 0;

  /// Blocks until `node` has queued messages or `timeout` elapses; returns
  /// `has_mail(node)`. The synchronous SimNetwork never waits.
  virtual bool wait_for_mail(NodeId node, std::chrono::milliseconds timeout) {
    (void)timeout;
    return has_mail(node);
  }

  [[nodiscard]] virtual const NetworkStats& stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;
};

}  // namespace spca
