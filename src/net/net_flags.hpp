// Readers for the shared transport tuning flags (define_transport_flags in
// common/cli). They live in net/ because common/ must not depend on the
// socket layer's RetryPolicy type.
#pragma once

#include <chrono>

#include "common/cli.hpp"
#include "net/socket.hpp"

namespace spca {

/// Builds the outbound dial retry policy from --connect-attempts,
/// --connect-timeout-ms, --backoff-initial-ms, --backoff-max-ms.
/// Throws InputError on non-positive values.
[[nodiscard]] RetryPolicy retry_policy_from_flags(const CliFlags& flags);

/// Reads --io-timeout-ms. Throws InputError on non-positive values.
[[nodiscard]] std::chrono::milliseconds io_timeout_from_flags(
    const CliFlags& flags);

}  // namespace spca
