#include "net/tcp_bus.hpp"

#include <cerrno>
#include <cstring>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/scoped_timer.hpp"

#include <poll.h>
#include <sys/socket.h>

namespace spca {

namespace {

constexpr std::chrono::milliseconds kIoTimeout{10000};

}  // namespace

TcpBus::TcpBus(const std::vector<NodeId>& nodes) {
  SPCA_EXPECTS(!nodes.empty());
  TcpListener listener("127.0.0.1", 0);
  for (const NodeId node : nodes) {
    Endpoint ep;
    ep.tx = TcpStream::connect("127.0.0.1", listener.port(), kIoTimeout);
    ep.rx = listener.accept(kIoTimeout);
    if (!ep.rx.valid()) {
      throw TransportError("TcpBus: loopback accept timed out");
    }
    const bool inserted = endpoints_.emplace(node, std::move(ep)).second;
    SPCA_EXPECTS(inserted);
  }
}

TcpBus::Endpoint& TcpBus::endpoint_for(NodeId node) {
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    throw TransportError("TcpBus: unknown node " + std::to_string(node));
  }
  return it->second;
}

const TcpBus::Endpoint& TcpBus::endpoint_for(NodeId node) const {
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    throw TransportError("TcpBus: unknown node " + std::to_string(node));
  }
  return it->second;
}

void TcpBus::pump_available(Endpoint& ep) {
  std::byte buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n =
        ep.rx.recv_some(buf, sizeof(buf), std::chrono::milliseconds(0));
    if (n <= 0) return;  // nothing queued right now
    ep.decoder.feed(buf, static_cast<std::size_t>(n));
    while (ep.decoder.has_frame()) {
      Frame frame = ep.decoder.pop();
      if (frame.type != FrameType::kMessage) {
        throw ProtocolError("TcpBus: unexpected control frame");
      }
      static Counter& bytes_rx =
          MetricsRegistry::global().counter("spca.net.bytes_rx");
      bytes_rx.inc(frame.payload.size());
      ep.inbox.push_back(deserialize(frame.payload));
      SPCA_EXPECTS(ep.in_flight > 0);
      --ep.in_flight;
    }
  }
}

void TcpBus::pump_all(Endpoint& ep) {
  std::byte buf[64 * 1024];
  while (ep.in_flight > 0) {
    // The frames are already written to the connected peer socket, so a
    // bounded blocking read always makes progress.
    const std::ptrdiff_t n = ep.rx.recv_some(buf, sizeof(buf), kIoTimeout);
    if (n == 0) throw TransportError("TcpBus: loopback connection closed");
    if (n < 0) throw TransportError("TcpBus: loopback read timed out");
    ep.decoder.feed(buf, static_cast<std::size_t>(n));
    while (ep.decoder.has_frame()) {
      Frame frame = ep.decoder.pop();
      if (frame.type != FrameType::kMessage) {
        throw ProtocolError("TcpBus: unexpected control frame");
      }
      static Counter& bytes_rx =
          MetricsRegistry::global().counter("spca.net.bytes_rx");
      bytes_rx.inc(frame.payload.size());
      ep.inbox.push_back(deserialize(frame.payload));
      SPCA_EXPECTS(ep.in_flight > 0);
      --ep.in_flight;
    }
  }
}

void TcpBus::send(const Message& msg) {
  static Histogram& send_seconds =
      MetricsRegistry::global().histogram("spca.net.send_seconds");
  Endpoint& ep = endpoint_for(msg.to);
  std::vector<std::byte> wire = serialize(msg);
  account_send(stats_, msg, wire.size());
  const std::vector<std::byte> frame = encode_frame(FrameType::kMessage, wire);
  const ScopedTimer timer(send_seconds);
  ++ep.in_flight;
  // Write in bounded slices; if the destination's socket buffer fills up
  // (nobody drained it yet), pull its pending frames into the inbox to make
  // room — the single-threaded analogue of the receiver's reader thread.
  const auto deadline = std::chrono::steady_clock::now() + kIoTimeout;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t rc = ::send(ep.tx.native_handle(), frame.data() + sent,
                              frame.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Destination buffers full: absorb its pending frames, then wait for
      // writability up to the remaining send deadline instead of spinning.
      pump_available(ep);
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::milliseconds::zero()) {
        throw TransportError("TcpBus: send timed out");
      }
      pollfd p{};
      p.fd = ep.tx.native_handle();
      p.events = POLLOUT;
      (void)::poll(&p, 1, static_cast<int>(remaining.count()));
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw TransportError(std::string("TcpBus: send failed: ") +
                         std::strerror(errno));
  }
}

std::vector<Message> TcpBus::drain(NodeId node) {
  Endpoint& ep = endpoint_for(node);
  pump_all(ep);
  std::vector<Message> out(std::make_move_iterator(ep.inbox.begin()),
                           std::make_move_iterator(ep.inbox.end()));
  ep.inbox.clear();
  return out;
}

std::vector<Message> TcpBus::take(NodeId node, MessageType type) {
  Endpoint& ep = endpoint_for(node);
  pump_all(ep);
  std::vector<Message> out;
  std::deque<Message> rest;
  for (Message& msg : ep.inbox) {
    if (msg.type == type) {
      out.push_back(std::move(msg));
    } else {
      rest.push_back(std::move(msg));
    }
  }
  ep.inbox.swap(rest);
  return out;
}

bool TcpBus::has_mail(NodeId node) const {
  const Endpoint& ep = endpoint_for(node);
  return ep.in_flight > 0 || !ep.inbox.empty();
}

}  // namespace spca
