#include "net/scenario.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "detect/fusion.hpp"
#include "dist/distributed_detector.hpp"
#include "synth/anomaly_injector.hpp"
#include "synth/traffic_model.hpp"
#include "traffic/topology.hpp"

namespace spca {

namespace {

// Deterministic synthetic topology for scale-out runs: a ring of `routers`
// PoPs with cross-ring chords (a chorded cycle — enough path diversity for
// the gravity-model traffic while staying O(n) links). "synth15" gives
// 15 routers and 225 OD flows, the smallest synth size that fits the
// 200-monitor hierarchy scenario.
Topology synth_topology(std::size_t routers) {
  if (routers < 4 || routers > 64) {
    throw InputError("synth topology: routers must be in [4, 64]");
  }
  std::vector<std::string> names;
  names.reserve(routers);
  for (std::size_t i = 0; i < routers; ++i) {
    names.push_back("P" + std::to_string(i));
  }
  std::vector<Link> links;
  const auto id = [](std::size_t i) { return static_cast<RouterId>(i); };
  for (std::size_t i = 0; i < routers; ++i) {
    links.push_back(Link{id(i), id((i + 1) % routers), 1.0});
  }
  for (std::size_t i = 0; i < routers / 2; ++i) {
    links.push_back(Link{id(i), id(i + routers / 2), 1.5});
  }
  return Topology(std::move(names), std::move(links));
}

Topology scenario_topology(const std::string& name) {
  if (name == "diamond") {
    return Topology({"A", "B", "C", "D"},
                    {Link{0, 1, 1.0}, Link{1, 2, 1.0}, Link{2, 3, 1.0},
                     Link{3, 0, 1.0}, Link{0, 2, 1.5}});
  }
  if (name == "abilene") return abilene_topology();
  if (name.rfind("synth", 0) == 0) {
    const std::string arg = name.substr(5);
    std::size_t routers = 0;
    for (const char c : arg) {
      if (c < '0' || c > '9') {
        throw InputError("synth topology: expected synth<routers>, got " +
                         name);
      }
      routers = routers * 10 + static_cast<std::size_t>(c - '0');
    }
    return synth_topology(routers);
  }
  throw InputError("unknown scenario topology: " + name +
                   " (expected diamond, abilene, or synth<routers>)");
}

}  // namespace

NetScenario build_scenario(const NetScenarioConfig& config) {
  if (config.intervals <= config.window) {
    throw InputError("scenario: intervals must exceed the window");
  }
  if (config.monitors == 0) {
    throw InputError("scenario: at least one monitor required");
  }
  const Topology topology = scenario_topology(config.topology);
  if (config.monitors > topology.num_od_flows()) {
    throw InputError("scenario: more monitors than flows");
  }

  TrafficModelConfig traffic;
  traffic.num_intervals = config.intervals;
  traffic.interval_seconds = 300.0;
  traffic.seed = config.seed;
  traffic.network_noise = 0.08;
  traffic.flow_noise = 0.10;
  traffic.measurement_noise = 0.03;
  TraceSet trace = generate_traffic(topology, traffic);
  if (config.anomalies > 0) {
    AnomalyInjector injector(topology, config.seed ^ 0xabcdef);
    (void)injector.inject_mixture(
        trace, config.anomalies, static_cast<std::int64_t>(config.window),
        static_cast<std::int64_t>(config.intervals));
  }

  SketchDetectorConfig detector;
  detector.window = config.window;
  detector.epsilon = 0.01;
  detector.sketch_rows = config.sketch_rows;
  detector.alpha = 0.01;
  detector.rank_policy = RankPolicy::fixed(3);
  detector.seed = config.seed;
  detector.lazy = true;
  detector.backend.kind = parse_model_backend(config.model_backend);
  return NetScenario{config, std::move(trace), detector};
}

std::vector<FlowId> scenario_flows_of(std::size_t num_flows,
                                      std::size_t num_monitors,
                                      NodeId monitor) {
  SPCA_EXPECTS(monitor >= 1 && monitor <= num_monitors);
  std::vector<FlowId> flows;
  for (std::size_t j = monitor - 1; j < num_flows; j += num_monitors) {
    flows.push_back(static_cast<FlowId>(j));
  }
  return flows;
}

std::vector<NodeId> scenario_monitor_ids(std::size_t num_monitors) {
  std::vector<NodeId> ids;
  ids.reserve(num_monitors);
  for (std::size_t k = 0; k < num_monitors; ++k) {
    ids.push_back(static_cast<NodeId>(k + 1));
  }
  return ids;
}

ScenarioRun run_scenario_reference(const NetScenario& scenario,
                                   Transport* transport) {
  DistributedDetector detector(scenario.trace.num_flows(),
                               scenario.config.monitors, scenario.detector,
                               /*noc_hosted_sketches=*/false, transport);
  const bool fusion = scenario.config.fusion != "off";
  if (fusion) {
    FusionConfig config;
    config.rule = parse_fusion_rule(scenario.config.fusion);
    detector.enable_fusion(config);
  }
  ScenarioRun run;
  for (std::size_t t = 0; t < scenario.config.intervals; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), scenario.trace.row(t));
    if (!det.ready) continue;
    run.distances.push_back(det.distance);
    if (det.alarm) run.alarm_intervals.push_back(static_cast<std::int64_t>(t));
    if (fusion) {
      const FusedDecision& fused = detector.last_fused();
      run.fused_statistics.push_back(fused.statistic);
      if (fused.alarm) {
        run.fused_alarm_intervals.push_back(static_cast<std::int64_t>(t));
      }
    }
  }
  run.stats = detector.network_stats();
  return run;
}

void define_scenario_flags(CliFlags& flags) {
  flags.define("topology", "diamond",
               "Scenario topology: diamond (16 flows), abilene (81 flows), "
               "or synth<N> (N routers, N^2 flows)");
  flags.define("intervals", "96", "Measurement intervals to replay");
  flags.define("window", "24", "Sliding-window length n (also the warm-up)");
  flags.define("sketch-rows", "12", "Sketch length l");
  flags.define("monitors", "2", "Number of monitor processes");
  flags.define("seed", "7", "Deterministic world seed");
  flags.define("anomalies", "4", "Anomaly episodes injected after warm-up");
  flags.define("model-backend", "warm",
               "NOC model backend: exact | warm | rsvd | fd");
  flags.define("fusion", "off",
               "Ensemble fusion rule: off | any | all | weighted");
}

NetScenarioConfig scenario_from_flags(const CliFlags& flags) {
  NetScenarioConfig config;
  config.topology = flags.str("topology");
  config.intervals = static_cast<std::size_t>(flags.integer("intervals"));
  config.window = static_cast<std::size_t>(flags.integer("window"));
  config.sketch_rows = static_cast<std::size_t>(flags.integer("sketch-rows"));
  config.monitors = static_cast<std::size_t>(flags.integer("monitors"));
  config.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  config.anomalies = static_cast<std::size_t>(flags.integer("anomalies"));
  config.model_backend = flags.str("model-backend");
  (void)parse_model_backend(config.model_backend);  // validate early
  config.fusion = flags.str("fusion");
  if (config.fusion != "off") {
    (void)parse_fusion_rule(config.fusion);  // validate early
  }
  return config;
}

}  // namespace spca
