#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "rand/splitmix64.hpp"

namespace spca {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only (the daemons bind and dial 127.0.0.1 or explicit
  // addresses); name resolution would drag in blocking getaddrinfo.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("invalid IPv4 address: " + host);
  }
  return addr;
}

/// Waits for `events` on `fd`; returns false on timeout.
bool poll_one(int fd, short events, std::chrono::milliseconds timeout) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return rc > 0;
  }
}

}  // namespace

SocketFd& SocketFd::operator=(SocketFd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

void SocketFd::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream::TcpStream(SocketFd fd) : fd_(std::move(fd)) {
  if (fd_.valid()) {
    set_nonblocking(fd_.get());
    // The protocol exchanges small latency-sensitive frames; never batch.
    const int one = 1;
    (void)::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds timeout) {
  const sockaddr_in addr = make_addr(host, port);
  SocketFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  if (rc < 0) {
    if (!poll_one(fd.get(), POLLOUT, timeout)) {
      throw TransportError("connect " + host + ":" + std::to_string(port) +
                           ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw TransportError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(err));
    }
  }
  return TcpStream(std::move(fd));
}

void TcpStream::send_all(const std::byte* data, std::size_t n,
                         std::chrono::milliseconds timeout) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd_.get(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_one(fd_.get(), POLLOUT, timeout)) {
        throw TransportError("send_all: write timed out");
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

std::ptrdiff_t TcpStream::recv_some(std::byte* out, std::size_t n,
                                    std::chrono::milliseconds timeout) {
  for (;;) {
    const ssize_t rc = ::recv(fd_.get(), out, n, 0);
    if (rc > 0) return static_cast<std::ptrdiff_t>(rc);
    if (rc == 0) return 0;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_one(fd_.get(), POLLIN, timeout)) return -1;
      continue;
    }
    if (errno == EINTR) continue;
    // A reset peer is EOF-equivalent for the reader: the connection died.
    if (errno == ECONNRESET) return 0;
    throw_errno("recv");
  }
}

void TcpStream::shutdown_send() noexcept {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

void TcpStream::shutdown_both() noexcept {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_RDWR);
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  fd_ = SocketFd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  // A deep backlog absorbs the connect storm of hundreds of monitors
  // dialing one NOC at start-up (the kernel clamps to somaxconn).
  if (::listen(fd_.get(), 512) < 0) throw_errno("listen");
  set_nonblocking(fd_.get());
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpStream TcpListener::accept(std::chrono::milliseconds timeout) {
  if (!fd_.valid()) throw TransportError("accept on a closed listener");
  if (!poll_one(fd_.get(), POLLIN, timeout)) return TcpStream{};
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return TcpStream{};
    }
    throw_errno("accept");
  }
  return TcpStream(SocketFd(fd));
}

TcpStream connect_with_retry(
    const std::string& host, std::uint16_t port, const RetryPolicy& policy,
    const std::function<void(std::size_t, std::chrono::milliseconds)>&
        attempt_sink) {
  SplitMix64 jitter_rng(policy.seed);
  double delay_ms = static_cast<double>(policy.backoff_initial.count());
  std::string last_error;
  for (std::size_t attempt = 1;
       policy.max_attempts == 0 || attempt <= policy.max_attempts;
       ++attempt) {
    try {
      return TcpStream::connect(host, port, policy.connect_timeout);
    } catch (const TransportError& e) {
      last_error = e.what();
    }
    // Exponential backoff with uniform multiplicative jitter in
    // [1 - jitter, 1 + jitter], so a herd of reconnecting monitors spreads
    // out instead of hammering the NOC in sync.
    const double unit =
        static_cast<double>(jitter_rng() >> 11) * 0x1.0p-53;
    const double scale = 1.0 + policy.jitter * (2.0 * unit - 1.0);
    const auto delay = std::chrono::milliseconds(
        static_cast<std::int64_t>(delay_ms * scale));
    if (attempt_sink) attempt_sink(attempt, delay);
    std::this_thread::sleep_for(delay);
    delay_ms = std::min(delay_ms * policy.backoff_multiplier,
                        static_cast<double>(policy.backoff_max.count()));
  }
  throw TransportError("connect_with_retry " + host + ":" +
                       std::to_string(port) + ": attempts exhausted (" +
                       last_error + ")");
}

}  // namespace spca
