// Readiness multiplexer behind the TcpTransport event loop: watches many
// file descriptors and reports only the ready ones, so dispatch cost is
// O(ready), not O(watched).
//
// Two backends implement the same level-triggered semantics:
//   * kEpoll — epoll(7); the kernel keeps the interest set, wait() returns
//     the ready descriptors directly. Linux only.
//   * kPoll  — a poll(2) set kept in user space; wait() scans the pollfd
//     array once and collects the ready descriptors into the caller's
//     ready list. Portable fallback, and the comparison baseline for the
//     BM_TransportDrain bench sweep.
//
// kAuto resolves to epoll where available. The backend is chosen at
// construction and never changes, so a bench can pin either path.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace spca {

enum class PollerBackend {
  kAuto,
  kEpoll,
  kPoll,
};

/// One ready descriptor. `readable` covers data and EOF (level-triggered
/// read readiness); `error` is a socket error or hangup — the owner should
/// read it to completion and drop it.
struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool error = false;
};

class Poller final {
 public:
  explicit Poller(PollerBackend backend = PollerBackend::kAuto);
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Starts watching `fd` for read readiness. The fd must stay open until
  /// remove(); the poller never closes descriptors it watches.
  void add(int fd);

  /// Stops watching `fd`; a no-op if it is not watched.
  void remove(int fd);

  /// Waits up to `timeout` for readiness and appends the ready descriptors
  /// to `out` (cleared first). Returns the number of ready descriptors.
  std::size_t wait(std::vector<PollerEvent>& out,
                   std::chrono::milliseconds timeout);

  /// Descriptors currently watched.
  [[nodiscard]] std::size_t watched() const noexcept;

  /// The backend actually in use ("epoll" or "poll"), for logs and benches.
  [[nodiscard]] const char* backend_name() const noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace spca
