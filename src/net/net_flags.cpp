#include "net/net_flags.hpp"

#include <string>

#include "common/error.hpp"

namespace spca {

namespace {

std::int64_t positive(const CliFlags& flags, const std::string& name) {
  const std::int64_t v = flags.integer(name);
  if (v <= 0) {
    throw InputError("flag --" + name + " must be positive, got " +
                     std::to_string(v));
  }
  return v;
}

}  // namespace

RetryPolicy retry_policy_from_flags(const CliFlags& flags) {
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<std::size_t>(positive(flags, "connect-attempts"));
  policy.connect_timeout =
      std::chrono::milliseconds(positive(flags, "connect-timeout-ms"));
  policy.backoff_initial =
      std::chrono::milliseconds(positive(flags, "backoff-initial-ms"));
  policy.backoff_max =
      std::chrono::milliseconds(positive(flags, "backoff-max-ms"));
  if (policy.backoff_max < policy.backoff_initial) {
    throw InputError("--backoff-max-ms must be >= --backoff-initial-ms");
  }
  return policy;
}

std::chrono::milliseconds io_timeout_from_flags(const CliFlags& flags) {
  return std::chrono::milliseconds(positive(flags, "io-timeout-ms"));
}

}  // namespace spca
