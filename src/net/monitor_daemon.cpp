#include "net/monitor_daemon.hpp"

#include <chrono>
#include <sstream>

#include "common/checkpoint_store.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "dist/local_monitor.hpp"
#include "ingest/interval_source.hpp"
#include "net/frame.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"
#include "obs/status_server.hpp"

namespace spca {

namespace {

constexpr std::chrono::milliseconds kWaitSlice{100};

std::string monitor_store_name(NodeId id) {
  return "monitor" + std::to_string(id);
}

}  // namespace

MonitorDaemon::MonitorDaemon(MonitorDaemonConfig config)
    : config_(std::move(config)) {}

MonitorDaemonResult MonitorDaemon::run() {
  const auto recovery_begin = std::chrono::steady_clock::now();

  // Live status endpoint, up before the (possibly long) warm rebuild so an
  // operator can watch recovery progress; polled from every wait slice of
  // the protocol loop below.
  std::atomic<std::int64_t> current_interval{-1};
  std::atomic<bool> restored_flag{false};
  std::optional<StatusServer> status;
  if (config_.status_port >= 0) {
    StatusServerConfig scfg;
    scfg.host = config_.status_host;
    scfg.port = config_.status_port;
    scfg.healthy = [this] { return !stop_.load(std::memory_order_relaxed); };
    scfg.health_body = [this, &current_interval, &restored_flag] {
      std::ostringstream oss;
      oss << "{\"healthy\":"
          << (stop_.load(std::memory_order_relaxed) ? "false" : "true")
          << ",\"role\":\"monitor\",\"id\":"
          << static_cast<int>(config_.monitor_id) << ",\"interval\":"
          << current_interval.load(std::memory_order_relaxed)
          << ",\"restored_from_checkpoint\":"
          << (restored_flag.load(std::memory_order_relaxed) ? "true" : "false")
          << "}\n";
      return oss.str();
    };
    status.emplace(std::move(scfg));
    if (config_.on_status_port) config_.on_status_port(status->port());
    log_info("monitord ", config_.monitor_id, ": status endpoint on ",
             config_.status_host, ":", status->port());
  }
  const auto poll_telemetry = [&] {
    if (status) status->poll();
    (void)FlightRecorder::global().poll_dump_request();
  };

  const NetScenario scenario = build_scenario(config_.scenario);
  const std::size_t m = scenario.trace.num_flows();
  const SketchDetectorConfig& det = scenario.detector;
  SPCA_EXPECTS(config_.monitor_id >= 1 &&
               config_.monitor_id <= config_.scenario.monitors);
  SPCA_EXPECTS(config_.first_interval >= kAutoInterval);
  SPCA_EXPECTS(config_.checkpoint_every >= 0);

  const ProjectionSource source =
      det.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(det.seed, det.window)
          : ProjectionSource(det.projection, det.seed, det.sparsity);
  const std::vector<FlowId> flows =
      scenario_flows_of(m, config_.scenario.monitors, config_.monitor_id);

  const auto end = config_.last_interval >= 0
                       ? config_.last_interval
                       : static_cast<std::int64_t>(config_.scenario.intervals);

  std::optional<CheckpointStore> store;
  if (!config_.checkpoint_dir.empty()) {
    store.emplace(config_.checkpoint_dir,
                  monitor_store_name(config_.monitor_id));
  }

  // Pick the sketch state and the interval at which to join the protocol.
  // Preference order: restore a snapshot (and absorb only the tail up to
  // the join interval), else absorb the full prefix from scratch.
  MonitorDaemonResult result;
  std::optional<LocalMonitor> monitor;
  std::int64_t join =
      config_.first_interval == kAutoInterval ? 0 : config_.first_interval;
  std::int64_t absorb_from = 0;
  if (store) {
    if (auto snap = store->load_latest()) {
      const auto seq = static_cast<std::int64_t>(snap->seq);
      if (config_.first_interval != kAutoInterval &&
          seq > config_.first_interval) {
        log_warn("monitord ", config_.monitor_id, ": snapshot ", snap->path,
                 " is ahead of --first-interval ", config_.first_interval,
                 "; rebuilding from scratch");
      } else {
        try {
          LocalMonitor restored = LocalMonitor::restore_state(snap->payload);
          if (restored.id() != config_.monitor_id ||
              restored.flows() != flows) {
            throw ProtocolError(
                "snapshot belongs to a different monitor or deployment");
          }
          if (restored.first_line_enabled() !=
              (config_.scenario.fusion != "off")) {
            // A fusion-off snapshot has no scorer baselines; restoring it
            // into a fusion deployment (or vice versa) would fork the score
            // trajectory. Rebuild from scratch instead.
            throw ProtocolError(
                "snapshot fusion state differs from the configured scenario");
          }
          monitor.emplace(std::move(restored));
          if (config_.first_interval == kAutoInterval) join = seq;
          absorb_from = seq;
          result.restored_from_checkpoint = true;
          restored_flag.store(true, std::memory_order_relaxed);
          log_info("monitord ", config_.monitor_id, ": restored interval ",
                   seq, " from ", snap->path);
        } catch (const Error& e) {
          log_warn("monitord ", config_.monitor_id, ": ignoring snapshot ",
                   snap->path, ": ", e.what());
        }
      }
    }
  }
  SPCA_EXPECTS(join >= 0 && join <= end);
  if (!monitor) {
    monitor.emplace(config_.monitor_id, flows, det.window, det.epsilon,
                    det.sketch_rows, source);
    // Ensemble plane: under any fusion rule the monitor scores its owned
    // volumes each interval and ships a kScoreReport with the volume
    // report. The warm-rebuild replay below advances the scorer too (it
    // rides flush_interval), so a restarted monitor scores bit-identically.
    if (config_.scenario.fusion != "off") monitor->enable_first_line();
  }
  // Deployment topology, not checkpointed state: a restored monitor must be
  // re-pointed at its upstream (regional NOC in the hierarchical tree).
  monitor->set_upstream(config_.upstream_id);

  // Volume source: the scenario's synthetic trace, or a streamed record
  // file when --ingest-records is set. Both the warm rebuild and the live
  // loop walk intervals strictly in order, which is all the streaming
  // source supports; intervals skipped by a checkpoint restore are drained
  // and discarded.
  std::optional<RecordIntervalSource> record_source;
  std::vector<double> record_row;
  std::int64_t streamed_to = -1;
  if (!config_.ingest_records.empty()) {
    record_source.emplace(config_.ingest_records);
    if (record_source->header().num_flows != m ||
        record_source->header().num_intervals !=
            config_.scenario.intervals) {
      throw InputError("monitord: record file '" + config_.ingest_records +
                       "' does not match the scenario shape");
    }
  }
  const auto volume_row = [&](std::int64_t t) -> const double* {
    if (!record_source) return nullptr;
    std::int64_t got = 0;
    while (streamed_to < t) {
      if (!record_source->next_interval(record_row, got)) {
        throw InputError("monitord: record stream ended before interval " +
                         std::to_string(t));
      }
      streamed_to = got;
    }
    return record_row.data();
  };

  // Warm rebuild: replay the intervals the NOC has already accounted for,
  // without sending anything. After this the sketch state is exactly what a
  // never-restarted monitor would hold entering `join`.
  // (Not span-instrumented: a never-restarted run has no rebuild, and the
  // sim and TCP span trees must stay structurally identical.)
  for (std::int64_t t = absorb_from; t < join; ++t) {
    poll_telemetry();
    const double* row = volume_row(t);
    for (const FlowId flow : flows) {
      monitor->ingest_volume(
          flow, row != nullptr ? row[flow]
                               : scenario.trace.volumes()(
                                     static_cast<std::size_t>(t), flow));
    }
    monitor->absorb_interval(t);
    ++result.intervals_absorbed;
  }
  result.start_interval = join;
  if (result.restored_from_checkpoint || result.intervals_absorbed > 0) {
    const std::chrono::duration<double> recovery =
        std::chrono::steady_clock::now() - recovery_begin;
    MetricsRegistry::global()
        .histogram("spca.fault.recovery_seconds")
        .record(recovery.count());
  }

  TcpTransportConfig tcp;
  tcp.node_id = config_.monitor_id;
  tcp.peers.push_back(
      {config_.upstream_id, config_.noc_host, config_.noc_port});
  tcp.retry = config_.retry;
  tcp.io_timeout = config_.io_timeout;
  TcpTransport transport(tcp);
  transport.start();
  std::unique_ptr<Transport> wrapped;
  if (config_.wrap_transport) wrapped = config_.wrap_transport(transport);
  Transport& bus = wrapped ? *wrapped : static_cast<Transport&>(transport);
  log_info("monitord ", config_.monitor_id, ": connected to ",
           config_.noc_host, ":", config_.noc_port, ", intervals [", join,
           ", ", end, ")");

  // The last snapshot-consistent state: `consistent_blob` is the sketch
  // state entering interval `consistent_seq`, captured only at lock-step
  // quiet points (right after the NOC advanced past an interval). A stop
  // mid-interval persists this, never a state the NOC has not accounted.
  std::vector<std::byte> consistent_blob;
  std::int64_t consistent_seq = join;
  if (store) consistent_blob = monitor->save_state();

  for (std::int64_t t = join; t < end; ++t) {
    if (stop_.load(std::memory_order_relaxed)) break;
    current_interval.store(t, std::memory_order_relaxed);
    const double* row = volume_row(t);
    {
      const ScopedSpan span("monitor" + std::to_string(config_.monitor_id),
                            kStageIngestAbsorb, t);
      for (const FlowId flow : flows) {
        monitor->ingest_volume(
            flow, row != nullptr ? row[flow]
                                 : scenario.trace.volumes()(
                                       static_cast<std::size_t>(t), flow));
      }
    }
    monitor->end_interval(t, bus);
    ++result.intervals_reported;
    std::uint64_t seen_reconnects = transport.reconnects();

    // Serve sketch pulls until the NOC finishes interval t. Requests for t
    // precede advance(t) on the connection (TCP preserves the NOC's send
    // order), so by the time we move on every pull has been answered.
    bool advanced = false;
    auto waited = std::chrono::milliseconds(0);
    while (!advanced && !stop_.load(std::memory_order_relaxed)) {
      for (const Message& msg : bus.drain(config_.monitor_id)) {
        monitor->handle_request(msg, bus);
      }
      while (auto control = transport.poll_control()) {
        if (control->type != FrameType::kAdvance) continue;
        if (decode_interval_payload(control->payload) >= t) advanced = true;
      }
      if (advanced) break;
      if (!transport.wait_for_activity(kWaitSlice)) {
        waited += kWaitSlice;
        if (waited >= config_.io_timeout) {
          throw TransportError("monitord: no advance from the NOC within "
                               "the I/O timeout");
        }
        // A NOC that died after our report was sent never saw it; once the
        // link is back (a restarted NOC daemon on the same endpoint), the
        // report must go out again or neither side can make progress. The
        // NOC deduplicates per-monitor reports, so the retry is safe even
        // if the original copy also made it through.
        try {
          transport.ensure_connected(config_.upstream_id);
          const std::uint64_t rc = transport.reconnects();
          if (rc != seen_reconnects) {
            seen_reconnects = rc;
            monitor->resend_report(bus);
            log_info("monitord ", config_.monitor_id,
                     ": NOC link re-established, re-sent interval ", t);
          }
        } catch (const TransportError&) {
          // NOC still restarting; the io_timeout above bounds the retries.
        }
      }
      poll_telemetry();
    }
    if (!advanced) break;
    if (config_.after_advance) config_.after_advance(t, transport);
    FlightRecorder::global().capture_metrics(
        "monitor" + std::to_string(config_.monitor_id) + "_interval", t);
    if (store) {
      consistent_blob = monitor->save_state();
      consistent_seq = t + 1;
      if (config_.checkpoint_every > 0 &&
          (t + 1) % config_.checkpoint_every == 0) {
        store->write(static_cast<std::uint64_t>(consistent_seq),
                     consistent_blob);
      }
    }
  }

  if (store && config_.final_checkpoint) {
    result.final_checkpoint_path = store->write(
        static_cast<std::uint64_t>(consistent_seq), consistent_blob);
    log_info("monitord ", config_.monitor_id, ": final checkpoint (interval ",
             consistent_seq, ") at ", result.final_checkpoint_path);
  }

  result.reconnects = transport.reconnects();
  result.stats = transport.stats();
  transport.stop();
  log_info("monitord ", config_.monitor_id, ": done after ",
           result.intervals_reported, " intervals (", result.reconnects,
           " reconnects)");
  return result;
}

}  // namespace spca
