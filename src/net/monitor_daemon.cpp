#include "net/monitor_daemon.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "dist/local_monitor.hpp"
#include "net/frame.hpp"

namespace spca {

namespace {

constexpr std::chrono::milliseconds kWaitSlice{100};

}  // namespace

MonitorDaemon::MonitorDaemon(MonitorDaemonConfig config)
    : config_(std::move(config)) {}

MonitorDaemonResult MonitorDaemon::run() {
  const NetScenario scenario = build_scenario(config_.scenario);
  const std::size_t m = scenario.trace.num_flows();
  const SketchDetectorConfig& det = scenario.detector;
  SPCA_EXPECTS(config_.monitor_id >= 1 &&
               config_.monitor_id <= config_.scenario.monitors);

  const ProjectionSource source =
      det.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(det.seed, det.window)
          : ProjectionSource(det.projection, det.seed, det.sparsity);
  const std::vector<FlowId> flows =
      scenario_flows_of(m, config_.scenario.monitors, config_.monitor_id);
  LocalMonitor monitor(config_.monitor_id, flows, det.window, det.epsilon,
                       det.sketch_rows, source);

  const auto end = config_.last_interval >= 0
                       ? config_.last_interval
                       : static_cast<std::int64_t>(config_.scenario.intervals);
  SPCA_EXPECTS(config_.first_interval >= 0 && config_.first_interval <= end);

  // Warm rebuild: replay the intervals the NOC has already accounted for,
  // without sending anything. After this the sketch state is exactly what a
  // never-restarted monitor would hold entering first_interval.
  for (std::int64_t t = 0; t < config_.first_interval; ++t) {
    for (const FlowId flow : flows) {
      monitor.ingest_volume(
          flow, scenario.trace.volumes()(static_cast<std::size_t>(t), flow));
    }
    monitor.absorb_interval(t);
  }

  TcpTransportConfig tcp;
  tcp.node_id = config_.monitor_id;
  tcp.peers.push_back({kNocId, config_.noc_host, config_.noc_port});
  tcp.retry = config_.retry;
  tcp.io_timeout = config_.io_timeout;
  TcpTransport transport(tcp);
  transport.start();
  log_info("monitord ", config_.monitor_id, ": connected to ",
           config_.noc_host, ":", config_.noc_port, ", intervals [",
           config_.first_interval, ", ", end, ")");

  MonitorDaemonResult result;
  for (std::int64_t t = config_.first_interval; t < end; ++t) {
    if (stop_.load(std::memory_order_relaxed)) break;
    for (const FlowId flow : flows) {
      monitor.ingest_volume(
          flow, scenario.trace.volumes()(static_cast<std::size_t>(t), flow));
    }
    monitor.end_interval(t, transport);
    ++result.intervals_reported;

    // Serve sketch pulls until the NOC finishes interval t. Requests for t
    // precede advance(t) on the connection (TCP preserves the NOC's send
    // order), so by the time we move on every pull has been answered.
    bool advanced = false;
    auto waited = std::chrono::milliseconds(0);
    while (!advanced && !stop_.load(std::memory_order_relaxed)) {
      for (const Message& msg : transport.drain(config_.monitor_id)) {
        monitor.handle_request(msg, transport);
      }
      while (auto control = transport.poll_control()) {
        if (control->type != FrameType::kAdvance) continue;
        if (decode_interval_payload(control->payload) >= t) advanced = true;
      }
      if (advanced) break;
      if (!transport.wait_for_activity(kWaitSlice)) {
        waited += kWaitSlice;
        if (waited >= config_.io_timeout) {
          throw TransportError("monitord: no advance from the NOC within "
                               "the I/O timeout");
        }
      }
    }
  }

  result.reconnects = transport.reconnects();
  result.stats = transport.stats();
  transport.stop();
  log_info("monitord ", config_.monitor_id, ": done after ",
           result.intervals_reported, " intervals (", result.reconnects,
           " reconnects)");
  return result;
}

}  // namespace spca
