#include "net/frame.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(v));
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[noreturn]] void frame_error(const char* what) {
  static Counter& errors =
      MetricsRegistry::global().counter("spca.net.frame_errors");
  errors.inc();
  throw ProtocolError(what);
}

}  // namespace

std::vector<std::byte> encode_frame(FrameType type,
                                    const std::vector<std::byte>& payload) {
  if (payload.size() > kMaxFramePayloadBytes) {
    frame_error("encode_frame: payload exceeds kMaxFramePayloadBytes");
  }
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<std::byte>(kWireVersion));
  out.push_back(static_cast<std::byte>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = crc32_update(kCrc32Init, out.data(), kFrameCrcCoverBytes);
  crc = crc32_finish(crc32_update(crc, payload.data(), payload.size()));
  put_u32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> encode_interval_payload(std::int64_t t) {
  std::vector<std::byte> payload(sizeof(t));
  std::memcpy(payload.data(), &t, sizeof(t));
  return payload;
}

std::int64_t decode_interval_payload(const std::vector<std::byte>& payload) {
  if (payload.size() != sizeof(std::int64_t)) {
    frame_error("advance frame: bad payload size");
  }
  std::int64_t t;
  std::memcpy(&t, payload.data(), sizeof(t));
  return t;
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  buffer_.insert(buffer_.end(), data, data + n);
  parse_available();
}

void FrameDecoder::parse_available() {
  std::size_t offset = 0;
  while (buffer_.size() - offset >= kFrameHeaderBytes) {
    const std::byte* header = buffer_.data() + offset;
    if (read_u32(header) != kFrameMagic) {
      frame_error("FrameDecoder: bad magic");
    }
    if (static_cast<std::uint8_t>(header[4]) != kWireVersion) {
      frame_error("FrameDecoder: unsupported wire version");
    }
    const auto type = static_cast<std::uint8_t>(header[5]);
    if (type < 1 || type > 3) {
      frame_error("FrameDecoder: unknown frame type");
    }
    const std::uint32_t length = read_u32(header + 6);
    if (length > kMaxFramePayloadBytes) {
      frame_error("FrameDecoder: frame length exceeds limit");
    }
    if (buffer_.size() - offset - kFrameHeaderBytes < length) {
      break;  // incomplete: wait for more bytes
    }
    const std::uint32_t expected = read_u32(header + kFrameCrcCoverBytes);
    std::uint32_t crc = crc32_update(kCrc32Init, header, kFrameCrcCoverBytes);
    crc = crc32_finish(crc32_update(crc, header + kFrameHeaderBytes, length));
    if (crc != expected) {
      frame_error("FrameDecoder: crc mismatch");
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(header + kFrameHeaderBytes,
                         header + kFrameHeaderBytes + length);
    frames_.push_back(std::move(frame));
    offset += kFrameHeaderBytes + length;
  }
  if (offset > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

Frame FrameDecoder::pop() {
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace spca
