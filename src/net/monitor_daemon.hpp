// Monitor daemon: wraps a LocalMonitor in a TCP event loop. Dials the NOC
// (with retry/backoff), replays its share of the scenario trace, answers
// sketch pulls, and advances intervals in lock-step with the NOC's kAdvance
// frames — which keeps the multi-process trajectory bit-identical to the
// synchronous simulation.
//
// Restart story: a daemon started with first_interval > 0 rebuilds its
// sketch state by absorbing the earlier intervals locally (no messages),
// then reconnects and continues from first_interval. The NOC has already
// accounted those intervals, so the joint trajectory continues unchanged —
// this is what lets a killed monitor rejoin mid-run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/scenario.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"

namespace spca {

/// Monitor daemon configuration.
struct MonitorDaemonConfig {
  NetScenarioConfig scenario;
  /// This monitor's NodeId (1..scenario.monitors).
  NodeId monitor_id = 1;
  /// NOC endpoint to dial.
  std::string noc_host = "127.0.0.1";
  std::uint16_t noc_port = 0;
  /// First interval to report (earlier intervals are absorbed locally).
  std::int64_t first_interval = 0;
  /// One-past-last interval to report; -1 = scenario end. An early stop
  /// exits gracefully after the NOC advanced past the last interval, which
  /// models a planned kill in the restart tests.
  std::int64_t last_interval = -1;
  RetryPolicy retry;
  std::chrono::milliseconds io_timeout{15000};
};

/// What a finished run did.
struct MonitorDaemonResult {
  /// Intervals reported over the wire (excludes absorbed ones).
  std::int64_t intervals_reported = 0;
  /// Connection re-establishments observed by the transport.
  std::uint64_t reconnects = 0;
  /// Send-side wire accounting of this monitor.
  NetworkStats stats;
};

/// The monitor process body (also runnable on a thread in tests).
class MonitorDaemon final {
 public:
  explicit MonitorDaemon(MonitorDaemonConfig config);

  /// Runs to completion (or until request_stop()); returns the run summary.
  /// Throws TransportError if the NOC stays unreachable past the retry
  /// budget or an established connection times out.
  MonitorDaemonResult run();

  /// Asks a running daemon to wind down at the next poll slice (signal-safe
  /// apart from the atomic store; the SIGTERM handler calls this).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  MonitorDaemonConfig config_;
  std::atomic<bool> stop_{false};
};

}  // namespace spca
