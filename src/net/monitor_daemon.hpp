// Monitor daemon: wraps a LocalMonitor in a TCP event loop. Dials the NOC
// (with retry/backoff), replays its share of the scenario trace, answers
// sketch pulls, and advances intervals in lock-step with the NOC's kAdvance
// frames — which keeps the multi-process trajectory bit-identical to the
// synchronous simulation.
//
// Restart story, in order of preference:
//   * checkpoint_dir holds a snapshot and first_interval == kAutoInterval:
//     the monitor restores its full sketch state from the snapshot and
//     resumes at the snapshot's interval — no replay at all (the clean
//     SIGTERM/EOF path, which always writes a final snapshot).
//   * checkpoint_dir holds a snapshot and first_interval is explicit (a
//     crash kill: the operator knows where the NOC is waiting): restore the
//     snapshot, then absorb only the short tail [snapshot, first_interval)
//     locally instead of replaying the whole history.
//   * no usable snapshot: absorb [0, first_interval) — the PR-4 behaviour.
// In every case the NOC has already accounted the skipped intervals, so the
// joint trajectory continues bit-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/scenario.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"

namespace spca {

/// first_interval sentinel: resume from the latest valid snapshot in
/// checkpoint_dir, or 0 when there is none.
inline constexpr std::int64_t kAutoInterval = -1;

/// Monitor daemon configuration.
struct MonitorDaemonConfig {
  NetScenarioConfig scenario;
  /// This monitor's NodeId (1..scenario.monitors).
  NodeId monitor_id = 1;
  /// Upstream endpoint to dial: the root NOC in the flat deployment, or
  /// this monitor's regional NOC in the hierarchical one.
  std::string noc_host = "127.0.0.1";
  std::uint16_t noc_port = 0;
  /// NodeId of that upstream (kNocId, or a region_node_id). Reports and
  /// sketch responses are addressed to it.
  NodeId upstream_id = kNocId;
  /// First interval to report (earlier intervals come from the snapshot
  /// and/or local absorption). kAutoInterval resumes from the checkpoint.
  std::int64_t first_interval = 0;
  /// One-past-last interval to report; -1 = scenario end. An early stop
  /// exits gracefully after the NOC advanced past the last interval, which
  /// models a planned kill in the restart tests.
  std::int64_t last_interval = -1;
  RetryPolicy retry;
  std::chrono::milliseconds io_timeout{15000};
  /// Stream the monitor's interval volumes from this flow-record file
  /// (binary or CSV, see ingest/record_file.hpp) instead of the scenario's
  /// synthetic trace. The file must carry the scenario's full flow count and
  /// interval count; a file exported from the scenario trace reproduces the
  /// synthetic trajectory bit-identically. Empty = use the scenario trace.
  std::string ingest_records;
  /// Durable snapshot directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Snapshot cadence in intervals (0 = shutdown snapshot only).
  std::int64_t checkpoint_every = 0;
  /// Write a snapshot at shutdown (SIGTERM/EOF/last_interval). Chaos tests
  /// disable this to model a crash kill that only leaves periodic snapshots.
  bool final_checkpoint = true;
  /// Fault-injection hook: wraps the TCP transport for all Message-level
  /// traffic (reports, pulls, responses). Control frames and connection
  /// management stay on the raw transport. Keeps net/ ignorant of fault/.
  std::function<std::unique_ptr<Transport>(Transport&)> wrap_transport;
  /// Fault-injection hook: runs right after kAdvance(t) was received — a
  /// protocol-quiet point where a connection reset cannot lose in-flight
  /// frames (fault/chaos uses it to flap the NOC link deterministically).
  std::function<void(std::int64_t, TcpTransport&)> after_advance;
  /// Live status endpoint (obs/status_server.hpp): /metrics, /metrics.json,
  /// /healthz, /spans. -1 disables; 0 binds an ephemeral port (reported via
  /// on_status_port). Polled from the daemon's wait slices, so a slow
  /// scraper can never stall the protocol.
  int status_port = -1;
  std::string status_host = "127.0.0.1";
  /// Called with the bound status port right after the server comes up.
  std::function<void(int)> on_status_port;
};

/// What a finished run did.
struct MonitorDaemonResult {
  /// Intervals reported over the wire (excludes absorbed ones).
  std::int64_t intervals_reported = 0;
  /// Connection re-establishments observed by the transport.
  std::uint64_t reconnects = 0;
  /// Send-side wire accounting of this monitor.
  NetworkStats stats;
  /// True when the sketch state came from a checkpoint snapshot.
  bool restored_from_checkpoint = false;
  /// Intervals absorbed locally before joining (tail after a restore, or
  /// the full prefix without one).
  std::int64_t intervals_absorbed = 0;
  /// First interval reported over the wire.
  std::int64_t start_interval = 0;
  /// Path of the shutdown snapshot ("" when checkpointing is off).
  std::string final_checkpoint_path;
};

/// The monitor process body (also runnable on a thread in tests).
class MonitorDaemon final {
 public:
  explicit MonitorDaemon(MonitorDaemonConfig config);

  /// Runs to completion (or until request_stop()); returns the run summary.
  /// Throws TransportError if the NOC stays unreachable past the retry
  /// budget or an established connection times out.
  MonitorDaemonResult run();

  /// Asks a running daemon to wind down at the next poll slice (signal-safe
  /// apart from the atomic store; the SIGTERM handler calls this).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  MonitorDaemonConfig config_;
  std::atomic<bool> stop_{false};
};

}  // namespace spca
