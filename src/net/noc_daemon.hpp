// NOC daemon: wraps the Noc protocol engine in a TCP server loop. Listens
// for the monitors, assembles each interval's volume reports, runs the lazy
// detection protocol (pulling sketches over the wire when the stale model
// raises a hand), and releases the monitors into the next interval with a
// kAdvance frame — the flow control that keeps the multi-process run in the
// simulation's lock-step, and therefore bit-identical to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/scenario.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"

namespace spca {

/// NOC daemon configuration.
struct NocDaemonConfig {
  NetScenarioConfig scenario;
  /// Hierarchical deployment: number of regional NOCs between the monitors
  /// and this root. 0 = flat (monitors dial the root directly). When > 0
  /// the root's children are the region nodes: phase traffic arrives as
  /// kAggregate messages (dist/aggregate.hpp) and kAdvance goes to the
  /// regions, which relay it to their shards. The detection trajectory is
  /// bit-identical either way.
  std::size_t regions = 0;
  /// Listen endpoint (port 0 picks an ephemeral port, see bound_port()).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// How long to wait for a missing monitor (report or sketch response)
  /// before giving up on the run. Generous by default: a killed monitor
  /// needs time to restart, rebuild, and reconnect.
  std::chrono::milliseconds interval_deadline{60000};
  std::chrono::milliseconds io_timeout{15000};
  /// Durable snapshot directory; empty disables checkpointing. With a valid
  /// snapshot present, run() restores the model and resumes at the
  /// snapshot's interval instead of starting from 0.
  std::string checkpoint_dir;
  /// Snapshot cadence in intervals (0 = shutdown snapshot only).
  std::int64_t checkpoint_every = 0;
  /// Stop after completing intervals < last_interval (-1 = run the whole
  /// scenario). The chaos harness uses this to kill a NOC incarnation
  /// cleanly mid-run; the shutdown snapshot then seeds the next one.
  std::int64_t last_interval = -1;
  /// Fault-injection hook: wraps the TCP transport for all Message-level
  /// traffic (reports, sketch pulls, alarms). Control frames stay on the
  /// raw transport. Keeps net/ ignorant of fault/.
  std::function<std::unique_ptr<Transport>(Transport&)> wrap_transport;
  /// Live status endpoint (obs/status_server.hpp): /metrics, /metrics.json,
  /// /healthz, /spans. -1 disables; 0 binds an ephemeral port (reported via
  /// on_status_port). Polled from the daemon's wait slices, so a slow
  /// scraper can never stall the protocol.
  int status_port = -1;
  std::string status_host = "127.0.0.1";
  /// Called with the bound status port right after the server comes up.
  std::function<void(int)> on_status_port;
};

/// The NOC process body (also runnable on a thread in tests).
class NocDaemon final {
 public:
  explicit NocDaemon(NocDaemonConfig config);
  ~NocDaemon();

  /// Binds the listener and starts accepting monitors; must be called
  /// before run() (split out so tests can learn the ephemeral port first).
  void start();

  /// The bound listen port (valid after start()).
  [[nodiscard]] std::uint16_t bound_port() const noexcept;

  /// Runs the deployment to completion (or until request_stop()) and
  /// returns the trajectory. When resuming from a checkpoint, the returned
  /// distances/alarms cover only the intervals this incarnation processed.
  /// Throws TransportError if a monitor stays away longer than the interval
  /// deadline.
  ScenarioRun run();

  /// Asks a running daemon to wind down at the next poll slice.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Connection re-establishments observed so far (valid after start()).
  [[nodiscard]] std::uint64_t reconnects() const noexcept;

  /// True iff the last run() actually resumed from a checkpoint snapshot
  /// (instead of starting the protocol from interval 0).
  [[nodiscard]] bool restored_from_checkpoint() const noexcept {
    return restored_.load(std::memory_order_relaxed);
  }

 private:
  NocDaemonConfig config_;
  TcpTransport transport_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> restored_{false};
  bool started_ = false;
};

}  // namespace spca
