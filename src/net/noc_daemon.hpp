// NOC daemon: wraps the Noc protocol engine in a TCP server loop. Listens
// for the monitors, assembles each interval's volume reports, runs the lazy
// detection protocol (pulling sketches over the wire when the stale model
// raises a hand), and releases the monitors into the next interval with a
// kAdvance frame — the flow control that keeps the multi-process run in the
// simulation's lock-step, and therefore bit-identical to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/scenario.hpp"
#include "net/tcp_transport.hpp"

namespace spca {

/// NOC daemon configuration.
struct NocDaemonConfig {
  NetScenarioConfig scenario;
  /// Listen endpoint (port 0 picks an ephemeral port, see bound_port()).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// How long to wait for a missing monitor (report or sketch response)
  /// before giving up on the run. Generous by default: a killed monitor
  /// needs time to restart, rebuild, and reconnect.
  std::chrono::milliseconds interval_deadline{60000};
  std::chrono::milliseconds io_timeout{15000};
};

/// The NOC process body (also runnable on a thread in tests).
class NocDaemon final {
 public:
  explicit NocDaemon(NocDaemonConfig config);
  ~NocDaemon();

  /// Binds the listener and starts accepting monitors; must be called
  /// before run() (split out so tests can learn the ephemeral port first).
  void start();

  /// The bound listen port (valid after start()).
  [[nodiscard]] std::uint16_t bound_port() const noexcept;

  /// Runs the deployment to completion (or until request_stop()) and
  /// returns the trajectory. Throws TransportError if a monitor stays away
  /// longer than the interval deadline.
  ScenarioRun run();

  /// Asks a running daemon to wind down at the next poll slice.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Connection re-establishments observed so far (valid after start()).
  [[nodiscard]] std::uint64_t reconnects() const noexcept;

 private:
  NocDaemonConfig config_;
  TcpTransport transport_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace spca
