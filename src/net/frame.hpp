// Wire framing of the TCP transport: every socket carries a stream of
// length-prefixed frames so message boundaries survive TCP's byte-stream
// semantics and a corrupt or misaligned peer is detected immediately.
//
// Frame layout (little-endian):
//
//   offset 0  u32  magic     0x41435053 ("SPCA" as bytes on the wire)
//   offset 4  u8   version   kWireVersion
//   offset 5  u8   type      FrameType
//   offset 6  u32  length    payload bytes following the header
//   offset 10 u32  crc       CRC-32 over bytes [0, 10) and the payload
//   offset 14 ...  payload
//
// The CRC covers the first ten header bytes plus the payload (not itself),
// so corruption anywhere in a frame is rejected from the frame alone —
// before the payload reaches deserialize() — and any single-byte flip is
// caught deterministically.
//
// kMessage payloads are exactly the output of `serialize()` in
// dist/message; control frames (kHello, kAdvance) carry transport-level
// payloads that never enter the Message statistics, so NetworkStats stays
// byte-identical between SimNetwork and TCP runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace spca {

/// First four bytes of every frame: 'S' 'P' 'C' 'A'.
inline constexpr std::uint32_t kFrameMagic = 0x41435053u;
/// Protocol version; bumped on any incompatible frame or message change.
/// v2 added the CRC-32 header field; v3 added the kAggregate message type
/// carried by regional NOCs.
inline constexpr std::uint8_t kWireVersion = 3;
/// Fixed header size in bytes.
inline constexpr std::size_t kFrameHeaderBytes = 14;
/// Header bytes covered by the CRC (everything before the crc field).
inline constexpr std::size_t kFrameCrcCoverBytes = 10;
/// Upper bound on a single frame payload. Generous for sketch responses
/// (a million-flow response is ~0.7 GiB would be sharded upstream); mostly
/// a guard against a corrupt length field demanding an absurd allocation.
inline constexpr std::size_t kMaxFramePayloadBytes = 256ull * 1024 * 1024;

/// What a frame carries.
enum class FrameType : std::uint8_t {
  /// A serialized protocol `Message`.
  kMessage = 1,
  /// Connection handshake: payload is the sender's NodeId (u32).
  kHello = 2,
  /// NOC -> monitor flow control: payload is the completed interval (i64).
  /// Monitors hold interval t+1 until the NOC finished t, which keeps the
  /// multi-process protocol in the same lock-step as the simulation.
  kAdvance = 3,
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kMessage;
  std::vector<std::byte> payload;
};

/// Encodes a frame: header + payload, ready for the socket.
[[nodiscard]] std::vector<std::byte> encode_frame(
    FrameType type, const std::vector<std::byte>& payload);

/// Encodes a kAdvance payload (the completed interval, little-endian i64).
[[nodiscard]] std::vector<std::byte> encode_interval_payload(std::int64_t t);

/// Decodes a kAdvance payload; throws ProtocolError on a bad size.
[[nodiscard]] std::int64_t decode_interval_payload(
    const std::vector<std::byte>& payload);

/// Incremental frame parser: feed arbitrary byte chunks as they arrive from
/// the socket (partial reads welcome), pop complete frames. Throws
/// ProtocolError on bad magic, unknown version, unknown frame type, an
/// oversized length field, or a CRC mismatch — the connection must be
/// dropped after that.
class FrameDecoder final {
 public:
  /// Appends `n` received bytes and parses any frames they complete.
  void feed(const std::byte* data, std::size_t n);

  /// True if a complete frame is ready to pop.
  [[nodiscard]] bool has_frame() const noexcept { return !frames_.empty(); }

  /// Removes and returns the oldest complete frame; has_frame() must hold.
  [[nodiscard]] Frame pop();

  /// Bytes buffered towards the next (incomplete) frame.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  void parse_available();

  std::vector<std::byte> buffer_;
  std::deque<Frame> frames_;
};

}  // namespace spca
