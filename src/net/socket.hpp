// Thin RAII layer over POSIX TCP sockets: listener, stream, and a
// connect-with-retry helper with exponential backoff and jitter.
//
// All blocking operations are poll()-based with explicit timeouts so daemon
// shutdown never hangs on a dead peer, and writes use MSG_NOSIGNAL so a
// vanished peer surfaces as an error instead of SIGPIPE.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace spca {

/// Owns a socket file descriptor; move-only.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) noexcept : fd_(fd) {}
  ~SocketFd() { close(); }
  SocketFd(SocketFd&& other) noexcept : fd_(other.release()) {}
  SocketFd& operator=(SocketFd&& other) noexcept;
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP byte stream.
class TcpStream final {
 public:
  TcpStream() = default;
  explicit TcpStream(SocketFd fd);

  /// Connects to host:port, waiting up to `timeout`. Throws TransportError
  /// on failure (connection refused, timeout, resolution failure).
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port,
                                         std::chrono::milliseconds timeout);

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Writes all `n` bytes, waiting up to `timeout` for socket-buffer space
  /// per poll round. Throws TransportError on timeout or a dead peer.
  void send_all(const std::byte* data, std::size_t n,
                std::chrono::milliseconds timeout);

  /// Reads up to `n` bytes into `out`. Returns the number of bytes read,
  /// 0 on orderly EOF, or -1 if `timeout` elapsed with nothing to read.
  /// Throws TransportError on a socket error.
  [[nodiscard]] std::ptrdiff_t recv_some(std::byte* out, std::size_t n,
                                         std::chrono::milliseconds timeout);

  /// Half-closes the send direction so the peer sees EOF (graceful
  /// shutdown); reads stay possible.
  void shutdown_send() noexcept;

  /// Shuts down both directions: a reader blocked in poll() on this socket
  /// (even in another thread) wakes up and sees EOF. Unlike close(), the fd
  /// stays owned, so there is no use-after-close race.
  void shutdown_both() noexcept;

  /// Closes the socket; any blocked peer poll wakes with EOF/error.
  void close() noexcept { fd_.close(); }

  [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

 private:
  SocketFd fd_;
};

/// A listening TCP socket bound to host:port (port 0 = ephemeral).
class TcpListener final {
 public:
  TcpListener(const std::string& host, std::uint16_t port);

  /// The actually bound port (resolves ephemeral port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout` for an incoming connection; returns an invalid
  /// stream on timeout. Throws TransportError on listener failure.
  [[nodiscard]] TcpStream accept(std::chrono::milliseconds timeout);

  /// Closes the listening socket; a blocked accept() returns invalid.
  void close() noexcept { fd_.close(); }

  /// The listening descriptor, for readiness multiplexing (Poller).
  [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

 private:
  SocketFd fd_;
  std::uint16_t port_ = 0;
};

/// Reconnect policy: exponential backoff with multiplicative jitter.
struct RetryPolicy {
  /// Connect attempts before giving up (0 = unlimited).
  std::size_t max_attempts = 40;
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds backoff_initial{25};
  std::chrono::milliseconds backoff_max{2000};
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction: each delay is scaled by 1 +/- jitter.
  double jitter = 0.2;
  /// Seed of the deterministic jitter sequence.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Connects with retries under `policy`. `attempt_sink`, when set, is called
/// once per failed attempt with the delay about to be slept (lets callers
/// count retries and abort via exception). Throws TransportError once the
/// attempt budget is exhausted.
[[nodiscard]] TcpStream connect_with_retry(
    const std::string& host, std::uint16_t port, const RetryPolicy& policy,
    const std::function<void(std::size_t attempt,
                             std::chrono::milliseconds delay)>& attempt_sink =
        {});

}  // namespace spca
