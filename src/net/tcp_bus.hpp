// Single-process TCP loopback bus: a Transport whose every message crosses
// a real kernel TCP connection (one loopback socket pair per node), while
// keeping SimNetwork's deterministic synchronous semantics — send() returns
// once the frame is written, drain(node) blocks until every frame sent to
// `node` has been read back, parsed, and reassembled.
//
// This is the drop-in transport for DistributedDetector: the whole
// simulated deployment runs unchanged, but the bytes genuinely traverse the
// loopback stack with framing, so the Sim-vs-TCP parity tests compare real
// wire behaviour without multi-threaded nondeterminism. The multi-process
// deployment uses TcpTransport + the daemons instead.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace spca {

/// Deterministic loopback-TCP hub for a fixed node set.
class TcpBus final : public Transport {
 public:
  /// Opens one loopback connection pair per node in `nodes` (the NOC plus
  /// every monitor id). Throws TransportError if the loopback stack is
  /// unavailable.
  explicit TcpBus(const std::vector<NodeId>& nodes);

  void send(const Message& msg) override;
  [[nodiscard]] std::vector<Message> drain(NodeId node) override;
  [[nodiscard]] std::vector<Message> take(NodeId node,
                                          MessageType type) override;
  [[nodiscard]] bool has_mail(NodeId node) const override;
  [[nodiscard]] const NetworkStats& stats() const noexcept override {
    return stats_;
  }
  void reset_stats() noexcept override { stats_ = NetworkStats{}; }

 private:
  /// One node's mailbox: the bus writes frames into `tx`, reads them back
  /// from `rx` (the accepted end of the same loopback connection).
  struct Endpoint {
    TcpStream tx;
    TcpStream rx;
    FrameDecoder decoder;
    std::deque<Message> inbox;
    /// Frames written to tx but not yet read from rx.
    std::size_t in_flight = 0;
  };

  Endpoint& endpoint_for(NodeId node);
  [[nodiscard]] const Endpoint& endpoint_for(NodeId node) const;
  /// Reads whatever is available on `node`'s rx socket into its inbox.
  void pump_available(Endpoint& ep);
  /// Blocks until every in-flight frame of `node` landed in its inbox.
  void pump_all(Endpoint& ep);

  std::map<NodeId, Endpoint> endpoints_;
  NetworkStats stats_;
};

}  // namespace spca
