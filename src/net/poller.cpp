#include "net/poller.hpp"

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define SPCA_HAVE_EPOLL 1
#else
#define SPCA_HAVE_EPOLL 0
#endif

namespace spca {

struct Poller::Impl {
  PollerBackend backend = PollerBackend::kPoll;
  // kPoll: the interest set lives in user space.
  std::vector<pollfd> fds;
#if SPCA_HAVE_EPOLL
  // kEpoll: the kernel keeps the interest set; we track the count only.
  int epoll_fd = -1;
  std::size_t count = 0;
  std::vector<epoll_event> scratch;
#endif
};

Poller::Poller(PollerBackend backend) : impl_(new Impl) {
  if (backend == PollerBackend::kAuto) {
    backend = SPCA_HAVE_EPOLL ? PollerBackend::kEpoll : PollerBackend::kPoll;
  }
#if SPCA_HAVE_EPOLL
  if (backend == PollerBackend::kEpoll) {
    impl_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (impl_->epoll_fd < 0) {
      delete impl_;
      impl_ = nullptr;
      throw TransportError(std::string("epoll_create1: ") +
                           std::strerror(errno));
    }
  }
#else
  if (backend == PollerBackend::kEpoll) {
    delete impl_;
    impl_ = nullptr;
    throw TransportError("epoll backend requested on a non-Linux platform");
  }
#endif
  impl_->backend = backend;
}

Poller::~Poller() {
  if (!impl_) return;
#if SPCA_HAVE_EPOLL
  if (impl_->epoll_fd >= 0) ::close(impl_->epoll_fd);
#endif
  delete impl_;
}

void Poller::add(int fd) {
#if SPCA_HAVE_EPOLL
  if (impl_->backend == PollerBackend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw TransportError(std::string("epoll_ctl add: ") +
                           std::strerror(errno));
    }
    ++impl_->count;
    return;
  }
#endif
  for (const pollfd& p : impl_->fds) {
    if (p.fd == fd) return;  // already watched; keep the set a set
  }
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  impl_->fds.push_back(p);
}

void Poller::remove(int fd) {
#if SPCA_HAVE_EPOLL
  if (impl_->backend == PollerBackend::kEpoll) {
    if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_DEL, fd, nullptr) == 0) {
      --impl_->count;
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < impl_->fds.size(); ++i) {
    if (impl_->fds[i].fd == fd) {
      impl_->fds[i] = impl_->fds.back();
      impl_->fds.pop_back();
      return;
    }
  }
}

std::size_t Poller::wait(std::vector<PollerEvent>& out,
                         std::chrono::milliseconds timeout) {
  out.clear();
  const int timeout_ms = static_cast<int>(timeout.count());
#if SPCA_HAVE_EPOLL
  if (impl_->backend == PollerBackend::kEpoll) {
    impl_->scratch.resize(impl_->count > 0 ? impl_->count : 1);
    const int n = ::epoll_wait(impl_->epoll_fd, impl_->scratch.data(),
                               static_cast<int>(impl_->scratch.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw TransportError(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = impl_->scratch[static_cast<std::size_t>(i)];
      PollerEvent event;
      event.fd = ev.data.fd;
      event.readable = (ev.events & (EPOLLIN | EPOLLHUP)) != 0;
      event.error = (ev.events & EPOLLERR) != 0;
      out.push_back(event);
    }
    return out.size();
  }
#endif
  if (impl_->fds.empty()) {
    // Nothing watched: honour the timeout so callers can still pace a loop.
    ::poll(nullptr, 0, timeout_ms);
    return 0;
  }
  const int n = ::poll(impl_->fds.data(),
                       static_cast<nfds_t>(impl_->fds.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw TransportError(std::string("poll: ") + std::strerror(errno));
  }
  if (n == 0) return 0;
  for (const pollfd& p : impl_->fds) {
    if (p.revents == 0) continue;
    PollerEvent event;
    event.fd = p.fd;
    event.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    event.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    out.push_back(event);
    if (out.size() == static_cast<std::size_t>(n)) break;
  }
  return out.size();
}

std::size_t Poller::watched() const noexcept {
#if SPCA_HAVE_EPOLL
  if (impl_->backend == PollerBackend::kEpoll) return impl_->count;
#endif
  return impl_->fds.size();
}

const char* Poller::backend_name() const noexcept {
  return impl_->backend == PollerBackend::kEpoll ? "epoll" : "poll";
}

}  // namespace spca
