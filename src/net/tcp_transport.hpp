// Per-node TCP endpoint implementing the Transport interface: the monitor
// and NOC daemons each own one, configured with a listen address (NOC) or
// outbound peers (monitors dial the NOC).
//
// Robustness is built in rather than bolted on:
//   * outbound connects retry with exponential backoff + jitter;
//   * a send onto a dead outbound connection reconnects and resends once;
//   * a send towards a not-yet-(re)connected inbound peer waits for the
//     peer's handshake up to the I/O timeout before failing;
//   * reads reassemble partial frames (FrameDecoder) and tolerate EOF;
//   * stop() (also run by the destructor) closes everything and joins the
//     I/O thread, so daemons shut down gracefully on SIGTERM.
//
// All reads and accepts run on ONE event-loop thread multiplexed by a
// Poller (epoll on Linux, poll elsewhere), so an endpoint holds hundreds of
// connections without hundreds of threads, and dispatch work per wake-up is
// O(ready), not O(connections). Inbound handshakes are asynchronous state
// machines with a deadline, so a slow dialer never blocks the accept path.
// Writes stay on the calling thread under a per-connection write mutex.
//
// Wire accounting matches SimNetwork byte-for-byte: NetworkStats counts
// serialized Message payloads only; framing overhead, hellos, and advance
// frames appear in the spca.net.frame_* / control metrics instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace spca {

/// Endpoint configuration.
struct TcpTransportConfig {
  /// This endpoint's node id (kNocId for the NOC daemon).
  NodeId node_id = kNocId;
  /// Listen address; empty host disables the listener (monitor side).
  std::string listen_host;
  std::uint16_t listen_port = 0;
  /// Outbound peers to dial at start() (monitor side: the NOC).
  struct Peer {
    NodeId id = kNocId;
    std::string host;
    std::uint16_t port = 0;
  };
  std::vector<Peer> peers;
  /// Connect retry/backoff policy for outbound peers.
  RetryPolicy retry;
  /// Read/write timeout of established connections.
  std::chrono::milliseconds io_timeout{15000};
  /// Readiness backend of the event loop (kAuto = epoll where available).
  PollerBackend poller = PollerBackend::kAuto;
};

/// A transport-level control frame received from a peer.
struct ControlFrame {
  NodeId from = 0;
  FrameType type = FrameType::kHello;
  std::vector<std::byte> payload;
};

/// The socket transport endpoint.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  /// Binds the listener (if configured) and dials every outbound peer,
  /// retrying with backoff. Must be called once before any send/drain.
  void start();

  /// Closes all connections and joins the I/O threads; idempotent.
  void stop();

  /// The bound listen port (after start(); resolves an ephemeral port 0).
  [[nodiscard]] std::uint16_t listen_port() const noexcept;

  // Transport interface.
  void send(const Message& msg) override;
  [[nodiscard]] std::vector<Message> drain(NodeId node) override;
  [[nodiscard]] std::vector<Message> take(NodeId node,
                                          MessageType type) override;
  [[nodiscard]] bool has_mail(NodeId node) const override;
  bool wait_for_mail(NodeId node, std::chrono::milliseconds timeout) override;
  [[nodiscard]] const NetworkStats& stats() const noexcept override {
    return stats_;
  }
  void reset_stats() noexcept override { stats_ = NetworkStats{}; }

  /// Sends a control frame (kAdvance) to `to`; same delivery guarantees as
  /// send() but never enters NetworkStats.
  void send_control(NodeId to, FrameType type,
                    const std::vector<std::byte>& payload);

  /// Pops the oldest queued control frame, if any.
  [[nodiscard]] std::optional<ControlFrame> poll_control();

  /// Blocks until a message or control frame is queued or `timeout`
  /// elapses; true if anything is available.
  bool wait_for_activity(std::chrono::milliseconds timeout);

  /// True while a live connection to `peer` exists.
  [[nodiscard]] bool connected(NodeId peer) const;

  /// Successful re-establishments of previously live connections.
  [[nodiscard]] std::uint64_t reconnects() const noexcept;

  /// Node ids with a currently live connection (for tests/introspection).
  [[nodiscard]] std::vector<NodeId> connected_peers() const;

  /// Forcibly severs the live connection to `peer` (if any), as if the link
  /// flapped: the socket is shut down and the reader drops it. Fault
  /// injection calls this at protocol-quiet points; the next send (or an
  /// ensure_connected) redials outbound peers transparently.
  void reset_connection(NodeId peer);

  /// Redials `peer` now if it is an outbound peer with no live connection.
  /// Lets a daemon that just reset its own link re-establish it proactively
  /// instead of deadlocking until the next send's I/O timeout.
  void ensure_connected(NodeId peer);

  /// Connections currently multiplexed by the event loop (established plus
  /// mid-handshake); for tests and capacity introspection.
  [[nodiscard]] std::size_t watched_connections() const;

  /// The readiness backend the event loop runs on ("epoll" or "poll").
  [[nodiscard]] const char* poller_backend() const;

 private:
  struct Conn;
  /// An accepted connection whose hello frame has not arrived yet.
  struct PendingHello;

  void io_loop();
  void adopt_pending_conns(Poller& poller,
                           std::map<int, std::shared_ptr<Conn>>& by_fd);
  void accept_ready(Poller& poller, std::map<int, PendingHello>& pending);
  /// Returns false when the handshake connection should be dropped.
  [[nodiscard]] bool progress_handshake(
      Poller& poller, std::map<int, std::shared_ptr<Conn>>& by_fd,
      PendingHello& pending);
  /// Returns false when the established connection died (EOF or error).
  [[nodiscard]] bool read_ready(const std::shared_ptr<Conn>& conn);
  std::shared_ptr<Conn> connect_peer(const TcpTransportConfig::Peer& peer,
                                     bool is_reconnect);
  std::shared_ptr<Conn> conn_for(NodeId to);
  void register_conn(const std::shared_ptr<Conn>& conn);
  void drop_conn(const std::shared_ptr<Conn>& conn);
  void deliver_local(Message msg);
  void write_frame(NodeId to, const std::vector<std::byte>& frame);
  void wake_io_thread();

  TcpTransportConfig config_;
  NetworkStats stats_;

  mutable std::mutex mutex_;  // guards conns_, inbox_, control_, stopping_
  std::condition_variable inbox_cv_;
  std::condition_variable conn_cv_;
  std::map<NodeId, std::shared_ptr<Conn>> conns_;
  /// Lifetime registrations per peer (reconnect detection across EOF drops).
  std::map<NodeId, std::uint64_t> registrations_;
  /// Outbound connections awaiting adoption by the event loop.
  std::vector<std::shared_ptr<Conn>> pending_add_;
  std::deque<Message> inbox_;
  std::deque<ControlFrame> control_;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::size_t> watched_{0};

  std::optional<TcpListener> listener_;
  /// Self-pipe that wakes the event loop for stop() and adoptions.
  int wake_rx_ = -1;
  int wake_tx_ = -1;
  std::thread io_thread_;
};

}  // namespace spca
