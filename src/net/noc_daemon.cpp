#include "net/noc_daemon.hpp"

#include <map>
#include <sstream>

#include "common/checkpoint_store.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "detect/fusion.hpp"
#include "dist/aggregate.hpp"
#include "dist/noc.hpp"
#include "net/frame.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/status_server.hpp"

namespace spca {

namespace {

constexpr std::chrono::milliseconds kWaitSlice{100};

TcpTransportConfig noc_tcp_config(const NocDaemonConfig& config) {
  TcpTransportConfig tcp;
  tcp.node_id = kNocId;
  tcp.listen_host = config.listen_host;
  tcp.listen_port = config.listen_port;
  tcp.io_timeout = config.io_timeout;
  return tcp;
}

}  // namespace

NocDaemon::NocDaemon(NocDaemonConfig config)
    : config_(std::move(config)), transport_(noc_tcp_config(config_)) {}

NocDaemon::~NocDaemon() { transport_.stop(); }

void NocDaemon::start() {
  SPCA_EXPECTS(!started_);
  started_ = true;
  transport_.start();
  log_info("nocd: listening on ", config_.listen_host, ":", bound_port());
}

std::uint16_t NocDaemon::bound_port() const noexcept {
  return transport_.listen_port();
}

std::uint64_t NocDaemon::reconnects() const noexcept {
  return transport_.reconnects();
}

ScenarioRun NocDaemon::run() {
  SPCA_EXPECTS(started_);
  SPCA_EXPECTS(config_.checkpoint_every >= 0);
  const NetScenario scenario = build_scenario(config_.scenario);
  const std::size_t num_monitors = config_.scenario.monitors;
  const std::vector<NodeId> monitor_ids = scenario_monitor_ids(num_monitors);
  // Hierarchical mode: the root's direct children are regional NOCs, which
  // deliver each phase as one shape-tagged kAggregate per region and relay
  // kAdvance down to their shards. The unwrap feeds the exact flat-mode
  // code path, so the trajectory is bit-identical by construction.
  const bool hier = config_.regions > 0;
  if (hier) SPCA_EXPECTS(config_.regions <= num_monitors);
  const std::vector<NodeId> children =
      hier ? region_node_ids(config_.regions) : monitor_ids;
  const std::size_t num_children = children.size();
  const std::size_t rows = config_.scenario.sketch_rows;
  // Ensemble plane: when fusion is on, every child also ships first-line
  // scores each interval (kScoreReport flat, score-shaped kAggregate hier)
  // and the root fuses them with the sketch-PCA verdict.
  std::optional<FusionEngine> fusion;
  if (config_.scenario.fusion != "off") {
    FusionConfig fusion_config;
    fusion_config.rule = parse_fusion_rule(config_.scenario.fusion);
    fusion.emplace(fusion_config);
  }

  std::optional<CheckpointStore> store;
  if (!config_.checkpoint_dir.empty()) {
    store.emplace(config_.checkpoint_dir, "noc");
  }

  std::optional<Noc> noc;
  std::int64_t start = 0;
  if (store) {
    if (auto snap = store->load_latest()) {
      try {
        // The expected-backend check rejects a snapshot whose model backend
        // differs from the configured one: backend state (warm basis, rsvd
        // refit counter, fd sketch) is not interchangeable, and silently
        // refitting cold would break the bit-identical-restore guarantee.
        Noc restored = Noc::restore_state(
            snap->payload,
            parse_model_backend(config_.scenario.model_backend));
        if (restored.num_flows() != scenario.trace.num_flows()) {
          throw ProtocolError("snapshot belongs to a different deployment");
        }
        noc.emplace(std::move(restored));
        start = static_cast<std::int64_t>(snap->seq);
        restored_.store(true, std::memory_order_relaxed);
        log_info("nocd: restored interval ", start, " from ", snap->path);
      } catch (const Error& e) {
        log_warn("nocd: ignoring snapshot ", snap->path, ": ", e.what());
      }
    }
  }
  if (!noc) {
    noc.emplace(scenario.trace.num_flows(),
                noc_config_from(scenario.detector, /*host_sketches=*/false));
  }

  std::unique_ptr<Transport> wrapped;
  if (config_.wrap_transport) wrapped = config_.wrap_transport(transport_);
  Transport& bus = wrapped ? *wrapped : static_cast<Transport&>(transport_);

  // Live status endpoint, polled from this loop's wait slices. Health and
  // the /healthz body read only atomics/transport counters, so a scrape
  // never touches (or perturbs) protocol state.
  const auto intervals_total =
      static_cast<std::int64_t>(config_.scenario.intervals);
  std::atomic<std::int64_t> current_interval{start};
  std::optional<StatusServer> status;
  if (config_.status_port >= 0) {
    StatusServerConfig scfg;
    scfg.host = config_.status_host;
    scfg.port = config_.status_port;
    scfg.healthy = [this] { return !stop_.load(std::memory_order_relaxed); };
    scfg.health_body = [this, &current_interval, intervals_total] {
      std::ostringstream oss;
      oss << "{\"healthy\":"
          << (stop_.load(std::memory_order_relaxed) ? "false" : "true")
          << ",\"role\":\"noc\",\"regions\":" << config_.regions
          << ",\"interval\":"
          << current_interval.load(std::memory_order_relaxed)
          << ",\"intervals_total\":" << intervals_total
          << ",\"reconnects\":" << transport_.reconnects()
          << ",\"poller\":\"" << transport_.poller_backend() << "\""
          << ",\"fusion\":\"" << config_.scenario.fusion << "\""
          << ",\"checkpointing\":"
          << (config_.checkpoint_dir.empty() ? "false" : "true") << "}\n";
      return oss.str();
    };
    status.emplace(std::move(scfg));
    if (config_.on_status_port) config_.on_status_port(status->port());
    log_info("nocd: status endpoint on ", config_.status_host, ":",
             status->port());
  }
  const auto poll_telemetry = [&] {
    if (status) status->poll();
    (void)FlightRecorder::global().poll_dump_request();
  };

  // Waits until `ready()` or the interval deadline; false when stopping.
  const auto wait_until = [&](const auto& ready, const char* what) {
    auto waited = std::chrono::milliseconds(0);
    while (!ready()) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      if (!bus.wait_for_mail(kNocId, kWaitSlice)) {
        waited += kWaitSlice;
        if (waited >= config_.interval_deadline) {
          throw TransportError(std::string("nocd: timed out waiting for ") +
                               what);
        }
      }
      poll_telemetry();
    }
    return true;
  };

  ScenarioRun run;
  const auto intervals = static_cast<std::int64_t>(config_.scenario.intervals);
  const std::int64_t end = config_.last_interval >= 0
                               ? std::min(intervals, config_.last_interval)
                               : intervals;
  SPCA_EXPECTS(start <= intervals);
  std::int64_t done_through = start;
  for (std::int64_t t = start; t < end; ++t) {
    current_interval.store(t, std::memory_order_relaxed);
    poll_telemetry();
    // Phase 1: every child reports interval t's volumes — per-monitor
    // reports when flat, one volume-shaped aggregate per region when
    // hierarchical. The kAdvance lock-step guarantees no report for t+1 can
    // arrive yet. Keyed by sender: a child that reconnected (e.g. after
    // this daemon restarted from a checkpoint) re-sends its report, and the
    // duplicate copy is identical, so last-wins per child is safe. Reports
    // for already-finished intervals (stale re-sends) are discarded, as are
    // sketch-shaped aggregates (racing duplicates of a finished pull).
    std::map<NodeId, Message> reports_by_child;
    std::map<NodeId, Message> scores_by_child;
    if (!wait_until(
            [&] {
              const MessageType wire = hier ? MessageType::kAggregate
                                            : MessageType::kVolumeReport;
              for (Message& msg : bus.take(kNocId, wire)) {
                if (msg.interval < t) continue;  // stale re-send
                if (hier) {
                  // The aggregate wire carries volume-, score-, and
                  // sketch-shaped payloads; route by shape. Sketch-shaped
                  // strays (racing duplicates of a finished pull) drop.
                  if (fusion && aggregate_shape_is(
                                    msg, MessageType::kScoreReport, rows)) {
                    scores_by_child[msg.from] = std::move(msg);
                    continue;
                  }
                  if (!aggregate_shape_is(msg, MessageType::kVolumeReport,
                                          rows)) {
                    continue;
                  }
                }
                reports_by_child[msg.from] = std::move(msg);
              }
              if (fusion && !hier) {
                for (Message& msg :
                     bus.take(kNocId, MessageType::kScoreReport)) {
                  if (msg.interval < t) continue;  // stale re-send
                  scores_by_child[msg.from] = std::move(msg);
                }
              }
              return reports_by_child.size() >= num_children &&
                     (!fusion || scores_by_child.size() >= num_children);
            },
            "volume reports")) {
      break;
    }
    std::vector<Message> reports;
    reports.reserve(reports_by_child.size());
    for (auto& [id, msg] : reports_by_child) {
      reports.push_back(
          hier ? unwrap_aggregate(msg, MessageType::kVolumeReport, rows)
               : std::move(msg));
    }
    const Vector x = noc->assemble_volumes(t, reports);
    // Decode the first-line scores in ascending child order (std::map), the
    // same order the simulation sees, so the fused trajectory is
    // bit-identical.
    std::vector<MonitorScore> scores;
    if (fusion) {
      for (auto& [id, msg] : scores_by_child) {
        const Message report =
            hier ? unwrap_aggregate(msg, MessageType::kScoreReport, rows)
                 : std::move(msg);
        for (const MonitorScore& s : parse_score_report(report)) {
          scores.push_back(s);
        }
      }
    }

    // Phase 2: detection, matching DistributedDetector's warm-up skip.
    if (t + 1 >= static_cast<std::int64_t>(scenario.detector.window)) {
      const auto pull = [&] {
        noc->request_sketches(t, children, bus);
        if (!hier) {
          std::size_t responses = 0;
          if (!wait_until(
                  [&] {
                    for (const Message& msg :
                         bus.take(kNocId, MessageType::kSketchResponse)) {
                      noc->ingest_sketch_response(msg);
                      ++responses;
                    }
                    return responses >= num_monitors;
                  },
                  "sketch responses")) {
            throw TransportError("nocd: stopped during a sketch pull");
          }
        } else {
          // Sketch aggregates are keyed by region: a regional NOC that died
          // mid-pull lost the request with its connection, so when a region
          // redials we re-request from every region still missing. The
          // duplicate response a racing original may deliver is identical
          // (monitor sketch snapshots are read-only), so last-wins is safe.
          std::map<NodeId, Message> responses;
          std::uint64_t seen_reconnects = transport_.reconnects();
          if (!wait_until(
                  [&] {
                    for (Message& msg :
                         bus.take(kNocId, MessageType::kAggregate)) {
                      if (msg.interval != t) continue;
                      if (!aggregate_shape_is(
                              msg, MessageType::kSketchResponse, rows)) {
                        continue;
                      }
                      responses[msg.from] = std::move(msg);
                    }
                    if (responses.size() >= num_children) return true;
                    const std::uint64_t rc = transport_.reconnects();
                    if (rc != seen_reconnects) {
                      seen_reconnects = rc;
                      for (const NodeId child : children) {
                        if (responses.count(child) != 0) continue;
                        Message request;
                        request.type = MessageType::kSketchRequest;
                        request.from = kNocId;
                        request.to = child;
                        request.interval = t;
                        bus.send(request);
                      }
                    }
                    return false;
                  },
                  "sketch responses")) {
            throw TransportError("nocd: stopped during a sketch pull");
          }
          for (auto& [id, msg] : responses) {
            noc->ingest_sketch_response(
                unwrap_aggregate(msg, MessageType::kSketchResponse, rows));
          }
        }
        noc->refit();
      };
      const Detection det = noc->detect_with_pull(t, x, pull, bus);
      run.distances.push_back(det.distance);
      if (det.alarm) run.alarm_intervals.push_back(t);
      if (fusion) {
        const FusedDecision fused = fusion->fuse(t, det, scores);
        run.fused_statistics.push_back(fused.statistic);
        if (fused.alarm) run.fused_alarm_intervals.push_back(t);
      }
    } else if (fusion) {
      // Warm-up: fuse abstains but still runs, matching the simulation's
      // metric/trace accounting interval for interval.
      (void)fusion->fuse(t, Detection{}, scores);
    }

    // Phase 3: release the children into interval t+1 (regional NOCs relay
    // the advance to their shards).
    for (const NodeId child : children) {
      transport_.send_control(child, FrameType::kAdvance,
                              encode_interval_payload(t));
    }
    done_through = t + 1;
    current_interval.store(done_through, std::memory_order_relaxed);
    FlightRecorder::global().capture_metrics("noc_interval", t);
    if (store && config_.checkpoint_every > 0 &&
        done_through % config_.checkpoint_every == 0) {
      store->write(static_cast<std::uint64_t>(done_through),
                   noc->save_state());
      FlightRecorder::global().note("noc_checkpoint", done_through);
    }
  }

  if (store) {
    const std::string path = store->write(
        static_cast<std::uint64_t>(done_through), noc->save_state());
    log_info("nocd: final checkpoint (interval ", done_through, ") at ",
             path);
  }

  run.stats = transport_.stats();
  log_info("nocd: finished, ", run.alarm_intervals.size(), " alarms, ",
           noc->sketch_pulls(), " sketch pulls, ", transport_.reconnects(),
           " reconnects");
  return run;
}

}  // namespace spca
