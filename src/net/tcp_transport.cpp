#include "net/tcp_transport.hpp"

#include <atomic>
#include <cstring>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/scoped_timer.hpp"

namespace spca {

namespace {

constexpr std::chrono::milliseconds kPollSlice{200};

std::vector<std::byte> encode_node_id(NodeId id) {
  std::vector<std::byte> payload(sizeof(NodeId));
  std::memcpy(payload.data(), &id, sizeof(NodeId));
  return payload;
}

NodeId decode_node_id(const std::vector<std::byte>& payload) {
  if (payload.size() != sizeof(NodeId)) {
    throw ProtocolError("hello frame: bad payload size");
  }
  NodeId id;
  std::memcpy(&id, payload.data(), sizeof(NodeId));
  return id;
}

}  // namespace

/// One live connection. `alive` flips to false exactly once (under the
/// transport mutex) when either side dies; the stream is then shut down but
/// not closed, so a reader still blocked on it wakes with EOF safely.
struct TcpTransport::Conn {
  NodeId peer = 0;
  TcpStream stream;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  bool outbound = false;
  /// Reassembly state. Shared between the handshake read and the reader
  /// thread: bytes that arrive glued to the hello frame (the peer's first
  /// messages usually do) stay buffered here instead of being lost.
  FrameDecoder decoder;
};

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)) {}

TcpTransport::~TcpTransport() { stop(); }

std::uint16_t TcpTransport::listen_port() const noexcept {
  return listener_ ? listener_->port() : 0;
}

void TcpTransport::start() {
  SPCA_EXPECTS(!started_);
  started_ = true;
  if (!config_.listen_host.empty()) {
    listener_.emplace(config_.listen_host, config_.listen_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  for (const auto& peer : config_.peers) {
    register_conn(connect_peer(peer, /*is_reconnect=*/false));
  }
}

void TcpTransport::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [id, conn] : conns_) {
      conn->alive.store(false, std::memory_order_relaxed);
      conn->stream.shutdown_both();
    }
  }
  inbox_cv_.notify_all();
  conn_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& reader : reader_threads_) {
    if (reader.joinable()) reader.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  conns_.clear();
  listener_.reset();
}

void TcpTransport::accept_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    TcpStream stream;
    try {
      stream = listener_->accept(kPollSlice);
    } catch (const TransportError& e) {
      log_warn("tcp: accept failed: ", e.what());
      return;
    }
    if (!stream.valid()) continue;
    // Handshake: the dialer must introduce itself before anything else.
    try {
      auto conn = std::make_shared<Conn>();
      std::byte buf[512];
      while (!conn->decoder.has_frame()) {
        const std::ptrdiff_t n =
            stream.recv_some(buf, sizeof(buf), config_.io_timeout);
        if (n <= 0) throw ProtocolError("hello frame: peer closed early");
        conn->decoder.feed(buf, static_cast<std::size_t>(n));
      }
      const Frame hello = conn->decoder.pop();
      if (hello.type != FrameType::kHello) {
        throw ProtocolError("expected hello as the first frame");
      }
      conn->peer = decode_node_id(hello.payload);
      conn->stream = std::move(stream);
      register_conn(conn);
    } catch (const std::exception& e) {
      static Counter& errors =
          MetricsRegistry::global().counter("spca.net.frame_errors");
      errors.inc();
      log_warn("tcp: rejected inbound connection: ", e.what());
      FlightRecorder::global().note("protocol_error", -1, e.what());
      (void)FlightRecorder::global().dump("protocol_error");
    }
  }
}

void TcpTransport::register_conn(const std::shared_ptr<Conn>& conn) {
  bool seen_before = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      conn->alive.store(false, std::memory_order_relaxed);
      conn->stream.shutdown_both();
      return;
    }
    auto it = conns_.find(conn->peer);
    if (it != conns_.end()) {
      it->second->alive.store(false, std::memory_order_relaxed);
      it->second->stream.shutdown_both();
    }
    // Count registrations per peer so a re-register is recognized even when
    // the previous connection already died of EOF and was dropped.
    seen_before = registrations_[conn->peer]++ > 0;
    conns_[conn->peer] = conn;
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
  if (seen_before && !conn->outbound) {
    // An inbound peer came back on a fresh socket (its previous connection
    // is superseded); outbound reconnects are counted at connect time.
    static Counter& reconnects =
        MetricsRegistry::global().counter("spca.net.reconnects");
    reconnects.inc();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  conn_cv_.notify_all();
}

void TcpTransport::drop_conn(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  conn->alive.store(false, std::memory_order_relaxed);
  conn->stream.shutdown_both();
  auto it = conns_.find(conn->peer);
  if (it != conns_.end() && it->second == conn) conns_.erase(it);
}

void TcpTransport::reader_loop(std::shared_ptr<Conn> conn) {
  static Counter& bytes_rx =
      MetricsRegistry::global().counter("spca.net.bytes_rx");
  static Counter& control_rx =
      MetricsRegistry::global().counter("spca.net.control_rx");
  static Counter& frame_errors =
      MetricsRegistry::global().counter("spca.net.frame_errors");

  FrameDecoder& decoder = conn->decoder;
  std::vector<std::byte> buf(64 * 1024);
  try {
    // Frames may already be buffered from the handshake read.
    bool first_pass = true;
    while (conn->alive.load(std::memory_order_relaxed)) {
      if (!first_pass || !decoder.has_frame()) {
        const std::ptrdiff_t n =
            conn->stream.recv_some(buf.data(), buf.size(), kPollSlice);
        if (n < 0) continue;  // poll slice elapsed; re-check liveness
        if (n == 0) break;    // EOF: peer shut down
        decoder.feed(buf.data(), static_cast<std::size_t>(n));
      }
      first_pass = false;
      while (decoder.has_frame()) {
        Frame frame = decoder.pop();
        switch (frame.type) {
          case FrameType::kMessage: {
            Message msg = deserialize(frame.payload);
            bytes_rx.inc(frame.payload.size());
            deliver_local(std::move(msg));
            break;
          }
          case FrameType::kAdvance: {
            control_rx.inc();
            std::lock_guard<std::mutex> lock(mutex_);
            control_.push_back(
                ControlFrame{conn->peer, frame.type, std::move(frame.payload)});
            inbox_cv_.notify_all();
            break;
          }
          case FrameType::kHello:
            throw ProtocolError("unexpected hello on established connection");
        }
      }
    }
  } catch (const ProtocolError& e) {
    frame_errors.inc();
    log_warn("tcp: dropping connection to node ", conn->peer, ": ", e.what());
    FlightRecorder::global().note(
        "protocol_error", -1,
        "node " + std::to_string(conn->peer) + ": " + e.what());
    (void)FlightRecorder::global().dump("protocol_error");
  } catch (const TransportError& e) {
    log_warn("tcp: read error from node ", conn->peer, ": ", e.what());
  }
  drop_conn(conn);
  inbox_cv_.notify_all();
  conn_cv_.notify_all();
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::connect_peer(
    const TcpTransportConfig::Peer& peer, bool is_reconnect) {
  static Counter& retries =
      MetricsRegistry::global().counter("spca.net.connect_retries");
  RetryPolicy policy = config_.retry;
  // Distinct deterministic jitter sequences per (endpoint, peer) pair.
  policy.seed ^= (static_cast<std::uint64_t>(config_.node_id) << 32) ^ peer.id;
  auto conn = std::make_shared<Conn>();
  conn->peer = peer.id;
  conn->outbound = true;
  conn->stream = connect_with_retry(
      peer.host, peer.port, policy,
      [](std::size_t, std::chrono::milliseconds) { retries.inc(); });
  const std::vector<std::byte> hello =
      encode_frame(FrameType::kHello, encode_node_id(config_.node_id));
  conn->stream.send_all(hello.data(), hello.size(), config_.io_timeout);
  if (is_reconnect) {
    static Counter& reconnects =
        MetricsRegistry::global().counter("spca.net.reconnects");
    reconnects.inc();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  return conn;
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::conn_for(NodeId to) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = conns_.find(to);
    if (it != conns_.end() &&
        it->second->alive.load(std::memory_order_relaxed)) {
      return it->second;
    }
  }
  // No live connection. Outbound peers are redialed (with backoff); for
  // inbound peers the only cure is the peer reconnecting to us, so wait for
  // its handshake up to the I/O timeout.
  for (const auto& peer : config_.peers) {
    if (peer.id == to) {
      auto conn = connect_peer(peer, /*is_reconnect=*/true);
      register_conn(conn);
      return conn;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  const bool ok = conn_cv_.wait_for(lock, config_.io_timeout, [&] {
    if (stopping_) return true;
    auto it = conns_.find(to);
    return it != conns_.end() &&
           it->second->alive.load(std::memory_order_relaxed);
  });
  if (stopping_ || !ok) {
    throw TransportError("no connection to node " + std::to_string(to));
  }
  return conns_.at(to);
}

void TcpTransport::write_frame(NodeId to, const std::vector<std::byte>& frame) {
  for (int attempt = 0;; ++attempt) {
    std::shared_ptr<Conn> conn = conn_for(to);
    try {
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      conn->stream.send_all(frame.data(), frame.size(), config_.io_timeout);
      return;
    } catch (const TransportError& e) {
      drop_conn(conn);
      if (attempt >= 1) throw;
      log_warn("tcp: send to node ", to, " failed (", e.what(),
               "), reconnecting once");
    }
  }
}

void TcpTransport::deliver_local(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inbox_.push_back(std::move(msg));
  }
  inbox_cv_.notify_all();
}

void TcpTransport::send(const Message& msg) {
  static Histogram& send_seconds =
      MetricsRegistry::global().histogram("spca.net.send_seconds");
  std::vector<std::byte> wire = serialize(msg);
  account_send(stats_, msg, wire.size());
  const ScopedTimer timer(send_seconds);
  if (msg.to == config_.node_id) {
    // Self-delivery (the NOC's operator alarm): honest bytes, no socket.
    deliver_local(deserialize(wire));
    return;
  }
  write_frame(msg.to, encode_frame(FrameType::kMessage, wire));
}

void TcpTransport::send_control(NodeId to, FrameType type,
                                const std::vector<std::byte>& payload) {
  static Counter& control_tx =
      MetricsRegistry::global().counter("spca.net.control_tx");
  control_tx.inc();
  write_frame(to, encode_frame(type, payload));
}

std::vector<Message> TcpTransport::drain(NodeId node) {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out(std::make_move_iterator(inbox_.begin()),
                           std::make_move_iterator(inbox_.end()));
  inbox_.clear();
  return out;
}

std::vector<Message> TcpTransport::take(NodeId node, MessageType type) {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  std::deque<Message> rest;
  for (Message& msg : inbox_) {
    if (msg.type == type) {
      out.push_back(std::move(msg));
    } else {
      rest.push_back(std::move(msg));
    }
  }
  inbox_.swap(rest);
  return out;
}

bool TcpTransport::has_mail(NodeId node) const {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  return !inbox_.empty();
}

bool TcpTransport::wait_for_mail(NodeId node,
                                 std::chrono::milliseconds timeout) {
  SPCA_EXPECTS(node == config_.node_id);
  std::unique_lock<std::mutex> lock(mutex_);
  inbox_cv_.wait_for(lock, timeout,
                     [&] { return stopping_ || !inbox_.empty(); });
  return !inbox_.empty();
}

std::optional<ControlFrame> TcpTransport::poll_control() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (control_.empty()) return std::nullopt;
  ControlFrame frame = std::move(control_.front());
  control_.pop_front();
  return frame;
}

bool TcpTransport::wait_for_activity(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  inbox_cv_.wait_for(lock, timeout, [&] {
    return stopping_ || !inbox_.empty() || !control_.empty();
  });
  return !inbox_.empty() || !control_.empty();
}

bool TcpTransport::connected(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(peer);
  return it != conns_.end() &&
         it->second->alive.load(std::memory_order_relaxed);
}

std::uint64_t TcpTransport::reconnects() const noexcept {
  return reconnects_.load(std::memory_order_relaxed);
}

void TcpTransport::reset_connection(NodeId peer) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = conns_.find(peer);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  drop_conn(conn);
  conn_cv_.notify_all();
}

void TcpTransport::ensure_connected(NodeId peer) {
  if (connected(peer)) return;
  for (const auto& p : config_.peers) {
    if (p.id == peer) {
      register_conn(connect_peer(p, /*is_reconnect=*/true));
      return;
    }
  }
}

std::vector<NodeId> TcpTransport::connected_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NodeId> peers;
  for (const auto& [id, conn] : conns_) {
    if (conn->alive.load(std::memory_order_relaxed)) peers.push_back(id);
  }
  return peers;
}

}  // namespace spca
