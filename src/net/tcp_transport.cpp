#include "net/tcp_transport.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/scoped_timer.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace spca {

namespace {

/// Upper bound of one event-loop sweep; also the cadence of the pending
/// handshake deadline checks.
constexpr std::chrono::milliseconds kPollSlice{200};
/// Read rounds per ready connection per sweep: bounds how long one firehose
/// peer can monopolize the loop — the poller is level-triggered, so leftover
/// bytes re-report the descriptor on the next sweep.
constexpr int kMaxReadsPerWake = 8;

std::vector<std::byte> encode_node_id(NodeId id) {
  std::vector<std::byte> payload(sizeof(NodeId));
  std::memcpy(payload.data(), &id, sizeof(NodeId));
  return payload;
}

NodeId decode_node_id(const std::vector<std::byte>& payload) {
  if (payload.size() != sizeof(NodeId)) {
    throw ProtocolError("hello frame: bad payload size");
  }
  NodeId id;
  std::memcpy(&id, payload.data(), sizeof(NodeId));
  return id;
}

void set_nonblocking_fd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One live connection. `alive` flips to false exactly once (under the
/// transport mutex) when either side dies; the stream is then shut down but
/// not closed, so the event loop still polling it wakes with EOF safely.
struct TcpTransport::Conn {
  NodeId peer = 0;
  TcpStream stream;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  bool outbound = false;
  /// Reassembly state. Bytes that arrive glued to the hello frame (the
  /// peer's first messages usually do) carry over from the handshake.
  FrameDecoder decoder;
};

/// An accepted connection whose introductory hello frame is still in
/// flight; dropped if the hello misses its deadline.
struct TcpTransport::PendingHello {
  TcpStream stream;
  FrameDecoder decoder;
  std::chrono::steady_clock::time_point deadline;
};

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)) {}

TcpTransport::~TcpTransport() {
  stop();
  // The wake pipe outlives stop(): a racing send() may still prod it after
  // shutdown, and writing into a recycled descriptor would be far worse
  // than keeping two fds until destruction.
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
  wake_rx_ = wake_tx_ = -1;
}

std::uint16_t TcpTransport::listen_port() const noexcept {
  return listener_ ? listener_->port() : 0;
}

void TcpTransport::start() {
  SPCA_EXPECTS(!started_);
  started_ = true;
  // Advertise which readiness backend the io loop runs on (1 = epoll,
  // 0 = poll); the gauge surfaces it in /metrics.json and the Prometheus
  // exposition so fleet dashboards can spot a fallback to poll.
  MetricsRegistry::global()
      .gauge("spca.net.poller_backend")
      .set(std::string_view(poller_backend()) == "epoll" ? 1.0 : 0.0);
  if (!config_.listen_host.empty()) {
    listener_.emplace(config_.listen_host, config_.listen_port);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw TransportError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_rx_ = pipe_fds[0];
  wake_tx_ = pipe_fds[1];
  set_nonblocking_fd(wake_rx_);
  set_nonblocking_fd(wake_tx_);
  io_thread_ = std::thread([this] { io_loop(); });
  for (const auto& peer : config_.peers) {
    register_conn(connect_peer(peer, /*is_reconnect=*/false));
  }
}

void TcpTransport::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [id, conn] : conns_) {
      conn->alive.store(false, std::memory_order_relaxed);
      conn->stream.shutdown_both();
    }
  }
  inbox_cv_.notify_all();
  conn_cv_.notify_all();
  wake_io_thread();
  if (io_thread_.joinable()) io_thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  conns_.clear();
  pending_add_.clear();
  listener_.reset();
}

void TcpTransport::wake_io_thread() {
  if (wake_tx_ < 0) return;
  const std::byte one{1};
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  (void)::write(wake_tx_, &one, 1);
}

void TcpTransport::adopt_pending_conns(
    Poller& poller, std::map<int, std::shared_ptr<Conn>>& by_fd) {
  std::vector<std::shared_ptr<Conn>> adopted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    adopted.swap(pending_add_);
  }
  for (auto& conn : adopted) {
    // A connection superseded or dropped before adoption is simply released
    // here (closing its descriptor); it never enters the poll set.
    if (!conn->alive.load(std::memory_order_relaxed)) continue;
    const int fd = conn->stream.native_handle();
    if (fd < 0) continue;
    poller.add(fd);
    by_fd[fd] = std::move(conn);
  }
}

void TcpTransport::accept_ready(Poller& poller,
                                std::map<int, PendingHello>& pending) {
  for (;;) {
    TcpStream stream;
    try {
      stream = listener_->accept(std::chrono::milliseconds(0));
    } catch (const TransportError& e) {
      log_warn("tcp: accept failed: ", e.what());
      return;
    }
    if (!stream.valid()) return;
    const int fd = stream.native_handle();
    PendingHello hello;
    hello.stream = std::move(stream);
    hello.deadline = std::chrono::steady_clock::now() + config_.io_timeout;
    poller.add(fd);
    pending.emplace(fd, std::move(hello));
  }
}

bool TcpTransport::progress_handshake(
    Poller& poller, std::map<int, std::shared_ptr<Conn>>& by_fd,
    PendingHello& pending) {
  std::byte buf[4096];
  try {
    for (int round = 0; round < kMaxReadsPerWake; ++round) {
      if (pending.decoder.has_frame()) break;
      const std::ptrdiff_t n = pending.stream.recv_some(
          buf, sizeof(buf), std::chrono::milliseconds(0));
      if (n < 0) return true;  // nothing more now; hello still pending
      if (n == 0) throw ProtocolError("hello frame: peer closed early");
      pending.decoder.feed(buf, static_cast<std::size_t>(n));
    }
    if (!pending.decoder.has_frame()) return true;
    const Frame hello = pending.decoder.pop();
    if (hello.type != FrameType::kHello) {
      throw ProtocolError("expected hello as the first frame");
    }
    auto conn = std::make_shared<Conn>();
    conn->peer = decode_node_id(hello.payload);
    conn->stream = std::move(pending.stream);
    conn->decoder = std::move(pending.decoder);
    register_conn(conn);
    if (!conn->alive.load(std::memory_order_relaxed)) return false;
    // The descriptor is already in the poll set; promote it in place (the
    // stream moved, so the fd key is unchanged).
    by_fd[conn->stream.native_handle()] = conn;
    // Frames glued to the hello are already decoded; dispatch them now.
    if (!read_ready(by_fd.at(conn->stream.native_handle()))) {
      const int fd = conn->stream.native_handle();
      poller.remove(fd);
      by_fd.erase(fd);
    }
    return false;  // no longer pending either way
  } catch (const std::exception& e) {
    static Counter& errors =
        MetricsRegistry::global().counter("spca.net.frame_errors");
    errors.inc();
    log_warn("tcp: rejected inbound connection: ", e.what());
    FlightRecorder::global().note("protocol_error", -1, e.what());
    (void)FlightRecorder::global().dump("protocol_error");
    return false;
  }
}

bool TcpTransport::read_ready(const std::shared_ptr<Conn>& conn) {
  static Counter& bytes_rx =
      MetricsRegistry::global().counter("spca.net.bytes_rx");
  static Counter& control_rx =
      MetricsRegistry::global().counter("spca.net.control_rx");
  static Counter& frame_errors =
      MetricsRegistry::global().counter("spca.net.frame_errors");

  FrameDecoder& decoder = conn->decoder;
  std::byte buf[64 * 1024];
  bool dead = false;
  try {
    for (int round = 0; round < kMaxReadsPerWake; ++round) {
      if (!conn->alive.load(std::memory_order_relaxed)) {
        dead = true;
        break;
      }
      if (round > 0 || !decoder.has_frame()) {
        const std::ptrdiff_t n = conn->stream.recv_some(
            buf, sizeof(buf), std::chrono::milliseconds(0));
        if (n < 0) break;  // drained for now
        if (n == 0) {      // EOF: peer shut down
          dead = true;
          break;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
      }
      while (decoder.has_frame()) {
        Frame frame = decoder.pop();
        switch (frame.type) {
          case FrameType::kMessage: {
            Message msg = deserialize(frame.payload);
            bytes_rx.inc(frame.payload.size());
            deliver_local(std::move(msg));
            break;
          }
          case FrameType::kAdvance: {
            control_rx.inc();
            std::lock_guard<std::mutex> lock(mutex_);
            control_.push_back(ControlFrame{conn->peer, frame.type,
                                            std::move(frame.payload)});
            inbox_cv_.notify_all();
            break;
          }
          case FrameType::kHello:
            throw ProtocolError("unexpected hello on established connection");
        }
      }
    }
  } catch (const ProtocolError& e) {
    frame_errors.inc();
    log_warn("tcp: dropping connection to node ", conn->peer, ": ", e.what());
    FlightRecorder::global().note(
        "protocol_error", -1,
        "node " + std::to_string(conn->peer) + ": " + e.what());
    (void)FlightRecorder::global().dump("protocol_error");
    dead = true;
  } catch (const TransportError& e) {
    log_warn("tcp: read error from node ", conn->peer, ": ", e.what());
    dead = true;
  }
  if (!dead) return true;
  drop_conn(conn);
  inbox_cv_.notify_all();
  conn_cv_.notify_all();
  return false;
}

void TcpTransport::io_loop() {
  Poller poller(config_.poller);
  std::map<int, std::shared_ptr<Conn>> by_fd;
  std::map<int, PendingHello> pending;
  std::vector<PollerEvent> events;
  const int listen_fd =
      listener_ ? listener_->native_handle() : -1;
  if (listen_fd >= 0) poller.add(listen_fd);
  poller.add(wake_rx_);

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    adopt_pending_conns(poller, by_fd);
    watched_.store(by_fd.size() + pending.size(), std::memory_order_relaxed);
    (void)poller.wait(events, kPollSlice);
    for (const PollerEvent& event : events) {
      if (event.fd == wake_rx_) {
        std::byte sink[64];
        while (::read(wake_rx_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd) {
        accept_ready(poller, pending);
        continue;
      }
      const auto pending_it = pending.find(event.fd);
      if (pending_it != pending.end()) {
        if (!progress_handshake(poller, by_fd, pending_it->second)) {
          // Promoted or rejected; if the fd is not established now, it is
          // gone — stop polling it. (A promoted fd stays in the set.)
          if (by_fd.find(event.fd) == by_fd.end()) poller.remove(event.fd);
          pending.erase(pending_it);
        }
        continue;
      }
      const auto conn_it = by_fd.find(event.fd);
      if (conn_it == by_fd.end()) continue;  // already dropped this sweep
      if (!read_ready(conn_it->second)) {
        poller.remove(event.fd);
        by_fd.erase(conn_it);
      }
    }
    // Expire handshakes that never said hello; sweep dead connections whose
    // descriptors were shut down by another thread (drop/reset/supersede) —
    // their EOF arrives via the poller, but a shutdown pipe-closed race must
    // not leak entries.
    if (!pending.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->second.deadline <= now) {
          log_warn("tcp: dropping inbound connection (hello timeout)");
          poller.remove(it->first);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // Shutdown: unregister everything; streams close when the maps release
  // their last references (conns_ is cleared by stop() after the join).
  for (auto& [fd, conn] : by_fd) poller.remove(fd);
  for (auto& [fd, hello] : pending) poller.remove(fd);
  by_fd.clear();
  pending.clear();
}

void TcpTransport::register_conn(const std::shared_ptr<Conn>& conn) {
  bool seen_before = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      conn->alive.store(false, std::memory_order_relaxed);
      conn->stream.shutdown_both();
      return;
    }
    auto it = conns_.find(conn->peer);
    if (it != conns_.end()) {
      it->second->alive.store(false, std::memory_order_relaxed);
      it->second->stream.shutdown_both();
    }
    // Count registrations per peer so a re-register is recognized even when
    // the previous connection already died of EOF and was dropped.
    seen_before = registrations_[conn->peer]++ > 0;
    conns_[conn->peer] = conn;
    if (conn->outbound) {
      // Outbound sockets are created on caller threads; hand them to the
      // event loop for read multiplexing. Inbound sockets are already in
      // the poll set (the handshake ran there).
      pending_add_.push_back(conn);
    }
  }
  if (conn->outbound) wake_io_thread();
  if (seen_before && !conn->outbound) {
    // An inbound peer came back on a fresh socket (its previous connection
    // is superseded); outbound reconnects are counted at connect time.
    static Counter& reconnects =
        MetricsRegistry::global().counter("spca.net.reconnects");
    reconnects.inc();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  conn_cv_.notify_all();
}

void TcpTransport::drop_conn(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  conn->alive.store(false, std::memory_order_relaxed);
  conn->stream.shutdown_both();
  auto it = conns_.find(conn->peer);
  if (it != conns_.end() && it->second == conn) conns_.erase(it);
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::connect_peer(
    const TcpTransportConfig::Peer& peer, bool is_reconnect) {
  static Counter& retries =
      MetricsRegistry::global().counter("spca.net.connect_retries");
  RetryPolicy policy = config_.retry;
  // Distinct deterministic jitter sequences per (endpoint, peer) pair.
  policy.seed ^= (static_cast<std::uint64_t>(config_.node_id) << 32) ^ peer.id;
  auto conn = std::make_shared<Conn>();
  conn->peer = peer.id;
  conn->outbound = true;
  conn->stream = connect_with_retry(
      peer.host, peer.port, policy,
      [](std::size_t, std::chrono::milliseconds) { retries.inc(); });
  const std::vector<std::byte> hello =
      encode_frame(FrameType::kHello, encode_node_id(config_.node_id));
  conn->stream.send_all(hello.data(), hello.size(), config_.io_timeout);
  if (is_reconnect) {
    static Counter& reconnects =
        MetricsRegistry::global().counter("spca.net.reconnects");
    reconnects.inc();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  return conn;
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::conn_for(NodeId to) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = conns_.find(to);
    if (it != conns_.end() &&
        it->second->alive.load(std::memory_order_relaxed)) {
      return it->second;
    }
  }
  // No live connection. Outbound peers are redialed (with backoff); for
  // inbound peers the only cure is the peer reconnecting to us, so wait for
  // its handshake up to the I/O timeout.
  for (const auto& peer : config_.peers) {
    if (peer.id == to) {
      auto conn = connect_peer(peer, /*is_reconnect=*/true);
      register_conn(conn);
      return conn;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  const bool ok = conn_cv_.wait_for(lock, config_.io_timeout, [&] {
    if (stopping_) return true;
    auto it = conns_.find(to);
    return it != conns_.end() &&
           it->second->alive.load(std::memory_order_relaxed);
  });
  if (stopping_ || !ok) {
    throw TransportError("no connection to node " + std::to_string(to));
  }
  return conns_.at(to);
}

void TcpTransport::write_frame(NodeId to, const std::vector<std::byte>& frame) {
  for (int attempt = 0;; ++attempt) {
    std::shared_ptr<Conn> conn = conn_for(to);
    try {
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      conn->stream.send_all(frame.data(), frame.size(), config_.io_timeout);
      return;
    } catch (const TransportError& e) {
      drop_conn(conn);
      if (attempt >= 1) throw;
      log_warn("tcp: send to node ", to, " failed (", e.what(),
               "), reconnecting once");
    }
  }
}

void TcpTransport::deliver_local(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inbox_.push_back(std::move(msg));
  }
  inbox_cv_.notify_all();
}

void TcpTransport::send(const Message& msg) {
  static Histogram& send_seconds =
      MetricsRegistry::global().histogram("spca.net.send_seconds");
  std::vector<std::byte> wire = serialize(msg);
  account_send(stats_, msg, wire.size());
  const ScopedTimer timer(send_seconds);
  if (msg.to == config_.node_id) {
    // Self-delivery (the NOC's operator alarm): honest bytes, no socket.
    deliver_local(deserialize(wire));
    return;
  }
  write_frame(msg.to, encode_frame(FrameType::kMessage, wire));
}

void TcpTransport::send_control(NodeId to, FrameType type,
                                const std::vector<std::byte>& payload) {
  static Counter& control_tx =
      MetricsRegistry::global().counter("spca.net.control_tx");
  control_tx.inc();
  write_frame(to, encode_frame(type, payload));
}

std::vector<Message> TcpTransport::drain(NodeId node) {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out(std::make_move_iterator(inbox_.begin()),
                           std::make_move_iterator(inbox_.end()));
  inbox_.clear();
  return out;
}

std::vector<Message> TcpTransport::take(NodeId node, MessageType type) {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  std::deque<Message> rest;
  for (Message& msg : inbox_) {
    if (msg.type == type) {
      out.push_back(std::move(msg));
    } else {
      rest.push_back(std::move(msg));
    }
  }
  inbox_.swap(rest);
  return out;
}

bool TcpTransport::has_mail(NodeId node) const {
  SPCA_EXPECTS(node == config_.node_id);
  std::lock_guard<std::mutex> lock(mutex_);
  return !inbox_.empty();
}

bool TcpTransport::wait_for_mail(NodeId node,
                                 std::chrono::milliseconds timeout) {
  SPCA_EXPECTS(node == config_.node_id);
  std::unique_lock<std::mutex> lock(mutex_);
  inbox_cv_.wait_for(lock, timeout,
                     [&] { return stopping_ || !inbox_.empty(); });
  return !inbox_.empty();
}

std::optional<ControlFrame> TcpTransport::poll_control() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (control_.empty()) return std::nullopt;
  ControlFrame frame = std::move(control_.front());
  control_.pop_front();
  return frame;
}

bool TcpTransport::wait_for_activity(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  inbox_cv_.wait_for(lock, timeout, [&] {
    return stopping_ || !inbox_.empty() || !control_.empty();
  });
  return !inbox_.empty() || !control_.empty();
}

bool TcpTransport::connected(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(peer);
  return it != conns_.end() &&
         it->second->alive.load(std::memory_order_relaxed);
}

std::uint64_t TcpTransport::reconnects() const noexcept {
  return reconnects_.load(std::memory_order_relaxed);
}

void TcpTransport::reset_connection(NodeId peer) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = conns_.find(peer);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  drop_conn(conn);
  conn_cv_.notify_all();
}

void TcpTransport::ensure_connected(NodeId peer) {
  if (connected(peer)) return;
  for (const auto& p : config_.peers) {
    if (p.id == peer) {
      register_conn(connect_peer(p, /*is_reconnect=*/true));
      return;
    }
  }
}

std::vector<NodeId> TcpTransport::connected_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NodeId> peers;
  for (const auto& [id, conn] : conns_) {
    if (conn->alive.load(std::memory_order_relaxed)) peers.push_back(id);
  }
  return peers;
}

std::size_t TcpTransport::watched_connections() const {
  return watched_.load(std::memory_order_relaxed);
}

const char* TcpTransport::poller_backend() const {
  Poller probe(config_.poller);
  return probe.backend_name();
}

}  // namespace spca
