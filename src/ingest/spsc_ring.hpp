// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The ingest pipeline's only cross-thread hand-off: one reader thread pushes
// record batches, one consumer thread pops them. The design is the classic
// two-index ring (Lamport queue) with C++11 acquire/release ordering:
//
//   * the producer owns `tail_` (writes with release), the consumer owns
//     `head_` (writes with release);
//   * each side reads the other's index with acquire, and caches it to avoid
//     touching the shared cache line on every operation;
//   * a slot's contents are written before the tail release-store publishes
//     it, and a consumed slot is released to the producer by the head
//     release-store — so TSan sees a clean happens-before edge for every
//     slot in both directions.
//
// Backpressure is blocking, never lossy: a full ring makes push() spin-wait
// (pause → yield → micro-sleep) until the consumer frees a slot or the ring
// is closed. close() wakes both sides: push() returns false immediately,
// pop() drains the remaining items and then returns false.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace spca {

namespace detail {

/// Escalating wait used by both ring sides: cheap PAUSE spins first (the
/// other side is typically nanoseconds away), then scheduler yields, then
/// 50us sleeps so a stalled peer does not burn a core.
class SpinBackoff final {
 public:
  void wait() noexcept {
    ++spins_;
    if (spins_ <= 64) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
      return;
    }
    if (spins_ <= 1024) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

 private:
  std::uint32_t spins_ = 0;
};

}  // namespace detail

/// Bounded SPSC ring. Exactly one thread may call the producer operations
/// (push/try_push) and exactly one thread the consumer operations
/// (pop/try_pop); close() and the observers are safe from either side.
template <typename T>
class SpscRing final {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    SPCA_EXPECTS(capacity >= 1);
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer: enqueues `item`, blocking while the ring is full (the
  /// backpressure path — records are never dropped). Returns false iff the
  /// ring was closed, in which case `item` was not enqueued.
  bool push(T&& item) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (free_slots(tail) == 0) {
      blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
      detail::SpinBackoff backoff;
      while (free_slots(tail) == 0) {
        if (closed_.load(std::memory_order_acquire)) return false;
        backoff.wait();
      }
    }
    if (closed_.load(std::memory_order_acquire)) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: non-blocking push; false when full or closed.
  bool try_push(T&& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (free_slots(tail) == 0) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: dequeues into `out`, blocking while the ring is empty.
  /// Returns false iff the ring is closed AND fully drained — every item
  /// pushed before close() is still delivered.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (available(head) == 0) {
      detail::SpinBackoff backoff;
      while (available(head) == 0) {
        if (closed_.load(std::memory_order_acquire) && available(head) == 0) {
          // Re-check after observing closed: a final push may have landed
          // between the availability check and the closed load.
          cached_tail_ = tail_.load(std::memory_order_acquire);
          if (cached_tail_ == head) return false;
          break;
        }
        backoff.wait();
      }
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: non-blocking pop; false when nothing is available right now.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (available(head) == 0) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Marks the ring closed (idempotent, callable from any thread): blocked
  /// producers give up, the consumer drains and then sees end-of-stream.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Instantaneous occupancy; racy by design (monitoring only).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Number of push() calls that found the ring full and had to wait — the
  /// backpressure signal exported as spca.ingest.producer_blocks.
  [[nodiscard]] std::uint64_t blocked_pushes() const noexcept {
    return blocked_pushes_.load(std::memory_order_relaxed);
  }

 private:
  /// Producer-side free-slot count, refreshing the cached head only when the
  /// ring looks full (keeps the common case on one cache line).
  [[nodiscard]] std::size_t free_slots(std::uint64_t tail) noexcept {
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
    }
    return capacity() - static_cast<std::size_t>(tail - cached_head_);
  }

  /// Consumer-side available count, refreshing the cached tail on empty.
  [[nodiscard]] std::size_t available(std::uint64_t head) noexcept {
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
    }
    return static_cast<std::size_t>(cached_tail_ - head);
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer-owned line: tail index plus the producer's view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Consumer-owned line: head index plus the consumer's view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> blocked_pushes_{0};
};

}  // namespace spca
