// Replay engine: the ingest pipeline assembled end to end.
//
// A producer thread streams a record file (RecordFileReader) into the SPSC
// ring; the calling thread consumes batches, aggregates them O(1) per record
// into a small block of consecutive intervals, and flushes each completed
// block into a LocalMonitor through the batched absorb_block path. The
// division of labor mirrors a deployed monitor: the reader plays the packet
// capture front end, the ring the NIC queue, the consumer the Volume
// Counter + sketch update of Fig. 4.
//
// Determinism: records are applied in stream order and every per-cell
// accumulation is a plain double add in that order, so (with record files
// written by export_records) the per-interval volumes equal the source
// matrix bit-for-bit, and absorb_block is bit-identical to the per-interval
// path by construction. The optional checkers assert both facts while the
// replay runs rather than trusting them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dist/local_monitor.hpp"
#include "ingest/record_file.hpp"

namespace spca {

/// How much parity checking the replay performs while streaming.
enum class ReplayCheck {
  /// No checking: pure throughput measurement.
  kOff,
  /// Every flushed interval row is compared bit-exactly against the
  /// pre-aggregated golden matrix (import_records of the same file).
  kVolumes,
  /// kVolumes plus a reference monitor fed through the per-interval
  /// ingest_volume/absorb_interval path; full monitor state (save_state
  /// blobs) is compared at a cadence and at the end.
  kFull,
};

/// Parses "off" / "volumes" / "full"; throws InputError otherwise.
[[nodiscard]] ReplayCheck replay_check_from_string(std::string_view name);

/// Knobs of one replay run.
struct ReplayConfig {
  /// Record file to stream (binary or CSV; format is sniffed).
  std::string record_path;
  /// SPSC ring capacity in batches (rounded up to a power of two).
  std::size_t ring_batches = 64;
  /// Intervals aggregated per absorb_block flush.
  std::size_t interval_block = 8;
  /// Minimum number of passes over the file.
  std::uint32_t repeat = 1;
  /// Keep re-streaming (beyond `repeat`) until this much wall time elapsed;
  /// 0 disables. Passes after the first shift every interval by the file's
  /// interval count, so the monitor sees one long coherent stream.
  double min_seconds = 0.0;
  ReplayCheck check = ReplayCheck::kVolumes;
  /// Interval cadence of the full-state comparison under kFull.
  std::int64_t check_every = 64;
};

/// What a replay run observed.
struct ReplayStats {
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  std::uint64_t intervals = 0;
  std::uint64_t passes = 0;
  /// push() calls that found the ring full (backpressure events).
  std::uint64_t producer_blocks = 0;
  double seconds = 0.0;
  double records_per_sec = 0.0;
  /// False iff a checker caught a divergence; parity_error says where.
  bool parity_ok = true;
  std::string parity_error;
};

/// Streams `config.record_path` through `monitor` (which must be freshly
/// constructed, own exactly the file's flows, and have seen no intervals).
/// Updates the spca.ingest.* metrics. Throws InputError on malformed input
/// or a monitor/file shape mismatch; checker failures are reported through
/// ReplayStats::parity_ok instead (the stream stops early).
ReplayStats replay_records(LocalMonitor& monitor, const ReplayConfig& config);

}  // namespace spca
