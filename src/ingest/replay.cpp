#include "ingest/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "ingest/spsc_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

/// spca.ingest.* instruments, resolved once per process.
struct IngestMetrics {
  Counter& records = MetricsRegistry::global().counter("spca.ingest.records");
  Counter& batches = MetricsRegistry::global().counter("spca.ingest.batches");
  Counter& intervals =
      MetricsRegistry::global().counter("spca.ingest.intervals");
  Counter& passes = MetricsRegistry::global().counter("spca.ingest.passes");
  Counter& producer_blocks =
      MetricsRegistry::global().counter("spca.ingest.producer_blocks");
  Gauge& records_per_sec =
      MetricsRegistry::global().gauge("spca.ingest.records_per_sec");
  Histogram& ring_occupancy =
      MetricsRegistry::global().histogram("spca.ingest.ring_occupancy");
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics metrics;
  return metrics;
}

}  // namespace

ReplayCheck replay_check_from_string(std::string_view name) {
  if (name == "off") return ReplayCheck::kOff;
  if (name == "volumes") return ReplayCheck::kVolumes;
  if (name == "full") return ReplayCheck::kFull;
  throw InputError("unknown replay check mode: '" + std::string(name) + "'");
}

ReplayStats replay_records(LocalMonitor& monitor, const ReplayConfig& config) {
  SPCA_EXPECTS(config.repeat >= 1);
  SPCA_EXPECTS(config.interval_block >= 1);
  SPCA_EXPECTS(config.check_every >= 1);

  RecordFileHeader header;
  {
    RecordFileReader probe(config.record_path);
    header = probe.header();
  }
  const std::size_t w = monitor.flows().size();
  if (w != header.num_flows) {
    throw InputError("replay: monitor owns " + std::to_string(w) +
                     " flows but '" + config.record_path + "' carries " +
                     std::to_string(header.num_flows));
  }

  // Golden data: the pre-aggregated matrix the record stream must reproduce,
  // and (under kFull) a reference monitor driven down the per-interval path.
  std::unique_ptr<TraceSet> golden;
  std::unique_ptr<LocalMonitor> reference;
  if (config.check != ReplayCheck::kOff) {
    golden = std::make_unique<TraceSet>(import_records(config.record_path));
  }
  if (config.check == ReplayCheck::kFull) {
    reference = std::make_unique<LocalMonitor>(monitor);
  }

  SpscRing<RecordBatch> ring(config.ring_batches);
  std::exception_ptr producer_error;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Producer: re-streams the file until both the pass quota and the wall-
  // time quota are met, with an empty batch marking each end of pass.
  std::thread producer([&] {
    try {
      std::uint32_t pass = 0;
      while (pass < config.repeat || elapsed() < config.min_seconds) {
        RecordFileReader reader(config.record_path);
        RecordBatch batch;
        while (reader.next_batch(batch) > 0) {
          if (!ring.push(std::move(batch))) return;  // consumer closed
        }
        RecordBatch sentinel;
        if (!ring.push(std::move(sentinel))) return;
        ++pass;
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    ring.close();
  });

  ReplayStats stats;
  auto& metrics = ingest_metrics();
  const std::int64_t ni = header.num_intervals;
  const std::size_t block_rows = config.interval_block;
  std::vector<double> block(block_rows * w, 0.0);
  std::int64_t block_first = 0;  // global interval of block row 0
  std::int64_t pass_base = 0;    // global interval offset of the current pass

  const auto fail = [&](std::string message) {
    stats.parity_ok = false;
    FlightRecorder::global().note("replay_parity", block_first, message);
    stats.parity_error = std::move(message);
    ring.close();
  };

  const auto compare_states = [&](std::int64_t upto) {
    if (monitor.save_state() != reference->save_state()) {
      fail("monitor state diverged from the per-interval reference by "
           "interval " +
           std::to_string(upto));
    }
  };

  // Flushes the first `rows` block rows into the monitor (and the checkers).
  const auto flush = [&](std::size_t rows) {
    if (golden != nullptr) {
      for (std::size_t r = 0; r < rows && stats.parity_ok; ++r) {
        const std::int64_t t_in_pass = (block_first + r) % ni;
        for (std::size_t j = 0; j < w; ++j) {
          const double want = golden->volumes()(t_in_pass, j);
          const double got = block[r * w + j];
          if (std::memcmp(&want, &got, sizeof want) != 0) {
            fail("interval " +
                 std::to_string(block_first + static_cast<std::int64_t>(r)) +
                 " flow " + std::to_string(j) +
                 ": replayed volume differs from the pre-aggregated matrix");
            break;
          }
        }
      }
      if (!stats.parity_ok) return;
    }
    monitor.absorb_block(block_first, rows,
                         std::span<const double>(block.data(), rows * w));
    if (reference != nullptr) {
      const auto& flows = monitor.flows();
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t j = 0; j < w; ++j) {
          reference->ingest_volume(flows[j], block[r * w + j]);
        }
        reference->absorb_interval(block_first + static_cast<std::int64_t>(r));
      }
      const std::int64_t end = block_first + static_cast<std::int64_t>(rows);
      if (end / config.check_every != block_first / config.check_every) {
        compare_states(end);
      }
    }
    stats.intervals += rows;
    metrics.intervals.inc(rows);
    block_first += static_cast<std::int64_t>(rows);
    std::fill(block.begin(), block.begin() + static_cast<std::ptrdiff_t>(
                                                 rows * w),
              0.0);
  };

  RecordBatch batch;
  while (stats.parity_ok && ring.pop(batch)) {
    // The consumer is the replay's long-running loop, so it doubles as the
    // SIGUSR1 flight-dump servicing point (an atomic check when idle).
    (void)FlightRecorder::global().poll_dump_request();
    metrics.ring_occupancy.record(static_cast<double>(ring.size()));
    if (batch.empty()) {  // end-of-pass sentinel
      ++stats.passes;
      metrics.passes.inc();
      pass_base += ni;
      FlightRecorder::global().note("replay_pass", pass_base);
      continue;
    }
    ++stats.batches;
    metrics.batches.inc();
    stats.records += batch.count;
    metrics.records.inc(batch.count);
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      const FlowRecord& rec = batch.records[i];
      const std::int64_t t = pass_base + rec.interval;
      while (stats.parity_ok &&
             t >= block_first + static_cast<std::int64_t>(block_rows)) {
        flush(block_rows);
      }
      if (!stats.parity_ok) break;
      block[static_cast<std::size_t>(t - block_first) * w + rec.flow] +=
          rec.bytes;
    }
  }

  // Drain the trailing intervals of the final pass (possibly all-zero rows
  // up to the file's interval count, matching the per-interval path).
  if (stats.parity_ok) {
    while (block_first < pass_base && stats.parity_ok) {
      flush(std::min<std::size_t>(
          block_rows, static_cast<std::size_t>(pass_base - block_first)));
    }
    if (reference != nullptr && stats.parity_ok) compare_states(block_first);
  }

  producer.join();
  if (producer_error != nullptr) std::rethrow_exception(producer_error);

  stats.seconds = elapsed();
  stats.producer_blocks = ring.blocked_pushes();
  stats.records_per_sec =
      stats.seconds > 0.0 ? static_cast<double>(stats.records) / stats.seconds
                          : 0.0;
  metrics.producer_blocks.inc(stats.producer_blocks);
  metrics.records_per_sec.set(stats.records_per_sec);
  return stats;
}

}  // namespace spca
