#include "ingest/record_file.hpp"

#include <charconv>
#include <cmath>
#include <cstring>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"

namespace spca {

namespace {

// "SPCR" little-endian, followed by the format version.
constexpr std::uint32_t kMagic = 0x52435053;
constexpr std::uint32_t kVersion = 1;

/// Fixed binary header. Packed to 32 bytes; FlowRecords follow directly.
struct BinaryHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t num_flows = 0;
  std::uint32_t num_intervals = 0;
  double interval_seconds = 0.0;
  std::uint64_t record_count = 0;
};
static_assert(sizeof(BinaryHeader) == 32);

constexpr const char* kCsvHeader =
    "interval,flow,bytes,num_flows,num_intervals,interval_seconds";

[[noreturn]] void malformed(const std::string& path, const std::string& what) {
  throw InputError("record file '" + path + "': " + what);
}

/// Reads one line (without the trailing newline) into `line`; false at EOF.
bool read_line(std::FILE* f, std::string& line) {
  line.clear();
  char buf[256];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line.append(buf);
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
  }
  return !line.empty();
}

template <typename T>
T parse_unsigned(std::string_view field, const std::string& path,
                 const char* what) {
  T value{};
  const auto [p, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || p != field.data() + field.size()) {
    malformed(path, std::string("malformed ") + what + " '" +
                        std::string(field) + "'");
  }
  return value;
}

double parse_real(std::string_view field, const std::string& path,
                  const char* what) {
  double value = 0.0;
  const auto [p, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || p != field.data() + field.size()) {
    malformed(path, std::string("malformed ") + what + " '" +
                        std::string(field) + "'");
  }
  return value;
}

/// Splits a CSV record line into exactly `n` fields (in-place views).
void split_fields(std::string_view line, std::string_view* fields,
                  std::size_t n, const std::string& path) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t comma = line.find(',', start);
    const bool last = i + 1 == n;
    if (last != (comma == std::string_view::npos)) {
      malformed(path, "wrong column count in row '" + std::string(line) + "'");
    }
    fields[i] = last ? line.substr(start) : line.substr(start, comma - start);
    start = comma + 1;
  }
}

}  // namespace

RecordFormat record_format_from_string(std::string_view name) {
  if (name == "binary") return RecordFormat::kBinary;
  if (name == "csv") return RecordFormat::kCsv;
  throw InputError("unknown record format: '" + std::string(name) + "'");
}

void split_cell_exact(double volume, std::uint32_t parts,
                      std::vector<double>& out) {
  SPCA_EXPECTS(parts >= 1);
  out.assign(parts, 0.0);
  if (parts == 1 || volume == 0.0 || !std::isfinite(volume)) {
    out[0] = volume;
    return;
  }
  // Decompose |volume| = m * 2^e with m an integer < 2^53, then hand each
  // part an integer share of m. Every partial sum of shares is an integer
  // <= m < 2^53 at the same exponent e, hence exactly representable — so the
  // left-to-right double summation commits no rounding at any step.
  int exponent = 0;
  const double frac = std::frexp(std::fabs(volume), &exponent);
  const auto m = static_cast<std::uint64_t>(std::ldexp(frac, 53));  // exact
  const int e = exponent - 53;
  if (e < -1074) {
    // Shares would sit below the subnormal granularity 2^-1074 and round;
    // a volume this close to zero travels as a single record instead.
    out[0] = volume;
    return;
  }
  const std::uint64_t share = m / parts;
  const std::uint64_t remainder = m % parts;
  const double sign = volume < 0.0 ? -1.0 : 1.0;
  for (std::uint32_t i = 0; i < parts; ++i) {
    const std::uint64_t part_m = share + (i < remainder ? 1 : 0);
    out[i] = sign * std::ldexp(static_cast<double>(part_m), e);
  }
}

void export_records(const TraceSet& trace, const std::string& path,
                    const RecordExportOptions& options) {
  SPCA_EXPECTS(options.records_per_cell >= 1);
  if (trace.num_flows() > 0xffffffffULL ||
      trace.num_intervals() > 0xffffffffULL) {
    throw InputError("export_records: trace too large for the record format");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw InputError("export_records: cannot open '" + path +
                     "' for writing");
  }
  const std::uint32_t flows = static_cast<std::uint32_t>(trace.num_flows());
  const std::uint32_t intervals =
      static_cast<std::uint32_t>(trace.num_intervals());
  const std::uint64_t total = static_cast<std::uint64_t>(intervals) * flows *
                              options.records_per_cell;
  bool ok = true;
  if (options.format == RecordFormat::kBinary) {
    BinaryHeader header;
    header.num_flows = flows;
    header.num_intervals = intervals;
    header.interval_seconds = trace.interval_seconds();
    header.record_count = total;
    ok = std::fwrite(&header, sizeof header, 1, f) == 1;
  } else {
    ok = std::fprintf(f, "%s\n", kCsvHeader) > 0;
  }
  bool first_row = true;
  std::vector<double> parts;
  std::vector<FlowRecord> chunk;
  chunk.reserve(4096);
  for (std::uint32_t t = 0; ok && t < intervals; ++t) {
    for (std::uint32_t j = 0; ok && j < flows; ++j) {
      split_cell_exact(trace.volumes()(t, j), options.records_per_cell,
                       parts);
      for (const double bytes : parts) {
        if (options.format == RecordFormat::kBinary) {
          chunk.push_back({t, j, bytes});
          if (chunk.size() == chunk.capacity()) {
            ok = std::fwrite(chunk.data(), sizeof(FlowRecord), chunk.size(),
                             f) == chunk.size();
            chunk.clear();
          }
        } else {
          if (first_row) {
            ok = std::fprintf(f, "%u,%u,%s,%u,%u,%s\n", t, j,
                              format_double(bytes).c_str(), flows, intervals,
                              format_double(trace.interval_seconds()).c_str())
                 > 0;
            first_row = false;
          } else {
            ok = std::fprintf(f, "%u,%u,%s,0,0,0\n", t, j,
                              format_double(bytes).c_str()) > 0;
          }
        }
      }
    }
  }
  if (ok && !chunk.empty()) {
    ok = std::fwrite(chunk.data(), sizeof(FlowRecord), chunk.size(), f) ==
         chunk.size();
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) throw InputError("export_records: write to '" + path + "' failed");
}

TraceSet import_records(const std::string& path) {
  RecordFileReader reader(path);
  const RecordFileHeader& header = reader.header();
  Matrix volumes(header.num_intervals, header.num_flows);
  RecordBatch batch;
  while (reader.next_batch(batch) > 0) {
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      const FlowRecord& r = batch.records[i];
      volumes(r.interval, r.flow) += r.bytes;
    }
  }
  std::vector<std::string> names;
  names.reserve(header.num_flows);
  for (std::uint32_t j = 0; j < header.num_flows; ++j) {
    names.push_back("f" + std::to_string(j));
  }
  return TraceSet(std::move(volumes), header.interval_seconds,
                  std::move(names));
}

RecordFileReader::RecordFileReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw InputError("record file '" + path + "': cannot open for reading");
  }
  try {
    // Sniff the format: binary files start with the SPCR magic.
    std::uint32_t magic = 0;
    const std::size_t got = std::fread(&magic, 1, sizeof magic, file_);
    std::rewind(file_);
    if (got == sizeof magic && magic == kMagic) {
      format_ = RecordFormat::kBinary;
      parse_binary_header(path);
    } else {
      format_ = RecordFormat::kCsv;
      parse_csv_header(path);
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
}

RecordFileReader::~RecordFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void RecordFileReader::parse_binary_header(const std::string& path) {
  BinaryHeader header;
  if (std::fread(&header, sizeof header, 1, file_) != 1) {
    malformed(path, "truncated header");
  }
  if (header.magic != kMagic) malformed(path, "bad magic");
  if (header.version != kVersion) {
    malformed(path, "unsupported version " + std::to_string(header.version));
  }
  if (header.num_flows == 0) malformed(path, "zero flows");
  if (header.num_intervals == 0) malformed(path, "zero intervals");
  if (!std::isfinite(header.interval_seconds) ||
      header.interval_seconds <= 0.0) {
    malformed(path, "invalid interval_seconds");
  }
  // Validate the record count against the physical file size before trusting
  // it: truncation and trailing garbage are both rejected up front.
  if (std::fseek(file_, 0, SEEK_END) != 0) malformed(path, "seek failed");
  const long size = std::ftell(file_);
  if (size < 0) malformed(path, "tell failed");
  const std::uint64_t body =
      static_cast<std::uint64_t>(size) - sizeof(BinaryHeader);
  if (body != header.record_count * sizeof(FlowRecord)) {
    malformed(path, "record count disagrees with file size (truncated?)");
  }
  if (std::fseek(file_, sizeof(BinaryHeader), SEEK_SET) != 0) {
    malformed(path, "seek failed");
  }
  header_.num_flows = header.num_flows;
  header_.num_intervals = header.num_intervals;
  header_.interval_seconds = header.interval_seconds;
  header_.record_count = header.record_count;
}

void RecordFileReader::parse_csv_header(const std::string& path) {
  if (!read_line(file_, csv_line_)) malformed(path, "empty file");
  if (csv_line_ != kCsvHeader) {
    malformed(path, "bad CSV header '" + csv_line_ + "'");
  }
  // Metadata rides on the first data row (the TraceSet convention); read it
  // here so header() is populated before the first next_batch call. The row
  // itself stays pending for next_batch_csv to consume.
  do {
    if (!read_line(file_, csv_line_)) malformed(path, "no data rows");
  } while (csv_line_.empty());
  std::string_view fields[6];
  split_fields(csv_line_, fields, 6, path);
  header_.num_flows =
      parse_unsigned<std::uint32_t>(fields[3], path, "num_flows");
  header_.num_intervals =
      parse_unsigned<std::uint32_t>(fields[4], path, "num_intervals");
  header_.interval_seconds = parse_real(fields[5], path, "interval_seconds");
  if (header_.num_flows == 0) malformed(path, "zero flows");
  if (header_.num_intervals == 0) malformed(path, "zero intervals");
  if (!std::isfinite(header_.interval_seconds) ||
      header_.interval_seconds <= 0.0) {
    malformed(path, "invalid interval_seconds");
  }
  pending_line_ = true;
}

std::size_t RecordFileReader::next_batch(RecordBatch& out) {
  out.clear();
  const std::size_t n = format_ == RecordFormat::kBinary
                            ? next_batch_binary(out)
                            : next_batch_csv(out);
  return n;
}

std::size_t RecordFileReader::next_batch_binary(RecordBatch& out) {
  const std::uint64_t left = header_.record_count - records_read_;
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(left,
                                                       RecordBatch::kCapacity));
  if (want == 0) return 0;
  const std::size_t got =
      std::fread(out.records.data(), sizeof(FlowRecord), want, file_);
  if (got != want) malformed(path_, "short read (file changed underneath?)");
  out.count = static_cast<std::uint32_t>(got);
  for (std::uint32_t i = 0; i < out.count; ++i) validate(out.records[i]);
  records_read_ += got;
  return got;
}

std::size_t RecordFileReader::next_batch_csv(RecordBatch& out) {
  std::string_view fields[6];
  while (!out.full()) {
    if (!pending_line_ && !read_line(file_, csv_line_)) break;
    pending_line_ = false;
    if (csv_line_.empty()) continue;
    split_fields(csv_line_, fields, 6, path_);
    FlowRecord r;
    r.interval = parse_unsigned<std::uint32_t>(fields[0], path_, "interval");
    r.flow = parse_unsigned<std::uint32_t>(fields[1], path_, "flow");
    r.bytes = parse_real(fields[2], path_, "bytes");
    validate(r);
    out.push(r);
    ++records_read_;
  }
  header_.record_count = records_read_;
  return out.count;
}

void RecordFileReader::validate(const FlowRecord& record) {
  if (record.flow >= header_.num_flows) {
    malformed(path_, "flow id " + std::to_string(record.flow) +
                         " out of range (flows: " +
                         std::to_string(header_.num_flows) + ")");
  }
  if (record.interval >= header_.num_intervals) {
    malformed(path_, "interval " + std::to_string(record.interval) +
                         " out of range (intervals: " +
                         std::to_string(header_.num_intervals) + ")");
  }
  if (static_cast<std::int64_t>(record.interval) < last_interval_) {
    malformed(path_, "interval went backwards at record " +
                         std::to_string(records_read_));
  }
  if (!std::isfinite(record.bytes) || record.bytes < 0.0) {
    malformed(path_, "non-finite or negative byte volume");
  }
  last_interval_ = static_cast<std::int64_t>(record.interval);
}

}  // namespace spca
