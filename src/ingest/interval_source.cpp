#include "ingest/interval_source.hpp"

#include "obs/metrics.hpp"

namespace spca {

namespace {

/// The ingest counters this source feeds (same names as the replay engine;
/// the registry hands back the same instruments).
struct SourceMetrics {
  Counter& records = MetricsRegistry::global().counter("spca.ingest.records");
  Counter& batches = MetricsRegistry::global().counter("spca.ingest.batches");
  Counter& intervals =
      MetricsRegistry::global().counter("spca.ingest.intervals");
};

SourceMetrics& source_metrics() {
  static SourceMetrics metrics;
  return metrics;
}

}  // namespace

RecordIntervalSource::RecordIntervalSource(const std::string& path)
    : reader_(path) {}

bool RecordIntervalSource::next_interval(std::vector<double>& out,
                                         std::int64_t& t) {
  auto& metrics = source_metrics();
  const auto intervals =
      static_cast<std::int64_t>(reader_.header().num_intervals);
  if (next_t_ >= intervals) return false;
  out.assign(reader_.header().num_flows, 0.0);
  // Consume exactly the records of interval next_t_ (they are contiguous —
  // the reader enforces non-decreasing intervals); leave the first later
  // record pending in the batch.
  while (true) {
    if (pos_ >= batch_.count) {
      if (done_ || reader_.next_batch(batch_) == 0) {
        done_ = true;
        break;
      }
      pos_ = 0;
      metrics.batches.inc();
      metrics.records.inc(batch_.count);
    }
    const FlowRecord& rec = batch_.records[pos_];
    if (static_cast<std::int64_t>(rec.interval) > next_t_) break;
    out[rec.flow] += rec.bytes;
    ++pos_;
  }
  t = next_t_++;
  metrics.intervals.inc();
  return true;
}

}  // namespace spca
