// Flow-record trace files: the on-disk sources the ingest pipeline reads.
//
// Two formats carry the same logical stream:
//
//   * Binary ("SPCR"): a fixed 32-byte header — magic, version, flow count,
//     interval count, interval seconds, record count — followed by packed
//     16-byte FlowRecords. The reader validates the header before trusting
//     any length field (same discipline as the wire-frame codec) and checks
//     every record: flow id in range, interval in range and non-decreasing,
//     byte volume finite and non-negative. Truncation is detected up front
//     from the file size.
//   * CSV: columns interval,flow,bytes,num_flows,num_intervals,
//     interval_seconds; the three metadata columns are meaningful on the
//     first data row only (the TraceSet convention) and zero afterwards.
//     Parsed streamingly — record CSVs can dwarf the interval-matrix CSVs
//     CsvReader was built for — with the same per-record validation.
//
// TraceSet round trip: export_records turns the pre-aggregated interval
// matrix into a record stream, optionally splitting each (interval, flow)
// cell into several sub-records whose *sequential* double sum reproduces the
// cell volume bit-exactly (see split_cell_exact), so a replay through the
// record path yields the identical trajectory. import_records aggregates a
// record file back into a TraceSet.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ingest/record.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// On-disk format of a record file.
enum class RecordFormat {
  kBinary,
  kCsv,
};

/// Parses "binary" / "csv"; throws InputError otherwise.
[[nodiscard]] RecordFormat record_format_from_string(std::string_view name);

/// Stream metadata carried by both formats.
struct RecordFileHeader {
  std::uint32_t num_flows = 0;
  std::uint32_t num_intervals = 0;
  double interval_seconds = 0.0;
  /// Total records in the file (0 in CSV headers until read to the end).
  std::uint64_t record_count = 0;
};

/// Splits `volume` into `parts` non-negative doubles whose left-to-right
/// sequential double-precision sum is bit-exactly `volume` (partial sums are
/// constructed to be exactly representable via Sterbenz-style cancellation).
/// This is what makes sub-interval record streams replayable without any
/// floating-point drift relative to the pre-aggregated matrix.
void split_cell_exact(double volume, std::uint32_t parts,
                      std::vector<double>& out);

/// Options of export_records.
struct RecordExportOptions {
  RecordFormat format = RecordFormat::kBinary;
  /// Sub-records per (interval, flow) cell; >1 models packet-level NetFlow
  /// streams and exercises the O(1)-per-record aggregation path.
  std::uint32_t records_per_cell = 1;
};

/// Writes `trace` as a record file at `path`. Records are ordered interval-
/// major, flow-minor, sub-record last — the aggregation order the replay
/// consumer reproduces. Throws InputError on I/O failure or a trace whose
/// shape does not fit the format (e.g. > 2^32 flows).
void export_records(const TraceSet& trace, const std::string& path,
                    const RecordExportOptions& options = {});

/// Reads a record file back into a pre-aggregated TraceSet (flow names are
/// synthesized, events are not part of the record format). The aggregation
/// adds sub-records in stream order, so a file written by export_records
/// reproduces the source volumes bit-exactly.
[[nodiscard]] TraceSet import_records(const std::string& path);

/// Streaming record-file reader used by the pipeline's producer thread.
/// Detects the format from the file contents. Every batch is validated;
/// malformed input throws InputError (never garbage records downstream).
class RecordFileReader final {
 public:
  explicit RecordFileReader(const std::string& path);
  ~RecordFileReader();

  RecordFileReader(const RecordFileReader&) = delete;
  RecordFileReader& operator=(const RecordFileReader&) = delete;

  [[nodiscard]] const RecordFileHeader& header() const noexcept {
    return header_;
  }
  [[nodiscard]] RecordFormat format() const noexcept { return format_; }

  /// Fills `out` with up to RecordBatch::kCapacity validated records;
  /// returns the number read (0 at end of stream).
  std::size_t next_batch(RecordBatch& out);

 private:
  void parse_binary_header(const std::string& path);
  void parse_csv_header(const std::string& path);
  std::size_t next_batch_binary(RecordBatch& out);
  std::size_t next_batch_csv(RecordBatch& out);
  void validate(const FlowRecord& record);

  std::FILE* file_ = nullptr;
  std::string path_;
  RecordFormat format_ = RecordFormat::kBinary;
  RecordFileHeader header_;
  std::uint64_t records_read_ = 0;
  std::int64_t last_interval_ = -1;
  bool pending_line_ = false;  // csv_line_ holds an unconsumed data row
  std::string csv_line_;       // reused line buffer
};

}  // namespace spca
