// Adapter between the record-stream world and the interval-lock-step world:
// streams a record file as per-interval aggregated volume rows, which is the
// shape the net/ daemons (and anything else built around TraceSet rows)
// consume. Aggregation is a plain double add in stream order, so a file
// written by export_records reproduces the source matrix rows bit-exactly —
// a daemon fed through this source follows the identical trajectory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/record_file.hpp"

namespace spca {

/// Streaming per-interval view of a record file.
class RecordIntervalSource final {
 public:
  /// Opens `path` (binary or CSV; sniffed). Throws InputError on malformed
  /// input, like the underlying reader.
  explicit RecordIntervalSource(const std::string& path);

  [[nodiscard]] const RecordFileHeader& header() const noexcept {
    return reader_.header();
  }

  /// Fills `out` (resized to num_flows) with the next interval's aggregated
  /// volumes and sets `t` to its index. Every interval 0..num_intervals-1 is
  /// emitted in order — intervals without records yield all-zero rows, the
  /// same rows the pre-aggregated matrix holds. Returns false once all
  /// intervals were emitted.
  bool next_interval(std::vector<double>& out, std::int64_t& t);

 private:
  RecordFileReader reader_;
  RecordBatch batch_;
  std::uint32_t pos_ = 0;    // next unconsumed record in batch_
  std::int64_t next_t_ = 0;  // next interval to emit
  bool done_ = false;        // reader exhausted
};

}  // namespace spca
