// Flow-record model of the ingest pipeline: the unit of work the line-rate
// front end moves from trace readers into a monitor.
//
// A FlowRecord is one pre-aggregated NetFlow-style observation: "flow j saw
// `bytes` of traffic during measurement interval t". Several records may
// cover the same (interval, flow) cell — their byte counts add, exactly like
// packets adding into the Volume Counter of Sec. IV-A — and a monitor's
// per-record work stays O(1), which is what lets the pipeline absorb
// millions of records per second (Theorem 1's operating regime).
//
// Records travel in fixed-size batches so the SPSC ring amortizes its
// producer/consumer synchronization over kCapacity records.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace spca {

/// One flow observation of the record stream. Fixed 16-byte little-endian
/// layout — this is also the on-disk record of the binary trace format.
struct FlowRecord {
  /// Measurement interval index the observation falls into (non-decreasing
  /// along a stream).
  std::uint32_t interval = 0;
  /// Global OD-flow id (< the stream's flow count).
  std::uint32_t flow = 0;
  /// Observed byte volume; must be finite and non-negative.
  double bytes = 0.0;
};

static_assert(std::is_trivially_copyable_v<FlowRecord>);
static_assert(sizeof(FlowRecord) == 16,
              "FlowRecord is the on-disk record layout and must stay packed");

/// A fixed-capacity run of records: the unit carried by the SPSC ring.
struct RecordBatch {
  static constexpr std::size_t kCapacity = 512;

  std::array<FlowRecord, kCapacity> records;
  std::uint32_t count = 0;

  [[nodiscard]] bool full() const noexcept { return count == kCapacity; }
  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  void clear() noexcept { count = 0; }
  void push(const FlowRecord& r) noexcept { records[count++] = r; }
};

}  // namespace spca
