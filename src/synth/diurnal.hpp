// Deterministic seasonal traffic shape: the smooth daily/weekly cycle that
// dominates backbone OD-flow volume series (clearly visible in the paper's
// Fig. 5 plots of Abilene flows).
#pragma once

#include <cstdint>

namespace spca {

/// Parameters of the seasonal profile. The returned multiplier is >= floor
/// and averages roughly 1.0 over a week.
struct DiurnalProfile {
  /// Seconds per day in trace time (86400 for real traces).
  double day_seconds = 86400.0;
  /// Relative amplitude of the daily cycle (0 = flat).
  double daily_amplitude = 0.45;
  /// Relative amplitude of the second harmonic (sharpens the evening peak).
  double harmonic_amplitude = 0.15;
  /// Weekend suppression factor in [0, 1) (0.25 = weekends 25% lower).
  double weekend_dip = 0.25;
  /// Phase of the daily peak, as a fraction of a day (0.58 ~ 2pm local).
  double peak_fraction = 0.58;
  /// Lower bound on the multiplier.
  double floor = 0.15;
};

/// The seasonal multiplier at absolute time `t_seconds` from trace start.
[[nodiscard]] double diurnal_multiplier(const DiurnalProfile& profile,
                                        double t_seconds) noexcept;

}  // namespace spca
