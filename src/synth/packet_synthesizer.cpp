#include "synth/packet_synthesizer.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/splitmix64.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {

std::vector<Packet> synthesize_packets(double volume, FlowId flow,
                                       std::uint32_t num_routers,
                                       std::int64_t interval,
                                       const PacketSizeModel& model,
                                       std::uint64_t seed) {
  SPCA_EXPECTS(volume >= 0.0);
  SPCA_EXPECTS(model.small_bytes > 0 && model.large_bytes >= model.small_bytes);
  SPCA_EXPECTS(model.large_fraction >= 0.0 && model.large_fraction <= 1.0);
  const OdPair od = od_pair_of(flow, num_routers);

  std::vector<Packet> packets;
  Xoshiro256 gen(splitmix64_mix(seed ^ (0xf1ee0000ULL + flow)));
  double remaining = volume;
  while (remaining >= static_cast<double>(model.small_bytes)) {
    const bool large =
        bits_to_unit_double(gen()) < model.large_fraction &&
        remaining >= static_cast<double>(model.large_bytes);
    const std::uint32_t size = large ? model.large_bytes : model.small_bytes;
    packets.push_back(Packet{od.origin, od.destination, size, interval});
    remaining -= static_cast<double>(size);
  }
  if (remaining > 0.5 && !packets.empty()) {
    // Fold the rounding remainder into the last packet.
    packets.back().size_bytes += static_cast<std::uint32_t>(remaining + 0.5);
  } else if (remaining > 0.5) {
    packets.push_back(Packet{od.origin, od.destination,
                             static_cast<std::uint32_t>(remaining + 0.5),
                             interval});
  }
  return packets;
}

std::vector<Packet> synthesize_interval(const TraceSet& trace,
                                        std::size_t interval,
                                        std::uint32_t num_routers,
                                        const PacketSizeModel& model,
                                        std::uint64_t seed) {
  SPCA_EXPECTS(interval < trace.num_intervals());
  std::vector<Packet> stream;
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    auto packets = synthesize_packets(
        trace.volumes()(interval, j), static_cast<FlowId>(j), num_routers,
        static_cast<std::int64_t>(interval), model,
        splitmix64_mix(seed + interval));
    stream.insert(stream.end(), packets.begin(), packets.end());
  }
  // Interleave arrivals: Fisher-Yates with a deterministic stream.
  Xoshiro256 gen(splitmix64_mix(seed ^ 0xdeadbeefULL) + interval);
  for (std::size_t i = stream.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(gen, i));
    std::swap(stream[i - 1], stream[j]);
  }
  return stream;
}

}  // namespace spca
