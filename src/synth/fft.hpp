// Radix-2 complex FFT — the substrate for the Davies-Harte fractional
// Gaussian noise sampler. Iterative in-place Cooley-Tukey; sizes must be
// powers of two.
#pragma once

#include <complex>
#include <vector>

namespace spca {

/// In-place FFT of `data` (size must be a power of two; 0 and 1 are
/// trivially allowed). `inverse` applies the conjugate transform and the
/// 1/N normalization.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_power_of_two(std::size_t n) noexcept;

}  // namespace spca
