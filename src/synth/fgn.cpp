#include "synth/fgn.hpp"

#include <cmath>
#include <complex>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "synth/fft.hpp"

namespace spca {

double fgn_autocovariance(std::size_t lag, double hurst) {
  SPCA_EXPECTS(hurst > 0.0 && hurst < 1.0);
  const double k = static_cast<double>(lag);
  const double two_h = 2.0 * hurst;
  return 0.5 * (std::pow(k + 1.0, two_h) - 2.0 * std::pow(k, two_h) +
                std::pow(std::abs(k - 1.0), two_h));
}

std::vector<double> fgn_davies_harte(std::size_t n, double hurst,
                                     std::uint64_t seed) {
  SPCA_EXPECTS(n >= 1);
  SPCA_EXPECTS(hurst > 0.0 && hurst < 1.0);

  // Build a circulant embedding of the covariance over M = 2 * 2^ceil points
  // so the FFT size is a power of two. First row:
  //   c = [g(0), g(1), ..., g(M/2), g(M/2 - 1), ..., g(1)].
  const std::size_t half = next_power_of_two(n);
  const std::size_t m = 2 * half;
  std::vector<std::complex<double>> c(m);
  for (std::size_t k = 0; k <= half; ++k) {
    c[k] = fgn_autocovariance(k, hurst);
  }
  for (std::size_t k = half + 1; k < m; ++k) {
    c[k] = c[m - k];
  }

  // Eigenvalues of the circulant = FFT of its first row. They are
  // non-negative for fGn; clamp the tiny negatives rounding introduces.
  fft(c, /*inverse=*/false);
  std::vector<double> lambda(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double ev = c[k].real();
    if (ev < -1e-8 * static_cast<double>(m)) {
      throw NumericalError(
          "fgn_davies_harte: circulant embedding not nonnegative definite");
    }
    lambda[k] = ev > 0.0 ? ev : 0.0;
  }

  // Synthesize: W_k complex Gaussian with the Davies-Harte symmetry rules,
  // X = FFT(W)/sqrt(M) restricted to the first n points.
  Xoshiro256 gen(seed);
  std::vector<std::complex<double>> w(m);
  w[0] = std::sqrt(lambda[0]) * standard_normal(gen);
  w[half] = std::sqrt(lambda[half]) * standard_normal(gen);
  for (std::size_t k = 1; k < half; ++k) {
    const double a = standard_normal(gen);
    const double b = standard_normal(gen);
    const double scale = std::sqrt(lambda[k] / 2.0);
    w[k] = std::complex<double>(scale * a, scale * b);
    w[m - k] = std::conj(w[k]);
  }
  fft(w, /*inverse=*/false);

  std::vector<double> out(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = w[i].real() * norm;
  }
  return out;
}

std::vector<double> fgn_hosking(std::size_t n, double hurst,
                                std::uint64_t seed) {
  SPCA_EXPECTS(n >= 1);
  SPCA_EXPECTS(hurst > 0.0 && hurst < 1.0);

  Xoshiro256 gen(seed ^ 0x9d2c5680u);
  std::vector<double> out(n);
  std::vector<double> phi(n, 0.0);      // current AR coefficients
  std::vector<double> prev_phi(n, 0.0);
  double v = 1.0;  // innovation variance

  out[0] = standard_normal(gen);
  for (std::size_t i = 1; i < n; ++i) {
    // Durbin-Levinson update of the AR(i) coefficients.
    double acc = fgn_autocovariance(i, hurst);
    for (std::size_t j = 1; j < i; ++j) {
      acc -= prev_phi[j - 1] * fgn_autocovariance(i - j, hurst);
    }
    const double kappa = acc / v;
    phi[i - 1] = kappa;
    for (std::size_t j = 0; j + 1 < i; ++j) {
      phi[j] = prev_phi[j] - kappa * prev_phi[i - 2 - j];
    }
    v *= 1.0 - kappa * kappa;
    if (v <= 0.0) {
      throw NumericalError("fgn_hosking: innovation variance collapsed");
    }

    double mean = 0.0;
    for (std::size_t j = 0; j < i; ++j) {
      mean += phi[j] * out[i - 1 - j];
    }
    out[i] = mean + std::sqrt(v) * standard_normal(gen);
    prev_phi = phi;
  }
  return out;
}

}  // namespace spca
