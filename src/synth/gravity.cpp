#include "synth/gravity.hpp"

#include "common/contracts.hpp"

namespace spca {

Vector gravity_means(const std::vector<double>& router_weights,
                     double total_bytes_per_interval, double self_fraction) {
  const std::size_t r = router_weights.size();
  SPCA_EXPECTS(r >= 2);
  SPCA_EXPECTS(total_bytes_per_interval > 0.0);
  SPCA_EXPECTS(self_fraction >= 0.0);
  for (const double w : router_weights) SPCA_EXPECTS(w > 0.0);

  Vector means(r * r);
  double unnormalized_total = 0.0;
  for (std::size_t o = 0; o < r; ++o) {
    for (std::size_t d = 0; d < r; ++d) {
      double v = router_weights[o] * router_weights[d];
      if (o == d) v *= self_fraction;
      means[o * r + d] = v;
      unnormalized_total += v;
    }
  }
  means *= total_bytes_per_interval / unnormalized_total;
  return means;
}

std::vector<double> abilene_router_weights() {
  // ATLA, CHIC, HOUS, KANS, LOSA, NEWY, SALT, SEAT, WASH.
  return {1.1, 1.6, 0.9, 0.6, 1.5, 1.8, 0.5, 0.8, 1.3};
}

}  // namespace spca
