// End-host address synthesis for the entropy measurement pipeline.
//
// Normal traffic: each router fronts a pool of hosts whose activity is
// Zipf-distributed (few heavy talkers, long tail) — the structure whose
// per-flow address entropy is stable interval over interval. Scan traffic:
// one source sweeping uniformly random destination addresses — tiny in
// bytes, glaring in destination-address entropy.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/flow.hpp"

namespace spca {

/// Parameters of the normal address-popularity model.
struct AddressModel {
  /// Hosts attached behind each router.
  std::uint32_t hosts_per_router = 512;
  /// Zipf popularity exponent (0 = uniform; ~1 is Internet-like).
  double zipf_exponent = 1.0;
};

/// Address of host `host` behind router `router` (disjoint per-router
/// pools).
[[nodiscard]] constexpr std::uint32_t host_address(RouterId router,
                                                   std::uint32_t host) noexcept {
  return (router << 20) | host;
}

/// Fills src_addr/dst_addr of every packet: the source is a Zipf draw from
/// the origin router's pool, the destination from the destination router's
/// pool. Deterministic in `seed`.
void assign_addresses(std::vector<Packet>& packets, const AddressModel& model,
                      std::uint64_t seed);

/// Synthesizes a port/address-scan burst: `count` small packets from ONE
/// source host behind the flow's origin toward uniformly random
/// destination addresses behind the flow's destination router — the
/// low-volume, high-entropy anomaly of Sec. I.
[[nodiscard]] std::vector<Packet> synthesize_scan_packets(
    FlowId flow, std::uint32_t num_routers, std::int64_t interval,
    std::size_t count, std::uint32_t bytes_each, const AddressModel& model,
    std::uint64_t seed);

}  // namespace spca
