// Expands interval-level OD volumes back into a packet stream, so the full
// local-monitor path (packet -> aggregation -> Volume Counter -> VH) can be
// exercised end-to-end in examples and integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/flow.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Packet-size model: a bimodal mix of small (ACK-sized) and large
/// (MTU-sized) packets, the classic backbone distribution.
struct PacketSizeModel {
  std::uint32_t small_bytes = 64;
  std::uint32_t large_bytes = 1500;
  /// Fraction of packets that are large.
  double large_fraction = 0.55;
};

/// Generates the packets of one interval for one flow, consuming `volume`
/// bytes (the last packet absorbs rounding). Deterministic in `seed`.
[[nodiscard]] std::vector<Packet> synthesize_packets(
    double volume, FlowId flow, std::uint32_t num_routers,
    std::int64_t interval, const PacketSizeModel& model, std::uint64_t seed);

/// Generates the full packet stream of one interval of a trace (all flows),
/// in randomized arrival order.
[[nodiscard]] std::vector<Packet> synthesize_interval(
    const TraceSet& trace, std::size_t interval,
    std::uint32_t num_routers, const PacketSizeModel& model,
    std::uint64_t seed);

}  // namespace spca
