#include "synth/fft.hpp"

#include <numbers>

#include "common/contracts.hpp"

namespace spca {

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  SPCA_EXPECTS((n & (n - 1)) == 0);

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

}  // namespace spca
