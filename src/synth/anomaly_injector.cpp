#include "synth/anomaly_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/stats.hpp"
#include "rand/distributions.hpp"
#include "rand/splitmix64.hpp"

namespace spca {

namespace {

/// Clamps an episode to the trace and returns the inclusive end interval.
std::int64_t clamp_episode(const TraceSet& trace, std::int64_t start,
                           std::int64_t duration) {
  SPCA_EXPECTS(duration >= 1);
  SPCA_EXPECTS(start >= 0 &&
               static_cast<std::size_t>(start) < trace.num_intervals());
  const std::int64_t last =
      std::min<std::int64_t>(start + duration - 1,
                             static_cast<std::int64_t>(trace.num_intervals()) - 1);
  return last;
}

}  // namespace

AnomalyInjector::AnomalyInjector(const Topology& topology, std::uint64_t seed)
    : topology_(topology), rng_state_(seed) {}

std::uint64_t AnomalyInjector::next_u64() {
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  return splitmix64_mix(rng_state_);
}

void AnomalyInjector::inject_ddos(TraceSet& trace, std::int64_t start,
                                  std::int64_t duration, RouterId victim,
                                  double magnitude) {
  SPCA_EXPECTS(victim < topology_.num_routers());
  SPCA_EXPECTS(magnitude > 0.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const std::uint32_t r = topology_.num_routers();

  AnomalyEvent event{start, last, {}, "ddos", magnitude};
  for (RouterId o = 0; o < r; ++o) {
    if (o == victim) continue;
    const FlowId f = od_flow_id(o, victim, r);
    event.flows.push_back(f);
    for (std::int64_t t = start; t <= last; ++t) {
      trace.volumes()(static_cast<std::size_t>(t), f) *= 1.0 + magnitude;
    }
  }
  trace.add_event(std::move(event));
}

void AnomalyInjector::inject_botnet(TraceSet& trace, std::int64_t start,
                                    std::int64_t duration,
                                    const std::vector<FlowId>& flows,
                                    double fraction_of_std) {
  SPCA_EXPECTS(!flows.empty());
  SPCA_EXPECTS(fraction_of_std > 0.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const Vector variances = column_variances(trace.volumes());

  AnomalyEvent event{start, last, flows, "botnet", fraction_of_std};
  for (const FlowId f : flows) {
    SPCA_EXPECTS(f < trace.num_flows());
    const double delta = fraction_of_std * std::sqrt(variances[f]);
    for (std::int64_t t = start; t <= last; ++t) {
      trace.volumes()(static_cast<std::size_t>(t), f) += delta;
    }
  }
  trace.add_event(std::move(event));
}

Vector AnomalyInjector::local_std(const TraceSet& trace) {
  SPCA_EXPECTS(trace.num_intervals() >= 2);
  const std::size_t n = trace.num_intervals();
  Vector out(trace.num_flows());
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t t = 1; t < n; ++t) {
      const double d = trace.volumes()(t, j) - trace.volumes()(t - 1, j);
      sum += d;
      sum2 += d * d;
    }
    const double count = static_cast<double>(n - 1);
    const double var = sum2 / count - (sum / count) * (sum / count);
    // Var(x_t - x_{t-1}) = 2 Var(x) for weakly dependent noise.
    out[j] = std::sqrt(std::max(var, 0.0) / 2.0);
  }
  return out;
}

void AnomalyInjector::inject_botnet_local(TraceSet& trace, std::int64_t start,
                                          std::int64_t duration,
                                          const std::vector<FlowId>& flows,
                                          double fraction_of_local_std) {
  SPCA_EXPECTS(!flows.empty());
  SPCA_EXPECTS(fraction_of_local_std > 0.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const Vector sigma = local_std(trace);

  AnomalyEvent event{start, last, flows, "botnet", fraction_of_local_std};
  for (const FlowId f : flows) {
    SPCA_EXPECTS(f < trace.num_flows());
    const double delta = fraction_of_local_std * sigma[f];
    for (std::int64_t t = start; t <= last; ++t) {
      trace.volumes()(static_cast<std::size_t>(t), f) += delta;
    }
  }
  trace.add_event(std::move(event));
}

void AnomalyInjector::inject_flash_crowd(TraceSet& trace, std::int64_t start,
                                         std::int64_t duration, RouterId dest,
                                         double peak_magnitude) {
  SPCA_EXPECTS(dest < topology_.num_routers());
  SPCA_EXPECTS(peak_magnitude > 0.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const std::uint32_t r = topology_.num_routers();
  const double len = static_cast<double>(last - start + 1);

  AnomalyEvent event{start, last, {}, "flash-crowd", peak_magnitude};
  for (RouterId o = 0; o < r; ++o) {
    if (o == dest) continue;
    const FlowId f = od_flow_id(o, dest, r);
    event.flows.push_back(f);
    for (std::int64_t t = start; t <= last; ++t) {
      // Triangular ramp peaking mid-episode.
      const double pos = (static_cast<double>(t - start) + 0.5) / len;
      const double ramp = 1.0 - std::abs(2.0 * pos - 1.0);
      trace.volumes()(static_cast<std::size_t>(t), f) *=
          1.0 + peak_magnitude * ramp;
    }
  }
  trace.add_event(std::move(event));
}

void AnomalyInjector::inject_outage(TraceSet& trace, std::int64_t start,
                                    std::int64_t duration, RouterId router,
                                    double residual) {
  SPCA_EXPECTS(router < topology_.num_routers());
  SPCA_EXPECTS(residual >= 0.0 && residual < 1.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const std::uint32_t r = topology_.num_routers();

  AnomalyEvent event{start, last, {}, "outage", 1.0 - residual};
  for (RouterId other = 0; other < r; ++other) {
    if (other == router) continue;
    for (const FlowId f : {od_flow_id(other, router, r),
                           od_flow_id(router, other, r)}) {
      event.flows.push_back(f);
      for (std::int64_t t = start; t <= last; ++t) {
        trace.volumes()(static_cast<std::size_t>(t), f) *= residual;
      }
    }
  }
  trace.add_event(std::move(event));
}

void AnomalyInjector::inject_scan(TraceSet& trace, std::int64_t start,
                                  std::int64_t duration, RouterId origin,
                                  double added_bytes) {
  SPCA_EXPECTS(origin < topology_.num_routers());
  SPCA_EXPECTS(added_bytes > 0.0);
  const std::int64_t last = clamp_episode(trace, start, duration);
  const std::uint32_t r = topology_.num_routers();

  AnomalyEvent event{start, last, {}, "scan", added_bytes};
  for (RouterId d = 0; d < r; ++d) {
    if (d == origin) continue;
    const FlowId f = od_flow_id(origin, d, r);
    event.flows.push_back(f);
    for (std::int64_t t = start; t <= last; ++t) {
      trace.volumes()(static_cast<std::size_t>(t), f) += added_bytes;
    }
  }
  trace.add_event(std::move(event));
}

std::vector<FlowId> AnomalyInjector::random_flows(std::size_t k) {
  const std::uint32_t r = topology_.num_routers();
  std::vector<FlowId> all;
  for (RouterId o = 0; o < r; ++o) {
    for (RouterId d = 0; d < r; ++d) {
      if (o != d) all.push_back(od_flow_id(o, d, r));
    }
  }
  SPCA_EXPECTS(k <= all.size());
  // Partial Fisher-Yates shuffle.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(next_u64() % (all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::vector<AnomalyEvent> AnomalyInjector::inject_mixture(TraceSet& trace,
                                                          std::size_t count,
                                                          std::int64_t first,
                                                          std::int64_t last) {
  SPCA_EXPECTS(first >= 0 && last > first);
  SPCA_EXPECTS(static_cast<std::size_t>(last) <= trace.num_intervals());
  const std::size_t before = trace.events().size();
  std::vector<bool> occupied(trace.num_intervals(), false);
  const std::uint32_t r = topology_.num_routers();

  std::size_t injected = 0;
  std::size_t attempts = 0;
  while (injected < count && attempts < count * 50) {
    ++attempts;
    const std::int64_t duration = 1 + static_cast<std::int64_t>(next_u64() % 4);
    const std::int64_t span = last - first - duration;
    if (span <= 0) break;
    const std::int64_t start =
        first + static_cast<std::int64_t>(next_u64() % static_cast<std::uint64_t>(span));
    // Keep one clean interval of padding around every episode so labels are
    // unambiguous.
    bool clash = false;
    for (std::int64_t t = std::max<std::int64_t>(start - 1, 0);
         t <= start + duration && !clash; ++t) {
      clash = occupied[static_cast<std::size_t>(t)];
    }
    if (clash) continue;

    const std::uint64_t kind = next_u64() % 10;
    if (kind < 5) {
      const std::size_t num_flows = 4 + next_u64() % 5;
      inject_botnet(trace, start, duration, random_flows(num_flows),
                    2.5 + 0.5 * static_cast<double>(next_u64() % 4));
    } else if (kind < 7) {
      inject_ddos(trace, start, duration,
                  static_cast<RouterId>(next_u64() % r),
                  1.0 + 0.25 * static_cast<double>(next_u64() % 8));
    } else if (kind < 8) {
      inject_flash_crowd(trace, start, std::max<std::int64_t>(duration, 2),
                         static_cast<RouterId>(next_u64() % r),
                         1.0 + 0.25 * static_cast<double>(next_u64() % 6));
    } else if (kind < 9) {
      inject_outage(trace, start, duration,
                    static_cast<RouterId>(next_u64() % r), 0.15);
    } else {
      // Scan volume: a few percent of the network mean per-flow volume.
      const double mean_volume =
          column_means(trace.volumes())[od_flow_id(0, 1, r)];
      inject_scan(trace, start, duration,
                  static_cast<RouterId>(next_u64() % r), 0.5 * mean_volume);
    }
    const auto& e = trace.events().back();
    for (std::int64_t t = e.start; t <= e.end; ++t) {
      occupied[static_cast<std::size_t>(t)] = true;
    }
    ++injected;
  }
  return {trace.events().begin() + static_cast<std::ptrdiff_t>(before),
          trace.events().end()};
}

}  // namespace spca
