// Fractional Gaussian noise: the long-range-dependent noise process that
// makes the synthetic traffic exhibit the "huge fluctuations and long range
// dependence" the paper attributes to Internet traffic (Sec. I).
//
// Two samplers are provided:
//  * Davies-Harte circulant embedding — exact and O(n log n) via the FFT
//    substrate; used by the traffic generator.
//  * Hosking's recursive method — exact and O(n^2); used in tests as an
//    independent cross-check of the Davies-Harte output distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace spca {

/// Autocovariance gamma(k) of unit-variance fGn with Hurst exponent `hurst`.
[[nodiscard]] double fgn_autocovariance(std::size_t lag, double hurst);

/// Samples `n` points of unit-variance fGn via Davies-Harte circulant
/// embedding. Requires 0 < hurst < 1. Deterministic in `seed`.
[[nodiscard]] std::vector<double> fgn_davies_harte(std::size_t n, double hurst,
                                                   std::uint64_t seed);

/// Samples `n` points of unit-variance fGn via Hosking's method (O(n^2);
/// intended for tests and short series).
[[nodiscard]] std::vector<double> fgn_hosking(std::size_t n, double hurst,
                                              std::uint64_t seed);

}  // namespace spca
