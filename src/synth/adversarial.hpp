// Adversarial scenario catalog: named attack traces designed to probe the
// blind spots of each detector family, with ground-truth labels attached.
//
//   * ddos-ramp        — sustained DDoS that ramps up slowly toward one
//                        victim and then holds; tests whether the sliding
//                        window absorbs a gradual onset.
//   * stealth-probe    — coordinated below-threshold bumps confined to the
//                        OD flows one monitor owns: each flow moves by
//                        about one local standard deviation, so the global
//                        subspace barely shifts while the owning monitor's
//                        first-line rate statistic trips. The scenario the
//                        ensemble fusion exists for.
//   * flash-crowd-multi— correlated flash crowds at several POPs at once
//                        (triangular ramps sharing one onset).
//   * routing-shift    — mid-window routing change: a fraction of several
//                        flows' volume moves to sibling flows of the same
//                        origin. Totals are conserved, so rate statistics
//                        stay flat and only correlation-structure methods
//                        see it.
//
// Every scenario is generated on top of the same synthetic traffic
// substrate (synth/traffic_model.hpp) and is fully determined by
// (topology, AdversarialConfig), so benches and CI gates can pin results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/topology.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Shared knobs of the catalog scenarios.
struct AdversarialConfig {
  /// Detector warm-up; every episode starts at or after this interval.
  std::size_t window = 96;
  /// Labelled evaluation span after warm-up.
  std::size_t eval_intervals = 192;
  double interval_seconds = 300.0;
  std::uint64_t seed = 2010;
  /// Monitor count of the deployment under test: the stealth-probe
  /// episode targets exactly the flows monitor 1 owns under the
  /// round-robin partition (flow j belongs to monitor 1 + j mod k).
  std::size_t monitors = 4;

  [[nodiscard]] std::size_t total_intervals() const {
    return window + eval_intervals;
  }
};

/// One labelled catalog entry.
struct AdversarialScenario {
  std::string name;
  std::string description;
  TraceSet trace;
};

/// The catalog's scenario names, in canonical order.
[[nodiscard]] const std::vector<std::string>& adversarial_scenario_names();

/// Builds one catalog scenario by name; throws InputError on an unknown
/// name.
[[nodiscard]] AdversarialScenario make_adversarial_scenario(
    const std::string& name, const Topology& topology,
    const AdversarialConfig& config = {});

/// Builds every catalog scenario, in canonical order.
[[nodiscard]] std::vector<AdversarialScenario> make_adversarial_catalog(
    const Topology& topology, const AdversarialConfig& config = {});

}  // namespace spca
