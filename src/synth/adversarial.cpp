#include "synth/adversarial.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "synth/anomaly_injector.hpp"
#include "synth/traffic_model.hpp"
#include "traffic/flow.hpp"

namespace spca {

namespace {

TraceSet base_trace(const Topology& topology,
                    const AdversarialConfig& config) {
  TrafficModelConfig traffic;
  traffic.num_intervals = config.total_intervals();
  traffic.interval_seconds = config.interval_seconds;
  traffic.seed = config.seed;
  return generate_traffic(topology, traffic);
}

std::vector<FlowId> flows_toward(const Topology& topology, RouterId victim) {
  std::vector<FlowId> flows;
  const std::uint32_t routers = topology.num_routers();
  for (RouterId origin = 0; origin < routers; ++origin) {
    if (origin == victim) continue;
    flows.push_back(od_flow_id(origin, victim, routers));
  }
  return flows;
}

AnomalyEvent label(std::int64_t start, std::int64_t end,
                   std::vector<FlowId> flows, std::string kind,
                   double magnitude) {
  AnomalyEvent event;
  event.start = start;
  event.end = end;
  event.flows.assign(flows.begin(), flows.end());
  event.kind = std::move(kind);
  event.magnitude = magnitude;
  return event;
}

// Sustained DDoS with a slow onset: flows toward the victim ramp linearly
// to +150% over the ramp span, then hold the plateau. The gradual onset is
// what a sliding-window subspace partially absorbs.
AdversarialScenario ddos_ramp(const Topology& topology,
                              const AdversarialConfig& config) {
  AdversarialScenario scenario{
      "ddos-ramp",
      "slow-onset sustained DDoS toward one victim POP (+150% plateau)",
      base_trace(topology, config)};
  const auto eval = static_cast<std::int64_t>(config.eval_intervals);
  const auto start = static_cast<std::int64_t>(config.window) + eval / 8;
  const std::int64_t ramp = std::max<std::int64_t>(eval / 8, 4);
  const std::int64_t hold = std::max<std::int64_t>(eval / 6, 4);
  const std::int64_t end = start + ramp + hold - 1;
  const RouterId victim = 1 % topology.num_routers();
  const std::vector<FlowId> flows = flows_toward(topology, victim);
  const double peak = 1.5;
  Matrix& volumes = scenario.trace.volumes();
  for (std::int64_t t = start; t <= end; ++t) {
    const double phase =
        t - start < ramp
            ? static_cast<double>(t - start + 1) / static_cast<double>(ramp)
            : 1.0;
    for (const FlowId flow : flows) {
      volumes(static_cast<std::size_t>(t), flow) *= 1.0 + peak * phase;
    }
  }
  scenario.trace.add_event(label(start, end, flows, "ddos", peak));
  return scenario;
}

// Coordinated probe confined to monitor 1's shard: every owned flow scales
// by the same modest factor, preserving the shard's internal mix. Globally
// the bump is diluted across the subspace and the residual reacts weakly;
// summed over the one monitor it is an unmistakable rate step — the
// asymmetry the first-line statistic exists to exploit.
AdversarialScenario stealth_probe(const Topology& topology,
                                  const AdversarialConfig& config) {
  AdversarialScenario scenario{
      "stealth-probe",
      "coordinated below-radar scaling of the flows one monitor owns",
      base_trace(topology, config)};
  const auto eval = static_cast<std::int64_t>(config.eval_intervals);
  const auto start = static_cast<std::int64_t>(config.window) + eval / 4;
  const std::int64_t duration = std::max<std::int64_t>(eval / 6, 4);
  const std::int64_t end = start + duration - 1;
  const std::size_t k = std::max<std::size_t>(config.monitors, 1);
  std::vector<FlowId> flows;
  for (std::size_t j = 0; j < scenario.trace.num_flows(); j += k) {
    flows.push_back(static_cast<FlowId>(j));  // monitor 1: j % k == 0
  }
  const double scale = 0.5;
  Matrix& volumes = scenario.trace.volumes();
  for (std::int64_t t = start; t <= end; ++t) {
    for (const FlowId flow : flows) {
      volumes(static_cast<std::size_t>(t), flow) *= 1.0 + scale;
    }
  }
  scenario.trace.add_event(label(start, end, flows, "stealth", scale));
  return scenario;
}

// Correlated flash crowds: triangular ramps toward three destinations
// sharing one onset — the multi-POP event that looks like several
// simultaneous single-POP anomalies.
AdversarialScenario flash_crowd_multi(const Topology& topology,
                                      const AdversarialConfig& config) {
  AdversarialScenario scenario{
      "flash-crowd-multi",
      "simultaneous triangular flash crowds at three POPs",
      base_trace(topology, config)};
  const auto eval = static_cast<std::int64_t>(config.eval_intervals);
  const auto start = static_cast<std::int64_t>(config.window) + eval / 2;
  const std::int64_t duration = std::max<std::int64_t>(eval / 8, 4);
  const std::uint32_t routers = topology.num_routers();
  AnomalyInjector injector(topology, config.seed ^ 0xf1a5ULL);
  for (std::uint32_t i = 0; i < 3; ++i) {
    injector.inject_flash_crowd(scenario.trace, start, duration,
                                (2 + 2 * i) % routers, /*peak_magnitude=*/1.0);
  }
  return scenario;
}

// Mid-window routing shift: half of each chosen flow's volume moves to the
// sibling flow of the same origin toward the next router. Per-origin totals
// are conserved, so rate statistics are blind and only the correlation
// structure changes.
AdversarialScenario routing_shift(const Topology& topology,
                                  const AdversarialConfig& config) {
  AdversarialScenario scenario{
      "routing-shift",
      "volume-conserving mid-window shift between sibling flows",
      base_trace(topology, config)};
  const auto eval = static_cast<std::int64_t>(config.eval_intervals);
  const auto start = static_cast<std::int64_t>(config.window) + eval / 2;
  const std::int64_t duration = std::max<std::int64_t>(eval / 4, 8);
  const std::int64_t end = start + duration - 1;
  const std::uint32_t routers = topology.num_routers();
  SPCA_EXPECTS(routers >= 4);
  const double shift = 0.5;
  std::vector<FlowId> touched;
  Matrix& volumes = scenario.trace.volumes();
  for (RouterId origin = 0; origin < routers; origin += 2) {
    const RouterId old_dest = (origin + 1) % routers;
    const RouterId new_dest = (origin + 2) % routers;
    const FlowId from = od_flow_id(origin, old_dest, routers);
    const FlowId to = od_flow_id(origin, new_dest, routers);
    touched.push_back(from);
    touched.push_back(to);
    for (std::int64_t t = start; t <= end; ++t) {
      const auto row = static_cast<std::size_t>(t);
      const double moved = shift * volumes(row, from);
      volumes(row, from) -= moved;
      volumes(row, to) += moved;
    }
  }
  scenario.trace.add_event(
      label(start, end, touched, "routing-shift", shift));
  return scenario;
}

}  // namespace

const std::vector<std::string>& adversarial_scenario_names() {
  static const std::vector<std::string> names = {
      "ddos-ramp", "stealth-probe", "flash-crowd-multi", "routing-shift"};
  return names;
}

AdversarialScenario make_adversarial_scenario(
    const std::string& name, const Topology& topology,
    const AdversarialConfig& config) {
  SPCA_EXPECTS(config.window >= 8 && config.eval_intervals >= 32);
  if (name == "ddos-ramp") return ddos_ramp(topology, config);
  if (name == "stealth-probe") return stealth_probe(topology, config);
  if (name == "flash-crowd-multi") return flash_crowd_multi(topology, config);
  if (name == "routing-shift") return routing_shift(topology, config);
  throw InputError("unknown adversarial scenario: " + name);
}

std::vector<AdversarialScenario> make_adversarial_catalog(
    const Topology& topology, const AdversarialConfig& config) {
  std::vector<AdversarialScenario> catalog;
  catalog.reserve(adversarial_scenario_names().size());
  for (const std::string& name : adversarial_scenario_names()) {
    catalog.push_back(make_adversarial_scenario(name, topology, config));
  }
  return catalog;
}

}  // namespace spca
