#include "synth/diurnal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace spca {

double diurnal_multiplier(const DiurnalProfile& profile,
                          double t_seconds) noexcept {
  const double day = t_seconds / profile.day_seconds;
  const double phase =
      2.0 * std::numbers::pi * (day - profile.peak_fraction);
  double mult = 1.0 + profile.daily_amplitude * std::cos(phase) +
                profile.harmonic_amplitude * std::cos(2.0 * phase);

  // Weekday index 0..6; days 5 and 6 of each week are the weekend.
  const double day_of_week = std::fmod(day, 7.0);
  if (day_of_week >= 5.0) {
    mult *= 1.0 - profile.weekend_dip;
  }
  return std::max(mult, profile.floor);
}

}  // namespace spca
