// Synthetic network-wide traffic generator.
//
// Substitutes for the Abilene Observatory NetFlow collection (Sec. VI): OD
// flow volumes over the 9-router topology with the statistical structure
// the detection method actually interacts with —
//   * gravity-model spatial structure (few dominant flows),
//   * smooth diurnal/weekly seasonality shared by all flows,
//   * long-range-dependent multiplicative noise: one network-wide fGn
//     factor (spatial correlation -> a low-dimensional normal subspace)
//     plus an independent per-flow fGn factor,
//   * light i.i.d. measurement noise.
// The normal traffic thus lives near a low-dimensional subspace, which is
// precisely the premise of PCA-based detection (Sec. III-C).
#pragma once

#include <cstdint>

#include "synth/diurnal.hpp"
#include "traffic/topology.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Knobs of the synthetic traffic model.
struct TrafficModelConfig {
  /// Number of measurement intervals to generate.
  std::size_t num_intervals = 4032;
  /// Interval length (300 s and 60 s in the paper's evaluation).
  double interval_seconds = 300.0;
  /// Hurst exponent of the fGn factors (Internet traffic: ~0.75-0.85).
  double hurst = 0.8;
  /// Amplitude of the shared network-wide log-factor.
  double network_noise = 0.10;
  /// Amplitude of the per-flow log-factor.
  double flow_noise = 0.16;
  /// Amplitude of i.i.d. measurement noise.
  double measurement_noise = 0.04;
  /// Mean network-wide volume in bytes per second (scaled by interval).
  double bytes_per_second = 8.0e6;
  /// Diagonal (o == d) scaling of the gravity model.
  double self_fraction = 0.05;
  /// Seasonal profile.
  DiurnalProfile diurnal;
  /// Master seed; every flow derives its own stream deterministically.
  std::uint64_t seed = 1;
};

/// Generates a labelled (initially anomaly-free) trace over `topology`.
[[nodiscard]] TraceSet generate_traffic(const Topology& topology,
                                        const TrafficModelConfig& config);

}  // namespace spca
