#include "synth/address_model.hpp"

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/splitmix64.hpp"
#include "rand/xoshiro256.hpp"
#include "rand/zipf.hpp"

namespace spca {

void assign_addresses(std::vector<Packet>& packets, const AddressModel& model,
                      std::uint64_t seed) {
  SPCA_EXPECTS(model.hosts_per_router >= 1);
  const ZipfSampler zipf(model.hosts_per_router, model.zipf_exponent);
  Xoshiro256 gen(splitmix64_mix(seed ^ 0xaddaULL));
  for (Packet& p : packets) {
    p.src_addr = host_address(
        p.origin, static_cast<std::uint32_t>(zipf(gen)));
    p.dst_addr = host_address(
        p.destination, static_cast<std::uint32_t>(zipf(gen)));
  }
}

std::vector<Packet> synthesize_scan_packets(FlowId flow,
                                            std::uint32_t num_routers,
                                            std::int64_t interval,
                                            std::size_t count,
                                            std::uint32_t bytes_each,
                                            const AddressModel& model,
                                            std::uint64_t seed) {
  SPCA_EXPECTS(count >= 1);
  SPCA_EXPECTS(bytes_each >= 1);
  const OdPair od = od_pair_of(flow, num_routers);
  Xoshiro256 gen(splitmix64_mix(seed ^ 0x5ca9ULL));
  // One fixed scanning source host.
  const std::uint32_t scanner = host_address(
      od.origin, static_cast<std::uint32_t>(
                     uniform_index(gen, model.hosts_per_router)));
  std::vector<Packet> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Packet p;
    p.origin = od.origin;
    p.destination = od.destination;
    p.size_bytes = bytes_each;
    p.interval = interval;
    p.src_addr = scanner;
    // Uniform sweep across the victim pool: maximal-entropy destinations.
    p.dst_addr = host_address(
        od.destination, static_cast<std::uint32_t>(
                            uniform_index(gen, model.hosts_per_router)));
    packets.push_back(p);
  }
  return packets;
}

}  // namespace spca
