// Ground-truth anomaly injection: the five anomaly classes the paper's
// introduction motivates, applied on top of a generated TraceSet.
//
//   * ddos        — high-profile volume spike on all flows toward a victim
//   * botnet      — *coordinated low-profile* increase on a set of flows
//                   (the class PCA methods exist to catch, cf. Fig. 5)
//   * flash-crowd — triangular ramp toward one destination
//   * outage      — equipment failure: flows touching a router collapse
//   * scan        — one origin adds small volume toward many destinations
//
// Every injection is recorded as an AnomalyEvent in the trace, which the
// evaluation harness uses as ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/topology.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Injects labelled anomaly episodes into traces over a fixed topology.
class AnomalyInjector final {
 public:
  AnomalyInjector(const Topology& topology, std::uint64_t seed);

  /// Multiplies every flow destined to `victim` by (1 + magnitude) for
  /// intervals [start, start + duration).
  void inject_ddos(TraceSet& trace, std::int64_t start, std::int64_t duration,
                   RouterId victim, double magnitude);

  /// Adds `fraction_of_std` times each flow's own standard deviation to the
  /// given flows simultaneously — a coordinated low-profile anomaly.
  void inject_botnet(TraceSet& trace, std::int64_t start,
                     std::int64_t duration,
                     const std::vector<FlowId>& flows,
                     double fraction_of_std);

  /// Like `inject_botnet`, but scales each flow's bump by its *local*
  /// short-term standard deviation (estimated from first differences, which
  /// removes the diurnal trend) instead of the trace-wide one. This is the
  /// genuinely low-profile variant: the bump stays within each flow's
  /// interval-to-interval jitter and is only visible through its spatial
  /// coordination.
  void inject_botnet_local(TraceSet& trace, std::int64_t start,
                           std::int64_t duration,
                           const std::vector<FlowId>& flows,
                           double fraction_of_local_std);

  /// Per-flow local (detrended) standard deviation: std of successive
  /// differences divided by sqrt(2). Exposed for calibration in tests and
  /// benches.
  [[nodiscard]] static Vector local_std(const TraceSet& trace);

  /// Triangular ramp (0 -> peak_magnitude -> 0) on flows toward `dest`.
  void inject_flash_crowd(TraceSet& trace, std::int64_t start,
                          std::int64_t duration, RouterId dest,
                          double peak_magnitude);

  /// Flows with origin or destination `router` drop to `residual` (in
  /// [0, 1)) of their value.
  void inject_outage(TraceSet& trace, std::int64_t start,
                     std::int64_t duration, RouterId router, double residual);

  /// Adds `added_bytes` to every flow from `origin` to all other routers.
  void inject_scan(TraceSet& trace, std::int64_t start, std::int64_t duration,
                   RouterId origin, double added_bytes);

  /// Scatters `count` episodes of mixed kinds at random positions within
  /// [first, last) (duration 1-4 intervals, non-overlapping); returns the
  /// injected events. Low-profile botnet episodes dominate the mixture, as
  /// they are the detection target of the paper.
  std::vector<AnomalyEvent> inject_mixture(TraceSet& trace, std::size_t count,
                                           std::int64_t first,
                                           std::int64_t last);

 private:
  /// Picks `k` distinct random non-self flows.
  [[nodiscard]] std::vector<FlowId> random_flows(std::size_t k);

  const Topology& topology_;
  std::uint64_t rng_state_;
  std::uint64_t next_u64();
};

}  // namespace spca
