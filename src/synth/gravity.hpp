// Gravity model for the OD traffic matrix: mean volume of flow (o, d) is
// proportional to w_o * w_d, the standard first-order model of backbone
// traffic matrices (Zhang et al., SIGMETRICS'03) and a good fit for Abilene.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/vector.hpp"
#include "traffic/topology.hpp"

namespace spca {

/// Mean OD volumes (bytes per interval) for all R^2 flows, including the
/// (small) intra-router o == d flows.
///
/// `router_weights` are relative activity levels (think: attached user
/// population); `total_bytes_per_interval` is the network-wide mean volume
/// the matrix is normalized to; `self_fraction` scales the o == d diagonal
/// relative to the gravity prediction (backbone self-flows are tiny).
[[nodiscard]] Vector gravity_means(const std::vector<double>& router_weights,
                                   double total_bytes_per_interval,
                                   double self_fraction = 0.05);

/// Default router weights for the 9-router Abilene instance: rough relative
/// activity by metro size (ATLA, CHIC, HOUS, KANS, LOSA, NEWY, SALT, SEAT,
/// WASH order).
[[nodiscard]] std::vector<double> abilene_router_weights();

}  // namespace spca
