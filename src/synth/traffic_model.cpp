#include "synth/traffic_model.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/splitmix64.hpp"
#include "rand/xoshiro256.hpp"
#include "synth/fgn.hpp"
#include "synth/gravity.hpp"

namespace spca {

TraceSet generate_traffic(const Topology& topology,
                          const TrafficModelConfig& config) {
  SPCA_EXPECTS(config.num_intervals >= 2);
  SPCA_EXPECTS(config.interval_seconds > 0.0);
  SPCA_EXPECTS(config.bytes_per_second > 0.0);

  const std::size_t n = config.num_intervals;
  const std::size_t m = topology.num_od_flows();

  // Gravity means scaled to this interval length. For the Abilene instance
  // use the canonical metro weights; other topologies get uniform weights.
  std::vector<double> weights;
  if (topology.num_routers() == 9) {
    weights = abilene_router_weights();
  } else {
    weights.assign(topology.num_routers(), 1.0);
  }
  const Vector means =
      gravity_means(weights, config.bytes_per_second * config.interval_seconds,
                    config.self_fraction);

  // Shared network-wide LRD factor.
  const std::vector<double> network_factor =
      config.network_noise > 0.0
          ? fgn_davies_harte(n, config.hurst,
                             splitmix64_mix(config.seed ^ 0xa5a5a5a5ULL))
          : std::vector<double>(n, 0.0);

  // Keep the log-normal correction so E[x] tracks the seasonal mean.
  const double total_log_var =
      config.network_noise * config.network_noise +
      config.flow_noise * config.flow_noise +
      config.measurement_noise * config.measurement_noise;
  const double correction = -0.5 * total_log_var;

  Matrix volumes(n, m);
  DiurnalProfile diurnal = config.diurnal;
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint64_t flow_seed = splitmix64_mix(config.seed + 0x1000 + j);
    const std::vector<double> flow_factor =
        config.flow_noise > 0.0 ? fgn_davies_harte(n, config.hurst, flow_seed)
                                : std::vector<double>(n, 0.0);
    Xoshiro256 meas(splitmix64_mix(flow_seed ^ 0x7f4a7c15ULL));
    for (std::size_t t = 0; t < n; ++t) {
      const double seasonal = diurnal_multiplier(
          diurnal, static_cast<double>(t) * config.interval_seconds);
      const double log_noise = config.network_noise * network_factor[t] +
                               config.flow_noise * flow_factor[t] +
                               config.measurement_noise *
                                   standard_normal(meas) +
                               correction;
      volumes(t, j) = means[j] * seasonal * std::exp(log_noise);
    }
  }

  std::vector<std::string> flow_names;
  flow_names.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    flow_names.push_back(topology.flow_name(static_cast<FlowId>(j)));
  }
  return TraceSet(std::move(volumes), config.interval_seconds,
                  std::move(flow_names));
}

}  // namespace spca
