// The keyed PRF behind ProjectionSource: hashes (seed, t, k, lane) into 64
// well-mixed bits via chained SplitMix64 finalizers.
//
// Exposed in a header (rather than staying private to projection_source.cpp)
// so the batched SIMD projection kernel (sketch/projection_batch) can produce
// *bit-identical* coefficients: both paths must agree on every intermediate
// mix, and sharing the definition makes that agreement structural instead of
// a copy that could drift.
#pragma once

#include <cstdint>

#include "rand/splitmix64.hpp"

namespace spca {

/// Seed pre-whitening constant: mixed into the user seed before hashing so
/// small consecutive seeds land far apart.
inline constexpr std::uint64_t kProjectionPrfSalt = 0x5bf03635dd275b2dULL;

/// The (seed, t)-dependent prefix of the PRF chain, independent of the sketch
/// row k. Hot batched callers hoist this per update and finish with
/// `projection_prf_finish` per row.
[[nodiscard]] constexpr std::uint64_t projection_prf_base(
    std::uint64_t seed, std::int64_t t) noexcept {
  std::uint64_t h = splitmix64_mix(seed ^ kProjectionPrfSalt);
  return splitmix64_mix(h ^ static_cast<std::uint64_t>(t));
}

/// Completes the chain for sketch row `k` and lane `lane`.
[[nodiscard]] constexpr std::uint64_t projection_prf_finish(
    std::uint64_t base, std::size_t k, std::uint64_t lane) noexcept {
  const std::uint64_t h = splitmix64_mix(base ^ static_cast<std::uint64_t>(k));
  return splitmix64_mix(h ^ lane);
}

/// Keyed PRF: hashes (seed, t, k, lane) into 64 well-mixed bits.
[[nodiscard]] constexpr std::uint64_t projection_prf(std::uint64_t seed,
                                                     std::int64_t t,
                                                     std::size_t k,
                                                     std::uint64_t lane) noexcept {
  return projection_prf_finish(projection_prf_base(seed, t), k, lane);
}

}  // namespace spca
