// xoshiro256++ 1.0: the general-purpose PRNG used for synthetic traffic
// generation. Public-domain algorithm by Blackman & Vigna.
#pragma once

#include <cstdint>

#include "rand/splitmix64.hpp"

namespace spca {

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions; the library's own distributions in
/// distributions.hpp are preferred for cross-platform determinism.
class Xoshiro256 final {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 from `seed`, as the
  /// algorithm's authors recommend.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(): produces non-overlapping
  /// subsequences for parallel streams.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace spca
