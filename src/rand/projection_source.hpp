// Counter-based shared source of random projection coefficients r_{t,k}.
//
// The paper (Sec. IV-B) requires that all local monitors use the SAME
// pseudo-random numbers r_{t,k} for time interval t and sketch row k, so the
// NOC can assemble sketch columns from different monitors into one coherent
// projection of the traffic matrix. Distributing a generator state would
// require synchronization; instead we derive every coefficient from a keyed
// hash of (seed, t, k), so any monitor can evaluate any coefficient at any
// time, in O(1), with no communication — the "n pseudo random number
// generators shared by all flows among local monitors" of Fig. 4.
//
// Four schemes are supported, matching Sec. V-B:
//   * Gaussian        — standard normal entries (Vempala's random projection)
//   * Tug-of-war      — ±1 entries (Alon, Gibbons, Matias, Szegedy)
//   * Sparse          — Achlioptas: ±sqrt(s) w.p. 1/(2s) each, else 0
//   * Very sparse     — Li, Hastie, Church: sparse with s = sqrt(n)
// All schemes are scaled to unit variance so E(|z|^2) = |y|^2 holds.
#pragma once

#include <cstdint>
#include <string_view>

namespace spca {

/// Which random-projection distribution generates the coefficients.
enum class ProjectionKind {
  kGaussian,
  kTugOfWar,
  kSparse,
  kVerySparse,
};

/// Human-readable name ("gaussian", "tug-of-war", ...).
[[nodiscard]] std::string_view to_string(ProjectionKind kind) noexcept;

/// Parses a name produced by `to_string`; throws InputError on mismatch.
[[nodiscard]] ProjectionKind projection_kind_from_string(std::string_view name);

/// Stateless functor producing r_{t,k} for any (interval, row) pair.
///
/// Deterministic in (seed, kind, sparsity): two instances constructed with
/// equal parameters return identical coefficients — this is the property the
/// distributed protocol relies on.
class ProjectionSource final {
 public:
  /// `sparsity_s` is the `s` of the (very) sparse schemes and is ignored by
  /// the Gaussian and tug-of-war schemes. Must be >= 1.
  ProjectionSource(ProjectionKind kind, std::uint64_t seed,
                   double sparsity_s = 3.0);

  /// Convenience factory for the very sparse scheme with s = sqrt(n), the
  /// setting recommended by Li et al. for a window of length n.
  [[nodiscard]] static ProjectionSource very_sparse(std::uint64_t seed,
                                                    std::size_t window_n);

  /// The projection coefficient for time interval `t`, sketch row `k`.
  [[nodiscard]] double value(std::int64_t t, std::size_t k) const noexcept;

  [[nodiscard]] ProjectionKind kind() const noexcept { return kind_; }
  [[nodiscard]] double sparsity() const noexcept { return sparsity_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  ProjectionKind kind_;
  std::uint64_t seed_;
  double sparsity_;
};

}  // namespace spca
