#include "rand/projection_source.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "rand/distributions.hpp"
#include "rand/projection_prf.hpp"

namespace spca {

namespace {

/// Keyed PRF: hashes (seed, t, k, lane) into 64 well-mixed bits. The
/// definition lives in rand/projection_prf.hpp so the batched SIMD kernel
/// shares it bit for bit.
std::uint64_t prf(std::uint64_t seed, std::int64_t t, std::size_t k,
                  std::uint64_t lane) noexcept {
  return projection_prf(seed, t, k, lane);
}

}  // namespace

std::string_view to_string(ProjectionKind kind) noexcept {
  switch (kind) {
    case ProjectionKind::kGaussian:
      return "gaussian";
    case ProjectionKind::kTugOfWar:
      return "tug-of-war";
    case ProjectionKind::kSparse:
      return "sparse";
    case ProjectionKind::kVerySparse:
      return "very-sparse";
  }
  return "?";
}

ProjectionKind projection_kind_from_string(std::string_view name) {
  if (name == "gaussian") return ProjectionKind::kGaussian;
  if (name == "tug-of-war") return ProjectionKind::kTugOfWar;
  if (name == "sparse") return ProjectionKind::kSparse;
  if (name == "very-sparse") return ProjectionKind::kVerySparse;
  throw InputError("unknown projection kind: '" + std::string(name) + "'");
}

ProjectionSource::ProjectionSource(ProjectionKind kind, std::uint64_t seed,
                                   double sparsity_s)
    : kind_(kind), seed_(seed), sparsity_(sparsity_s) {
  SPCA_EXPECTS(sparsity_s >= 1.0);
}

ProjectionSource ProjectionSource::very_sparse(std::uint64_t seed,
                                               std::size_t window_n) {
  SPCA_EXPECTS(window_n >= 1);
  return ProjectionSource(ProjectionKind::kVerySparse, seed,
                          std::sqrt(static_cast<double>(window_n)));
}

double ProjectionSource::value(std::int64_t t, std::size_t k) const noexcept {
  const std::uint64_t h0 = prf(seed_, t, k, 0);
  switch (kind_) {
    case ProjectionKind::kGaussian: {
      const std::uint64_t h1 = prf(seed_, t, k, 1);
      return box_muller(bits_to_open_unit_double(h0),
                        bits_to_unit_double(h1));
    }
    case ProjectionKind::kTugOfWar:
      return (h0 & 1ULL) ? 1.0 : -1.0;
    case ProjectionKind::kSparse:
    case ProjectionKind::kVerySparse: {
      // +/- sqrt(s) with probability 1/(2s) each, 0 otherwise: unit variance.
      const double u = bits_to_unit_double(h0);
      const double inv_2s = 0.5 / sparsity_;
      if (u < inv_2s) return std::sqrt(sparsity_);
      if (u < 2.0 * inv_2s) return -std::sqrt(sparsity_);
      return 0.0;
    }
  }
  return 0.0;  // unreachable
}

}  // namespace spca
