#include "rand/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace spca {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s), cdf_(n) {
  SPCA_EXPECTS(n >= 1);
  SPCA_EXPECTS(s >= 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding at the top
}

std::size_t ZipfSampler::sample_from_unit(double u) const {
  SPCA_EXPECTS(u >= 0.0 && u < 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  SPCA_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace spca
