// Zipf-distributed categorical sampler: the standard model for IP address
// popularity inside a traffic aggregate (a few heavy talkers, a long tail).
// Used by the address synthesizer behind the entropy measurement pipeline.
#pragma once

#include <cstdint>
#include <vector>

namespace spca {

/// Samples ranks in [0, n) with P(k) proportional to 1/(k+1)^s via a
/// precomputed CDF and binary search (n is at most a few thousand here).
class ZipfSampler final {
 public:
  /// `n` categories, exponent `s` >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank using 64 random bits from `gen`.
  template <typename Gen>
  [[nodiscard]] std::size_t operator()(Gen& gen) const {
    return sample_from_unit(static_cast<double>(gen() >> 11) * 0x1.0p-53);
  }

  /// Deterministic transform from a uniform in [0, 1).
  [[nodiscard]] std::size_t sample_from_unit(double u) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of rank `k`.
  [[nodiscard]] double probability(std::size_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace spca
