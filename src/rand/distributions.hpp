// Deterministic, engine-agnostic distribution transforms.
//
// The standard <random> distributions are implementation-defined, so their
// output differs across standard libraries; these transforms are fully
// specified and therefore reproducible everywhere, which matters because the
// paper's local monitors must regenerate identical random projection values
// without communicating.
#pragma once

#include <cmath>
#include <cstdint>

namespace spca {

/// Maps 64 random bits to a double uniformly distributed in [0, 1).
[[nodiscard]] constexpr double bits_to_unit_double(std::uint64_t bits) noexcept {
  // Use the top 53 bits: exactly the mantissa precision of an IEEE double.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Maps 64 random bits to a double uniformly distributed in (0, 1]; useful
/// where log(u) must stay finite.
[[nodiscard]] constexpr double bits_to_open_unit_double(
    std::uint64_t bits) noexcept {
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

/// The Box-Muller map (cosine branch): two independent uniforms to one
/// standard normal deviate. Exposed so the counter-based projection source
/// can apply it to hashed uniforms.
[[nodiscard]] double box_muller(double u1_open, double u2) noexcept;

/// exp(mu + sigma*z) for a standard normal z.
[[nodiscard]] double lognormal_from_normal(double z, double mu,
                                           double sigma) noexcept;

/// Inverse-CDF transform for Exp(lambda).
[[nodiscard]] double exponential_from_uniform(double u_open,
                                              double lambda) noexcept;

/// Inverse-CDF transform for Pareto(x_m, alpha).
[[nodiscard]] double pareto_from_uniform(double u_open, double x_m,
                                         double alpha) noexcept;

/// e^{-lambda}, the product threshold of Knuth's Poisson algorithm.
[[nodiscard]] double exponential_limit(double lambda) noexcept;

/// Draws a uniform double in [lo, hi) from `gen`.
template <typename Gen>
[[nodiscard]] double uniform_real(Gen& gen, double lo, double hi) {
  return lo + (hi - lo) * bits_to_unit_double(gen());
}

/// Draws a uniform integer in [0, n) from `gen` with modulo rejection,
/// giving an exactly uniform result.
template <typename Gen>
[[nodiscard]] std::uint64_t uniform_index(Gen& gen, std::uint64_t n) {
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t x = gen();
  while (x >= limit) x = gen();
  return x % n;
}

/// Draws a standard normal deviate via the Box-Muller transform. Two engine
/// calls per deviate; deterministic across platforms.
template <typename Gen>
[[nodiscard]] double standard_normal(Gen& gen) {
  const double u1 = bits_to_open_unit_double(gen());
  const double u2 = bits_to_unit_double(gen());
  return box_muller(u1, u2);
}

/// Draws from a lognormal distribution with the given parameters of the
/// underlying normal.
template <typename Gen>
[[nodiscard]] double lognormal(Gen& gen, double mu, double sigma) {
  return lognormal_from_normal(standard_normal(gen), mu, sigma);
}

/// Draws from an exponential distribution with rate lambda.
template <typename Gen>
[[nodiscard]] double exponential(Gen& gen, double lambda) {
  return exponential_from_uniform(bits_to_open_unit_double(gen()), lambda);
}

/// Draws from a Pareto distribution with scale x_m and shape alpha
/// (heavy-tailed flow/burst sizes).
template <typename Gen>
[[nodiscard]] double pareto(Gen& gen, double x_m, double alpha) {
  return pareto_from_uniform(bits_to_open_unit_double(gen()), x_m, alpha);
}

/// Draws a Poisson count with mean `lambda` (Knuth's method for small means,
/// normal approximation above 64).
template <typename Gen>
[[nodiscard]] std::uint64_t poisson(Gen& gen, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double z = standard_normal(gen);
    const double x = lambda + z * std::sqrt(lambda);
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = exponential_limit(lambda);
  double product = bits_to_open_unit_double(gen());
  std::uint64_t count = 0;
  while (product > limit) {
    product *= bits_to_open_unit_double(gen());
    ++count;
  }
  return count;
}

}  // namespace spca
