// SplitMix64: a tiny, statistically solid 64-bit PRNG used here for seeding
// and as the mixing function of the counter-based generator.
//
// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
#pragma once

#include <cstdint>

namespace spca {

/// Applies the SplitMix64 finalizer to `x`: a bijective 64-bit mixer with
/// good avalanche behaviour. Usable both as a PRNG step and as a hash.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Sequential SplitMix64 generator. Satisfies UniformRandomBitGenerator.
class SplitMix64 final {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace spca
