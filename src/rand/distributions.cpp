#include "rand/distributions.hpp"

#include <numbers>

namespace spca {

double box_muller(double u1_open, double u2) noexcept {
  const double radius = std::sqrt(-2.0 * std::log(u1_open));
  return radius * std::cos(2.0 * std::numbers::pi * u2);
}

double lognormal_from_normal(double z, double mu, double sigma) noexcept {
  return std::exp(mu + sigma * z);
}

double exponential_from_uniform(double u_open, double lambda) noexcept {
  return -std::log(u_open) / lambda;
}

double pareto_from_uniform(double u_open, double x_m, double alpha) noexcept {
  return x_m / std::pow(u_open, 1.0 / alpha);
}

double exponential_limit(double lambda) noexcept { return std::exp(-lambda); }

}  // namespace spca
