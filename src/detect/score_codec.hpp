// Wire codec of the first-line score payload: how a FirstLineScore becomes
// a kScoreReport message and how the NOC reads the per-monitor scores back
// out of flat reports and hierarchical aggregates.
//
// Layout: ids holds the reporting monitor ids (one per monitor; a merged
// regional aggregate concatenates them in ascending monitor order), and
// each id owns two consecutive values [entropy_z, rate_z]. Doubles ride the
// little-endian message codec bit-exactly, so the sim and TCP paths see
// identical scores.
//
// Header-only on purpose: it depends on dist/message.hpp for the Message
// struct but needs no dist/ object code, so the detect module stays below
// dist in the link order while dist links detect for the scorer itself.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "detect/first_line.hpp"
#include "dist/message.hpp"

namespace spca {

/// One monitor's first-line scores for an interval, as decoded at the NOC.
struct MonitorScore {
  NodeId monitor = 0;
  double entropy_z = 0.0;
  double rate_z = 0.0;
};

/// Builds the kScoreReport a monitor sends at interval close.
[[nodiscard]] inline Message make_score_report(NodeId monitor, NodeId to,
                                               std::int64_t interval,
                                               const FirstLineScore& score) {
  Message msg;
  msg.type = MessageType::kScoreReport;
  msg.from = monitor;
  msg.to = to;
  msg.interval = interval;
  msg.ids.push_back(monitor);
  msg.values.push_back(score.entropy_z);
  msg.values.push_back(score.rate_z);
  return msg;
}

/// Decodes one kScoreReport (single-monitor or regional-merged) into
/// per-monitor scores. Throws ProtocolError on a malformed payload.
[[nodiscard]] inline std::vector<MonitorScore> parse_score_report(
    const Message& msg) {
  if (msg.type != MessageType::kScoreReport) {
    throw ProtocolError("parse_score_report: not a score report");
  }
  if (msg.ids.empty() || msg.values.size() != msg.ids.size() * 2) {
    throw ProtocolError("parse_score_report: malformed payload");
  }
  std::vector<MonitorScore> scores;
  scores.reserve(msg.ids.size());
  for (std::size_t i = 0; i < msg.ids.size(); ++i) {
    scores.push_back(MonitorScore{.monitor = msg.ids[i],
                                  .entropy_z = msg.values[2 * i],
                                  .rate_z = msg.values[2 * i + 1]});
  }
  return scores;
}

}  // namespace spca
