#include "detect/fused_detector.hpp"

namespace spca {

FusedDetector::FusedDetector(std::size_t dimensions, std::size_t monitors,
                             const SketchDetectorConfig& sketch_config,
                             const FusionConfig& fusion_config,
                             const FirstLineConfig& first_line_config)
    : sketch_(dimensions, sketch_config),
      first_line_(dimensions, monitors, first_line_config,
                  fusion_config.score_threshold),
      fusion_(fusion_config) {}

Detection FusedDetector::observe(std::int64_t t, const Vector& x) {
  last_sketch_ = sketch_.observe(t, x);
  (void)first_line_.observe(t, x);
  last_fused_ = fusion_.fuse(t, last_sketch_, first_line_.last_scores());

  Detection det;
  det.ready = last_fused_.ready;
  det.alarm = last_fused_.alarm;
  det.distance = last_fused_.statistic;
  det.threshold = 1.0;
  det.normal_rank = last_sketch_.normal_rank;
  det.model_refreshed = last_sketch_.model_refreshed;
  return det;
}

}  // namespace spca
