// NOC-side fusion of the ensemble detection plane: combines the sketch-PCA
// Q-statistic verdict with the monitors' first-line scores under a pluggable
// rule. The sketch-PCA Detection is never altered — fusion produces a
// parallel FusedDecision so benches can report both detectors side by side
// and the protocol trajectory stays independent of the rule choice.
//
// Rules (selected by the --fusion flag of the net/hier scenarios):
//   any      — alarm if sketch-PCA alarms OR any monitor's first-line score
//              trips. Maximizes recall; the stealth-attack catcher.
//   all      — alarm only if sketch-PCA alarms AND a first-line score
//              corroborates. Minimizes false alarms.
//   weighted — continuous weighted vote over the normalized statistics;
//              alarm when the vote exceeds 1.
//
// Fusion is memoryless: each interval's decision depends only on that
// interval's inputs, so the engine needs no checkpoint state at the NOC.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "detect/score_codec.hpp"

namespace spca {

/// Fusion rule of the ensemble decision.
enum class FusionRule : std::uint8_t {
  kOff = 0,       ///< No fusion; monitors do not even emit score reports.
  kAny = 1,       ///< Sketch alarm OR any first-line trip.
  kAll = 2,       ///< Sketch alarm AND at least one first-line trip.
  kWeighted = 3,  ///< Weighted vote over normalized statistics.
};

/// Parses a --fusion flag value ("off" | "any" | "all" | "weighted");
/// throws InputError on anything else.
[[nodiscard]] FusionRule parse_fusion_rule(const std::string& name);

/// Inverse of parse_fusion_rule.
[[nodiscard]] std::string to_string(FusionRule rule);

/// Tuning of the fusion engine.
struct FusionConfig {
  FusionRule rule = FusionRule::kAny;
  /// |z| above which a first-line score counts as a trip (in baseline
  /// standard deviations; 3 sigma by default).
  double score_threshold = 3.0;
  /// Weights of the weighted vote (need not sum to 1; the alarm condition
  /// is weighted sum > 1 with each component normalized to trip at 1).
  double weight_spca = 0.6;
  double weight_entropy = 0.2;
  double weight_rate = 0.2;
};

/// One interval's fused verdict.
struct FusedDecision {
  /// False while sketch-PCA is still warming up (fusion abstains).
  bool ready = false;
  bool alarm = false;
  /// The fused statistic, normalized so 1.0 is the alarm boundary
  /// regardless of rule.
  double statistic = 0.0;
  /// Monitors whose first-line score tripped this interval (ascending).
  std::vector<NodeId> tripped_monitors;
  /// Number of monitor score reports that entered the decision.
  std::size_t monitors = 0;
};

/// Combines sketch-PCA detections with first-line monitor scores. The
/// engine is deterministic and stateless across intervals.
class FusionEngine final {
 public:
  explicit FusionEngine(const FusionConfig& config = {});

  /// Fuses one interval. `scores` holds the decoded per-monitor scores in
  /// any order (the trip list is sorted internally). Records a "fusion"
  /// detection event and bumps the spca.detect.* metrics.
  [[nodiscard]] FusedDecision fuse(std::int64_t t, const Detection& sketch,
                                   std::span<const MonitorScore> scores);

  [[nodiscard]] const FusionConfig& config() const noexcept { return config_; }

 private:
  FusionConfig config_;
};

}  // namespace spca
