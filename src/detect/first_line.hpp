// Monitor-side first-line anomaly scores of the ensemble detection plane
// (ROADMAP item 4b, after detector.c's detect_entropy_anomaly /
// detect_rate_anomaly): two cheap O(w) statistics computed from the
// monitor's own interval volumes at interval close, z-scored against
// exponentially weighted running baselines, and shipped to the NOC as a
// kScoreReport riding alongside the volume report.
//
//   entropy_z — Shannon entropy (bits) of the volume distribution over the
//               monitor's owned flows. Structure-sensitive: a coordinated
//               bump concentrated on a few owned flows skews the local
//               distribution even when the global volume change is tiny,
//               which is exactly what below-threshold stealth attacks look
//               like from the NOC.
//   rate_z    — aggregate volume (sum of owned-flow volumes). The classic
//               first-line rate deviation.
//
// The scorer is deterministic and serializable: its EWMA state rides in the
// LocalMonitor checkpoint blob, so a restarted monitor scores the tail of
// the stream bit-identically to one that never died.
#pragma once

#include <cstdint>
#include <span>

#include "common/serialize.hpp"

namespace spca {

/// Tuning of the first-line scorer. Every process of a deployment must use
/// the same values (they are compiled-in defaults, not flags, precisely so
/// sim and TCP runs cannot disagree).
struct FirstLineConfig {
  /// EWMA smoothing factor of the running mean/variance baselines.
  double smoothing = 0.05;
  /// Intervals before z-scores are emitted (both scores are 0.0 during
  /// warm-up while the baselines settle).
  std::uint64_t warmup = 12;
};

/// One interval's pair of first-line scores (signed z-scores; fusion rules
/// threshold their absolute values).
struct FirstLineScore {
  double entropy_z = 0.0;
  double rate_z = 0.0;
};

/// Streaming first-line scorer over one monitor's owned-flow volumes.
class FirstLineScorer final {
 public:
  explicit FirstLineScorer(const FirstLineConfig& config = {});

  /// Scores one interval's owned-flow volumes (in fixed flow order) against
  /// the pre-update baselines, then folds the interval into the baselines.
  /// O(w) per interval.
  FirstLineScore observe(std::span<const double> volumes);

  [[nodiscard]] const FirstLineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FirstLineScore& last() const noexcept { return last_; }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

  /// Appends the scorer state to a checkpoint blob / restores it. The
  /// format is a fixed-size scalar run; see local_monitor_io.cpp for the
  /// enclosing versioned layout.
  void save(ByteWriter& out) const;
  [[nodiscard]] static FirstLineScorer restore(ByteReader& in);

  [[nodiscard]] bool operator==(const FirstLineScorer&) const = default;

 private:
  /// One exponentially weighted mean/variance baseline.
  struct Ewma {
    double mean = 0.0;
    double variance = 0.0;
    /// z-score of `x` against the current baseline (0 while degenerate),
    /// then fold `x` in with smoothing `a`.
    double score_and_update(double x, double a, bool warm) noexcept;

    [[nodiscard]] bool operator==(const Ewma&) const = default;
  };

  FirstLineConfig config_;
  std::uint64_t observed_ = 0;
  Ewma entropy_;
  Ewma rate_;
  FirstLineScore last_;
};

[[nodiscard]] inline bool operator==(const FirstLineConfig& a,
                                     const FirstLineConfig& b) noexcept {
  return a.smoothing == b.smoothing && a.warmup == b.warmup;
}

[[nodiscard]] inline bool operator==(const FirstLineScore& a,
                                     const FirstLineScore& b) noexcept {
  return a.entropy_z == b.entropy_z && a.rate_z == b.rate_z;
}

}  // namespace spca
