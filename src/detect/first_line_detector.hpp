// Detector facade over a fleet of first-line scorers: partitions the flow
// vector over k virtual monitors exactly like DistributedDetector's
// round-robin ownership (flow j -> monitor 1 + j%k) and scores each
// monitor's owned slice per interval. Exists so the ROC benches can put the
// first-line signal alone on the same axis as the PCA detectors; the real
// deployment runs the same scorers inside LocalMonitor.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.hpp"
#include "detect/first_line.hpp"
#include "detect/score_codec.hpp"

namespace spca {

/// Standalone first-line ensemble detector. Detection.distance is the
/// largest |z| across monitors and signals; Detection.threshold is the trip
/// threshold, so the alarm rule matches FusionEngine's trip test.
class FirstLineDetector final : public Detector {
 public:
  FirstLineDetector(std::size_t dimensions, std::size_t monitors,
                    const FirstLineConfig& config = {},
                    double score_threshold = 3.0);

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "first-line"; }

  /// Per-monitor scores of the last observed interval (monitor ids 1..k),
  /// in the exact wire form the NOC would decode — reusable as FusionEngine
  /// input by the FusedDetector.
  [[nodiscard]] const std::vector<MonitorScore>& last_scores() const noexcept {
    return last_scores_;
  }

 private:
  std::size_t m_;
  FirstLineConfig config_;
  double score_threshold_;
  std::vector<FirstLineScorer> scorers_;  // index i = monitor id i+1
  std::vector<MonitorScore> last_scores_;
  std::uint64_t observed_ = 0;
};

}  // namespace spca
