#include "detect/first_line.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "traffic/entropy.hpp"

namespace spca {

namespace {

/// Variances this small are numerically degenerate (a constant signal plus
/// rounding noise); scoring against them would emit huge z-scores off pure
/// float dust.
constexpr double kTinyVariance = 1e-12;

}  // namespace

FirstLineScorer::FirstLineScorer(const FirstLineConfig& config)
    : config_(config) {
  SPCA_EXPECTS(config.smoothing > 0.0 && config.smoothing < 1.0);
}

double FirstLineScorer::Ewma::score_and_update(double x, double a,
                                               bool warm) noexcept {
  // Score against the pre-update baseline: the interval being judged must
  // not contaminate the statistics it is judged by (and the restored-from-
  // checkpoint replay stays bit-identical because the order is fixed).
  double z = 0.0;
  if (warm && variance > kTinyVariance) {
    z = (x - mean) / std::sqrt(variance);
  }
  // West-style EWMA mean/variance update.
  const double diff = x - mean;
  const double incr = a * diff;
  mean += incr;
  variance = (1.0 - a) * (variance + diff * incr);
  return z;
}

FirstLineScore FirstLineScorer::observe(std::span<const double> volumes) {
  const bool warm = observed_ >= config_.warmup;
  const double h = shannon_entropy_bits(volumes);
  double rate = 0.0;
  for (const double v : volumes) rate += v;
  last_.entropy_z = entropy_.score_and_update(h, config_.smoothing, warm);
  last_.rate_z = rate_.score_and_update(rate, config_.smoothing, warm);
  ++observed_;
  return last_;
}

void FirstLineScorer::save(ByteWriter& out) const {
  out.put(config_.smoothing);
  out.put(config_.warmup);
  out.put(observed_);
  out.put(entropy_.mean);
  out.put(entropy_.variance);
  out.put(rate_.mean);
  out.put(rate_.variance);
  out.put(last_.entropy_z);
  out.put(last_.rate_z);
}

FirstLineScorer FirstLineScorer::restore(ByteReader& in) {
  FirstLineConfig config;
  config.smoothing = in.get<double>();
  config.warmup = in.get<std::uint64_t>();
  if (!(config.smoothing > 0.0 && config.smoothing < 1.0)) {
    throw ProtocolError("FirstLineScorer: invalid smoothing in checkpoint");
  }
  FirstLineScorer scorer(config);
  scorer.observed_ = in.get<std::uint64_t>();
  scorer.entropy_.mean = in.get<double>();
  scorer.entropy_.variance = in.get<double>();
  scorer.rate_.mean = in.get<double>();
  scorer.rate_.variance = in.get<double>();
  scorer.last_.entropy_z = in.get<double>();
  scorer.last_.rate_z = in.get<double>();
  return scorer;
}

}  // namespace spca
