#include "detect/first_line_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace spca {

FirstLineDetector::FirstLineDetector(std::size_t dimensions,
                                     std::size_t monitors,
                                     const FirstLineConfig& config,
                                     double score_threshold)
    : m_(dimensions), config_(config), score_threshold_(score_threshold) {
  SPCA_EXPECTS(dimensions >= 1);
  SPCA_EXPECTS(monitors >= 1 && monitors <= dimensions);
  SPCA_EXPECTS(score_threshold > 0.0);
  scorers_.assign(monitors, FirstLineScorer(config));
}

Detection FirstLineDetector::observe(std::int64_t t, const Vector& x) {
  (void)t;
  SPCA_EXPECTS(x.size() == m_);
  const std::size_t k = scorers_.size();
  last_scores_.clear();
  double max_abs_z = 0.0;
  std::vector<double> owned;
  for (std::size_t i = 0; i < k; ++i) {
    // Round-robin ownership, identical to DistributedDetector: monitor
    // i+1 owns flows j with j % k == i, in ascending flow order.
    owned.clear();
    for (std::size_t j = i; j < m_; j += k) owned.push_back(x[j]);
    const FirstLineScore score = scorers_[i].observe(owned);
    last_scores_.push_back(
        MonitorScore{.monitor = static_cast<NodeId>(i + 1),
                     .entropy_z = score.entropy_z,
                     .rate_z = score.rate_z});
    max_abs_z = std::max(
        {max_abs_z, std::abs(score.entropy_z), std::abs(score.rate_z)});
  }
  ++observed_;

  Detection det;
  det.ready = observed_ > config_.warmup;
  det.distance = max_abs_z;
  det.threshold = score_threshold_;
  det.alarm = det.ready && max_abs_z > score_threshold_;
  return det;
}

}  // namespace spca
