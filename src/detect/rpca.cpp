#include "detect/rpca.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/contracts.hpp"
#include "linalg/svd.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "pca/q_statistic.hpp"

namespace spca {

namespace {

/// Soft-thresholding (shrinkage) operator applied entrywise.
void shrink_in_place(Matrix& a, double tau) noexcept {
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double v = a(r, c);
      a(r, c) = v > tau ? v - tau : (v < -tau ? v + tau : 0.0);
    }
  }
}

}  // namespace

RpcaSplit rpca_decompose(const Matrix& m, double lambda,
                         std::size_t max_iters, double tol) {
  SPCA_EXPECTS(m.rows() >= 1 && m.cols() >= 1);
  SPCA_EXPECTS(max_iters >= 1 && tol > 0.0);
  if (lambda <= 0.0) {
    lambda = 1.0 / std::sqrt(static_cast<double>(std::max(m.rows(), m.cols())));
  }
  const double m_norm = frobenius_norm(m);
  RpcaSplit out;
  out.low_rank = Matrix(m.rows(), m.cols());
  out.sparse = Matrix(m.rows(), m.cols());
  if (m_norm == 0.0) return out;  // the zero matrix splits trivially

  // Inexact ALM (Lin et al. 2010, Algorithm 5): the dual variable Y starts
  // at M scaled into the dual-feasible ball, mu grows geometrically.
  const double spectral = svd(m, /*want_left=*/false).values[0];
  const double dual_scale =
      std::max(spectral, max_abs(m) / lambda);
  Matrix y = m;
  y *= 1.0 / dual_scale;
  double mu = 1.25 / std::max(spectral, 1e-12);
  const double mu_max = mu * 1e7;
  constexpr double kRho = 1.5;

  for (std::size_t it = 0; it < max_iters; ++it) {
    out.iterations = it + 1;
    // L-step: singular value thresholding of M - S + Y/mu.
    Matrix target = m - out.sparse;
    {
      Matrix scaled_y = y;
      scaled_y *= 1.0 / mu;
      target += scaled_y;
    }
    Svd decomp = svd(target, /*want_left=*/true);
    for (std::size_t j = 0; j < decomp.values.size(); ++j) {
      decomp.values[j] = std::max(0.0, decomp.values[j] - 1.0 / mu);
    }
    out.low_rank = svd_reconstruct(decomp);
    // S-step: shrink M - L + Y/mu by lambda/mu.
    out.sparse = m - out.low_rank;
    {
      Matrix scaled_y = y;
      scaled_y *= 1.0 / mu;
      out.sparse += scaled_y;
    }
    shrink_in_place(out.sparse, lambda / mu);
    // Dual update on the constraint residual.
    Matrix residual = m - out.low_rank;
    residual -= out.sparse;
    const double gap = frobenius_norm(residual) / m_norm;
    residual *= mu;
    y += residual;
    mu = std::min(mu * kRho, mu_max);
    if (gap < tol) break;
  }
  return out;
}

RpcaDetector::RpcaDetector(std::size_t dimensions,
                           const RpcaDetectorConfig& config)
    : m_(dimensions), config_(config) {
  SPCA_EXPECTS(dimensions >= 2);
  SPCA_EXPECTS(config.window >= 4);
  SPCA_EXPECTS(config.recompute_period >= 1);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
}

void RpcaDetector::refit() {
  static Counter& refit_counter =
      MetricsRegistry::global().counter("spca.detect.rpca_refits");
  Matrix window(rows_.size(), m_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    window.set_row(i, rows_[i]);
  }
  const RpcaSplit split =
      rpca_decompose(window, 0.0, config_.max_iters, config_.tol);
  // Fit plain PCA to the recovered low-rank part: the anomalies now live in
  // S and cannot tilt the normal subspace.
  model_ = PcaModel::from_data(split.low_rank);
  rank_ = select_rank_by_energy(model_.singular_values(),
                                config_.energy_fraction);
  rank_ = std::clamp<std::size_t>(rank_, 1, m_ - 1);
  // Empirical threshold: the low-rank part is denoised, so its residual
  // eigenvalues say nothing about how far ordinary noisy measurements sit
  // from the subspace — the parametric Q threshold would alarm constantly.
  // Instead, rank the window's raw rows by the mass PCP assigned to their
  // sparse component, keep the cleanest three quarters (robust to in-window
  // episodes), and place the bar at the (1 - alpha) quantile of those
  // inliers' distances under the robust model.
  const std::size_t w = rows_.size();
  std::vector<std::pair<double, std::size_t>> by_sparse_mass(w);
  for (std::size_t i = 0; i < w; ++i) {
    double mass = 0.0;
    for (std::size_t c = 0; c < m_; ++c) {
      mass += std::abs(split.sparse(i, c));
    }
    by_sparse_mass[i] = {mass, i};
  }
  std::sort(by_sparse_mass.begin(), by_sparse_mass.end());
  const std::size_t inliers = std::max<std::size_t>(3 * w / 4, 1);
  std::vector<double> distances;
  distances.reserve(inliers);
  for (std::size_t i = 0; i < inliers; ++i) {
    distances.push_back(
        model_.anomaly_distance(rows_[by_sparse_mass[i].second], rank_));
  }
  std::sort(distances.begin(), distances.end());
  const auto cut = static_cast<std::size_t>(
      (1.0 - config_.alpha) * static_cast<double>(distances.size()));
  const double bar = distances[std::min(cut, distances.size() - 1)];
  threshold_squared_ = bar * bar;
  ++refits_;
  since_refit_ = 0;
  refit_counter.inc();
}

Detection RpcaDetector::observe(std::int64_t t, const Vector& x) {
  SPCA_EXPECTS(x.size() == m_);
  rows_.push_back(x);
  if (rows_.size() > config_.window) rows_.pop_front();
  ++observed_;
  ++since_refit_;

  Detection det;
  if (rows_.size() < config_.window) return det;

  const bool refreshed = !model_.fitted() ||
                         since_refit_ >= config_.recompute_period;
  if (refreshed) refit();

  det.ready = true;
  det.model_refreshed = refreshed;
  det.normal_rank = rank_;
  det.distance = model_.anomaly_distance(x, rank_);
  det.threshold = std::sqrt(threshold_squared_);
  det.alarm = det.distance * det.distance > threshold_squared_;
  EventTrace::global().record(
      DetectionEvent{.detector = "rpca-pcp",
                     .interval = t,
                     .distance_squared = det.distance * det.distance,
                     .threshold_squared = threshold_squared_,
                     .rank = rank_,
                     .refreshed = refreshed,
                     .alarm = det.alarm});
  return det;
}

}  // namespace spca
