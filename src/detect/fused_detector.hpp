// Detector facade over the full ensemble: a SketchDetector plus a
// FirstLineDetector fused by a FusionEngine, behaving as one Detector so the
// ROC benches sweep it like any other. The deployment equivalent is the NOC
// fusing kScoreReports with its sketch-PCA verdict; this facade exists so
// accuracy numbers can be produced without spinning up the distributed
// plane.
#pragma once

#include <memory>

#include "core/detector.hpp"
#include "core/sketch_detector.hpp"
#include "detect/first_line_detector.hpp"
#include "detect/fusion.hpp"

namespace spca {

/// Fused ensemble detector. Detection.distance is the fused statistic
/// (normalized so 1.0 is the alarm boundary) and Detection.threshold is 1.
class FusedDetector final : public Detector {
 public:
  FusedDetector(std::size_t dimensions, std::size_t monitors,
                const SketchDetectorConfig& sketch_config,
                const FusionConfig& fusion_config = {},
                const FirstLineConfig& first_line_config = {});

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override {
    return "fused-" + to_string(fusion_.config().rule);
  }

  /// The verdicts of the last interval's constituent detectors, for bench
  /// breakdowns.
  [[nodiscard]] const Detection& last_sketch() const noexcept {
    return last_sketch_;
  }
  [[nodiscard]] const FusedDecision& last_fused() const noexcept {
    return last_fused_;
  }

 private:
  SketchDetector sketch_;
  FirstLineDetector first_line_;
  FusionEngine fusion_;
  Detection last_sketch_;
  FusedDecision last_fused_;
};

}  // namespace spca
