// Robust-PCA baseline of the ensemble detection plane: relaxed Principal
// Component Pursuit (Candes et al., "Robust Principal Component Analysis?",
// JACM 2011) solved by the inexact augmented-Lagrangian method (Lin, Chen &
// Ma, 2010). The sliding window matrix M is split as M ~ L + S with L low
// rank (the normal traffic subspace) and S sparse (the anomalies), so the
// subspace estimate is not contaminated by the very outliers the detector
// is hunting — the classic failure mode of plain window PCA that Sec. VI's
// poisoning discussion worries about.
//
// This is a reference-quality baseline, not a streaming method: each refit
// costs several SVDs of the n x m window. The adversarial catalog benches
// therefore run it on short windows with a refit period, mirroring how the
// exact Lakhina baseline is benched against the sketch detector.
#pragma once

#include <cstdint>
#include <deque>

#include "core/detector.hpp"
#include "linalg/matrix.hpp"

namespace spca {

/// Result of one Principal Component Pursuit decomposition M ~ L + S.
struct RpcaSplit {
  Matrix low_rank;
  Matrix sparse;
  /// ALM iterations consumed (== max_iters when the tolerance was not met).
  std::size_t iterations = 0;
};

/// Decomposes `m` by inexact-ALM PCP: minimize |L|_* + lambda |S|_1 subject
/// to L + S = M. `lambda <= 0` selects the standard 1/sqrt(max(rows, cols)).
/// Each iteration shrinks the singular values of (M - S + Y/mu) and
/// soft-thresholds the residual; stops when |M - L - S|_F / |M|_F < tol.
[[nodiscard]] RpcaSplit rpca_decompose(const Matrix& m, double lambda = 0.0,
                                       std::size_t max_iters = 25,
                                       double tol = 1e-6);

/// Configuration of the robust-PCA sliding-window detector.
struct RpcaDetectorConfig {
  /// Sliding-window length n (kept short: every refit is several SVDs).
  std::size_t window = 96;
  /// Intervals between PCP refits once the window is full.
  std::size_t recompute_period = 8;
  /// False-alarm rate of the Q-statistic threshold.
  double alpha = 0.01;
  /// Fraction of spectral energy of the recovered L captured by the normal
  /// subspace.
  double energy_fraction = 0.9;
  /// PCP solver budget per refit.
  std::size_t max_iters = 25;
  double tol = 1e-6;
};

/// Sliding-window robust-PCA detector: fits PCA to the PCP low-rank part of
/// the window and scores new intervals by SPE against the Q-statistic
/// threshold, exactly like the other detectors, so the ROC benches can
/// compare all of them on one axis.
class RpcaDetector final : public Detector {
 public:
  RpcaDetector(std::size_t dimensions, const RpcaDetectorConfig& config);

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "rpca-pcp"; }

  [[nodiscard]] const RpcaDetectorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const PcaModel& model() const noexcept { return model_; }
  [[nodiscard]] std::size_t normal_rank() const noexcept { return rank_; }
  /// PCP refits performed so far.
  [[nodiscard]] std::uint64_t refits() const noexcept { return refits_; }

 private:
  void refit();

  std::size_t m_;
  RpcaDetectorConfig config_;
  std::deque<Vector> rows_;
  std::uint64_t observed_ = 0;
  std::uint64_t since_refit_ = 0;
  std::uint64_t refits_ = 0;
  PcaModel model_;
  std::size_t rank_ = 1;
  double threshold_squared_ = 0.0;
};

}  // namespace spca
