#include "detect/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"

namespace spca {

FusionRule parse_fusion_rule(const std::string& name) {
  if (name == "off") return FusionRule::kOff;
  if (name == "any") return FusionRule::kAny;
  if (name == "all") return FusionRule::kAll;
  if (name == "weighted") return FusionRule::kWeighted;
  throw InputError("unknown fusion rule '" + name +
                   "' (expected off | any | all | weighted)");
}

std::string to_string(FusionRule rule) {
  switch (rule) {
    case FusionRule::kOff:
      return "off";
    case FusionRule::kAny:
      return "any";
    case FusionRule::kAll:
      return "all";
    case FusionRule::kWeighted:
      return "weighted";
  }
  return "off";  // unreachable
}

FusionEngine::FusionEngine(const FusionConfig& config) : config_(config) {
  SPCA_EXPECTS(config.rule != FusionRule::kOff);
  SPCA_EXPECTS(config.score_threshold > 0.0);
  SPCA_EXPECTS(config.weight_spca >= 0.0 && config.weight_entropy >= 0.0 &&
               config.weight_rate >= 0.0);
}

FusedDecision FusionEngine::fuse(std::int64_t t, const Detection& sketch,
                                 std::span<const MonitorScore> scores) {
  static Counter& fused_alarms =
      MetricsRegistry::global().counter("spca.detect.fused_alarms");
  static Counter& first_line_trips =
      MetricsRegistry::global().counter("spca.detect.first_line_trips");

  FusedDecision out;
  out.ready = sketch.ready;
  out.monitors = scores.size();

  // Normalize every signal so 1.0 means "at its own alarm boundary": the
  // sketch distance against its Q-statistic threshold, each z-score against
  // the trip threshold. max over monitors keeps the fused statistic
  // insensitive to fleet size.
  const double s_spca = sketch.threshold > 0.0
                            ? sketch.distance / sketch.threshold
                            : (sketch.alarm ? 1.0 : 0.0);
  double max_entropy = 0.0;
  double max_rate = 0.0;
  for (const MonitorScore& score : scores) {
    const double e = std::abs(score.entropy_z) / config_.score_threshold;
    const double r = std::abs(score.rate_z) / config_.score_threshold;
    max_entropy = std::max(max_entropy, e);
    max_rate = std::max(max_rate, r);
    if (e >= 1.0 || r >= 1.0) out.tripped_monitors.push_back(score.monitor);
  }
  std::sort(out.tripped_monitors.begin(), out.tripped_monitors.end());
  first_line_trips.inc(out.tripped_monitors.size());
  const double s_first = std::max(max_entropy, max_rate);
  const bool tripped = !out.tripped_monitors.empty();

  switch (config_.rule) {
    case FusionRule::kAny:
      out.statistic = std::max(s_spca, s_first);
      out.alarm = sketch.alarm || tripped;
      break;
    case FusionRule::kAll:
      out.statistic = std::min(s_spca, s_first);
      out.alarm = sketch.alarm && tripped;
      break;
    case FusionRule::kWeighted:
      out.statistic = config_.weight_spca * s_spca +
                      config_.weight_entropy * max_entropy +
                      config_.weight_rate * max_rate;
      out.alarm = out.statistic > 1.0;
      break;
    case FusionRule::kOff:
      break;  // unreachable: rejected by the constructor
  }

  // Fusion abstains until the sketch detector is warm: first-line baselines
  // settle faster than the PCA window fills, and alarming on half the
  // ensemble would skew the Type-I accounting of the benches.
  if (!out.ready) {
    out.alarm = false;
    return out;
  }
  if (out.alarm) fused_alarms.inc();
  EventTrace::global().record(
      DetectionEvent{.detector = "fusion",
                     .interval = t,
                     .distance_squared = out.statistic * out.statistic,
                     .threshold_squared = 1.0,
                     .rank = sketch.normal_rank,
                     .refreshed = sketch.model_refreshed,
                     .alarm = out.alarm});
  return out;
}

}  // namespace spca
