#include "traffic/trace.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"

namespace spca {

namespace {

double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw InputError("TraceSet: malformed number '" + s + "'");
  }
}

/// Numeric parse that additionally rejects NaN/Inf — stod happily accepts
/// "nan" and "inf", and a single such cell would silently poison every
/// sketch and PCA computation downstream.
double parse_finite(const std::string& s, const char* what) {
  const double v = parse_double(s);
  if (!std::isfinite(v)) {
    throw InputError("TraceSet: non-finite " + std::string(what) + " '" + s +
                     "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw InputError("TraceSet: malformed integer '" + s + "'");
  }
  return v;
}

}  // namespace

TraceSet::TraceSet(Matrix volumes, double interval_seconds,
                   std::vector<std::string> flow_names)
    : volumes_(std::move(volumes)),
      interval_seconds_(interval_seconds),
      flow_names_(std::move(flow_names)) {
  SPCA_EXPECTS(interval_seconds_ > 0.0);
  SPCA_EXPECTS(flow_names_.size() == volumes_.cols());
}

void TraceSet::add_event(AnomalyEvent event) {
  SPCA_EXPECTS(event.start <= event.end);
  SPCA_EXPECTS(!event.flows.empty());
  events_.push_back(std::move(event));
}

bool TraceSet::is_anomalous(std::int64_t t) const noexcept {
  for (const auto& e : events_) {
    if (t >= e.start && t <= e.end) return true;
  }
  return false;
}

std::vector<bool> TraceSet::labels() const {
  std::vector<bool> out(num_intervals(), false);
  for (const auto& e : events_) {
    for (std::int64_t t = e.start; t <= e.end; ++t) {
      if (t >= 0 && static_cast<std::size_t>(t) < out.size()) {
        out[static_cast<std::size_t>(t)] = true;
      }
    }
  }
  return out;
}

void TraceSet::save(const std::string& prefix) const {
  {
    std::vector<std::string> header = {"interval_seconds"};
    header.insert(header.end(), flow_names_.begin(), flow_names_.end());
    CsvWriter w(prefix + "_volumes.csv", header);
    for (std::size_t t = 0; t < num_intervals(); ++t) {
      std::vector<std::string> fields;
      fields.reserve(num_flows() + 1);
      fields.push_back(t == 0 ? format_double(interval_seconds_) : "0");
      for (std::size_t j = 0; j < num_flows(); ++j) {
        fields.push_back(format_double(volumes_(t, j)));
      }
      w.row(fields);
    }
  }
  {
    CsvWriter w(prefix + "_events.csv",
                {"start", "end", "kind", "magnitude", "flows"});
    for (const auto& e : events_) {
      std::ostringstream flows;
      for (std::size_t i = 0; i < e.flows.size(); ++i) {
        flows << (i ? ";" : "") << e.flows[i];
      }
      w.row({std::to_string(e.start), std::to_string(e.end), e.kind,
             format_double(e.magnitude), flows.str()});
    }
  }
}

TraceSet TraceSet::load(const std::string& prefix) {
  const CsvReader volumes_csv(prefix + "_volumes.csv");
  const auto& header = volumes_csv.header();
  if (header.size() < 2 || header[0] != "interval_seconds") {
    throw InputError("TraceSet: bad volumes header in '" + prefix + "'");
  }
  std::vector<std::string> flow_names(header.begin() + 1, header.end());
  const auto& rows = volumes_csv.rows();
  if (rows.empty()) throw InputError("TraceSet: empty volumes file");

  Matrix volumes(rows.size(), flow_names.size());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (std::size_t j = 0; j < flow_names.size(); ++j) {
      volumes(t, j) = parse_finite(rows[t][j + 1], "volume");
    }
  }
  const double interval_seconds = parse_finite(rows[0][0], "interval_seconds");
  if (interval_seconds <= 0.0) {
    throw InputError("TraceSet: interval_seconds must be positive, got '" +
                     rows[0][0] + "'");
  }

  TraceSet trace(std::move(volumes), interval_seconds, std::move(flow_names));

  const CsvReader events_csv(prefix + "_events.csv");
  for (const auto& r : events_csv.rows()) {
    AnomalyEvent e;
    e.start = parse_int(r[0]);
    e.end = parse_int(r[1]);
    if (e.start > e.end) {
      throw InputError("TraceSet: event range [" + r[0] + ", " + r[1] +
                       "] is inverted");
    }
    e.kind = r[2];
    e.magnitude = parse_finite(r[3], "magnitude");
    std::istringstream flows(r[4]);
    std::string tok;
    while (std::getline(flows, tok, ';')) {
      const std::int64_t flow = parse_int(tok);
      if (flow < 0 || static_cast<std::size_t>(flow) >= trace.num_flows()) {
        throw InputError("TraceSet: event flow id '" + tok +
                         "' out of range");
      }
      e.flows.push_back(static_cast<std::uint32_t>(flow));
    }
    if (e.flows.empty()) {
      throw InputError("TraceSet: event with no flows");
    }
    trace.add_event(std::move(e));
  }
  return trace;
}

}  // namespace spca
