// Link-space view of OD traffic: Lakhina's original SIGCOMM'04 analysis ran
// on per-link byte counts (OD flows were estimated later); this adapter
// turns an OD-flow trace into the equivalent link-load trace via the
// routing matrix, so every detector in this library can also operate in
// link space. Anomaly annotations are carried over to the links each
// affected flow traverses.
#pragma once

#include "traffic/routing.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Converts an OD trace (m = R^2 flows) to a link trace (m = #links) using
/// shortest-path routing: row_t(link) = sum of row_t(flow) over flows whose
/// path crosses the link.
[[nodiscard]] TraceSet to_link_trace(const TraceSet& od_trace,
                                     const Topology& topology,
                                     const Routing& routing);

}  // namespace spca
