// The Volume Counter of Sec. IV-A: one bucket U_j per flow, incremented by
// Size on every (FlowID, Size) report, flushed and zeroed at interval end.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/vector.hpp"
#include "traffic/flow.hpp"

namespace spca {

/// Per-interval traffic volume accumulator for a set of aggregated flows.
class VolumeCounter final {
 public:
  explicit VolumeCounter(std::uint32_t num_flows);

  /// Records one (FlowID, Size) observation for the current interval.
  /// O(1) per packet — this is the only per-packet work at a monitor.
  void record(FlowId flow, std::uint32_t size_bytes);

  /// Records a pre-aggregated byte amount (e.g. an upstream NetFlow record
  /// or an interval-level replay); fractional bytes are preserved.
  void record_bytes(FlowId flow, double bytes);
  void record(const FlowUpdate& update) {
    record(update.flow, update.size_bytes);
  }

  /// Records a packet given an OD aggregation over `num_routers` routers.
  void record_packet(const Packet& packet, std::uint32_t num_routers);

  /// Ends the current interval: returns the volume vector x_t (length
  /// num_flows) and resets every bucket to zero for the next interval.
  [[nodiscard]] Vector end_interval();

  /// Marks `n` intervals as completed without flushing anything. The batched
  /// ingest path aggregates interval volumes outside the counter, so this
  /// keeps `intervals_completed` (and hence checkpoint state) identical to
  /// the per-interval path. All buckets must be zero (nothing unflushed).
  void advance_intervals(std::uint64_t n);

  /// Current (unflushed) volume of one flow.
  [[nodiscard]] double volume(FlowId flow) const;

  [[nodiscard]] std::uint32_t num_flows() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }

  /// Number of intervals flushed so far.
  [[nodiscard]] std::uint64_t intervals_completed() const noexcept {
    return intervals_;
  }

  /// Raw unflushed buckets (exposed for checkpointing).
  [[nodiscard]] const std::vector<double>& buckets() const noexcept {
    return buckets_;
  }

  /// Reconstructs a counter from exported state (checkpoint restore).
  [[nodiscard]] static VolumeCounter from_state(std::vector<double> buckets,
                                                std::uint64_t intervals) {
    VolumeCounter counter(static_cast<std::uint32_t>(buckets.size()));
    counter.buckets_ = std::move(buckets);
    counter.intervals_ = intervals;
    return counter;
  }

 private:
  std::vector<double> buckets_;
  std::uint64_t intervals_ = 0;
};

}  // namespace spca
