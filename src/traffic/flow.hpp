// Basic traffic-plane types: packets, flow identifiers, OD-flow indexing.
//
// ISPs aggregate end-to-end flows (Sec. III-A); this library follows the
// paper and Lakhina'04 in aggregating to origin-destination (OD) flows: all
// packets entering the backbone at origin router o and leaving at
// destination router d belong to OD flow (o, d).
#pragma once

#include <cstdint>
#include <string>

namespace spca {

/// Index of an aggregated flow (the FlowID of Sec. IV-A).
using FlowId = std::uint32_t;

/// Index of a backbone router.
using RouterId = std::uint32_t;

/// A packet observation as a monitor sees it after header parsing: ingress
/// and egress routers (from BGP/IGP routing state), payload size, the time
/// interval it falls into, and the end-host addresses (for feature-entropy
/// measurements; 0 when the trace carries no address information).
struct Packet {
  RouterId origin = 0;
  RouterId destination = 0;
  std::uint32_t size_bytes = 0;
  std::int64_t interval = 0;
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
};

/// The (FlowID, Size) pair reported to the volume counter (Sec. IV-A).
struct FlowUpdate {
  FlowId flow = 0;
  std::uint32_t size_bytes = 0;
};

/// Maps an OD pair to its flow index in [0, R^2): row-major over (o, d).
[[nodiscard]] constexpr FlowId od_flow_id(RouterId origin,
                                          RouterId destination,
                                          std::uint32_t num_routers) noexcept {
  return origin * num_routers + destination;
}

/// Inverse of `od_flow_id`.
struct OdPair {
  RouterId origin;
  RouterId destination;
};
[[nodiscard]] constexpr OdPair od_pair_of(FlowId flow,
                                          std::uint32_t num_routers) noexcept {
  return {flow / num_routers, flow % num_routers};
}

}  // namespace spca
