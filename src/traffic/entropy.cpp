#include "traffic/entropy.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace spca {

double shannon_entropy_bits(std::span<const double> weights) {
  double total = 0.0;
  std::size_t positive = 0;
  for (const double w : weights) {
    if (w > 0.0) {
      total += w;
      ++positive;
    }
  }
  if (positive < 2 || total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

void EntropyCounter::add(std::uint32_t value, std::uint64_t weight) {
  SPCA_EXPECTS(weight >= 1);
  counts_[value] += weight;
  total_ += weight;
}

double EntropyCounter::entropy_bits() const {
  if (counts_.size() < 2) return 0.0;
  double h = 0.0;
  const double n = static_cast<double>(total_);
  for (const auto& [value, count] : counts_) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double EntropyCounter::normalized_entropy() const {
  if (counts_.size() < 2) return 0.0;
  return entropy_bits() / std::log2(static_cast<double>(counts_.size()));
}

void EntropyCounter::reset() {
  counts_.clear();
  total_ = 0;
}

EntropyAggregator::EntropyAggregator(std::uint32_t num_flows, Feature feature)
    : feature_(feature), counters_(num_flows) {
  SPCA_EXPECTS(num_flows >= 1);
}

void EntropyAggregator::record(const Packet& packet,
                               std::uint32_t num_routers) {
  const FlowId flow =
      od_flow_id(packet.origin, packet.destination, num_routers);
  SPCA_EXPECTS(flow < counters_.size());
  counters_[flow].add(feature_ == Feature::kSourceAddress ? packet.src_addr
                                                          : packet.dst_addr);
}

Vector EntropyAggregator::end_interval() {
  Vector h(counters_.size());
  for (std::size_t j = 0; j < counters_.size(); ++j) {
    h[j] = counters_[j].entropy_bits();
    counters_[j].reset();
  }
  return h;
}

const EntropyCounter& EntropyAggregator::counter(FlowId flow) const {
  SPCA_EXPECTS(flow < counters_.size());
  return counters_[flow];
}

}  // namespace spca
