#include "traffic/volume_counter.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace spca {

VolumeCounter::VolumeCounter(std::uint32_t num_flows)
    : buckets_(num_flows, 0.0) {
  SPCA_EXPECTS(num_flows >= 1);
}

void VolumeCounter::record(FlowId flow, std::uint32_t size_bytes) {
  SPCA_EXPECTS(flow < buckets_.size());
  buckets_[flow] += static_cast<double>(size_bytes);
}

void VolumeCounter::record_bytes(FlowId flow, double bytes) {
  SPCA_EXPECTS(flow < buckets_.size());
  SPCA_EXPECTS(bytes >= 0.0);
  buckets_[flow] += bytes;
}

void VolumeCounter::record_packet(const Packet& packet,
                                  std::uint32_t num_routers) {
  record(od_flow_id(packet.origin, packet.destination, num_routers),
         packet.size_bytes);
}

Vector VolumeCounter::end_interval() {
  Vector x(std::vector<double>(buckets_.begin(), buckets_.end()));
  std::fill(buckets_.begin(), buckets_.end(), 0.0);
  ++intervals_;
  return x;
}

void VolumeCounter::advance_intervals(std::uint64_t n) {
  SPCA_EXPECTS(std::all_of(buckets_.begin(), buckets_.end(),
                           [](double b) { return b == 0.0; }));
  intervals_ += n;
}

double VolumeCounter::volume(FlowId flow) const {
  SPCA_EXPECTS(flow < buckets_.size());
  return buckets_[flow];
}

}  // namespace spca
