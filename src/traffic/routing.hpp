// Shortest-path routing over a Topology and the link-level view of OD
// traffic: the routing matrix A with A(link, flow) = 1 iff the flow's path
// crosses the link, so link loads are A * x for an OD volume vector x.
//
// The paper aggregates by OD flow using "both BGP and ISIS routing
// information" (Sec. VI); this module plays the role of that routing state.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "traffic/topology.hpp"

namespace spca {

/// All-pairs shortest paths (Dijkstra per source) with path reconstruction.
class Routing final {
 public:
  explicit Routing(const Topology& topology);

  /// Ordered link indices along the path from `origin` to `destination`
  /// (empty when origin == destination).
  [[nodiscard]] const std::vector<std::size_t>& path(
      RouterId origin, RouterId destination) const;

  /// Shortest-path distance (sum of IGP weights).
  [[nodiscard]] double distance(RouterId origin, RouterId destination) const;

  /// The (num_links x num_od_flows) 0/1 routing matrix A.
  [[nodiscard]] const Matrix& routing_matrix() const noexcept {
    return routing_matrix_;
  }

  /// Link loads A*x for an OD volume vector (length num_od_flows).
  [[nodiscard]] Vector link_loads(const Vector& od_volumes) const;

  [[nodiscard]] std::uint32_t num_routers() const noexcept { return n_; }

 private:
  std::uint32_t n_;
  std::size_t num_links_;
  std::vector<std::vector<std::size_t>> paths_;  // [o*n + d] -> link indices
  std::vector<double> distances_;                // [o*n + d]
  Matrix routing_matrix_;
};

}  // namespace spca
