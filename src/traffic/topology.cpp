#include "traffic/topology.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

Topology::Topology(std::vector<std::string> router_names,
                   std::vector<Link> links)
    : names_(std::move(router_names)), links_(std::move(links)) {
  SPCA_EXPECTS(!names_.empty());
  adjacency_.resize(names_.size());
  for (std::size_t e = 0; e < links_.size(); ++e) {
    const Link& l = links_[e];
    SPCA_EXPECTS(l.a < names_.size() && l.b < names_.size() && l.a != l.b);
    SPCA_EXPECTS(l.weight > 0.0);
    adjacency_[l.a].push_back(Edge{l.b, e, l.weight});
    adjacency_[l.b].push_back(Edge{l.a, e, l.weight});
  }
}

const std::string& Topology::router_name(RouterId r) const {
  SPCA_EXPECTS(r < names_.size());
  return names_[r];
}

RouterId Topology::router_id(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<RouterId>(i);
  }
  throw InputError("Topology: unknown router '" + name + "'");
}

const std::vector<Topology::Edge>& Topology::neighbors(RouterId r) const {
  SPCA_EXPECTS(r < adjacency_.size());
  return adjacency_[r];
}

std::string Topology::flow_name(FlowId flow) const {
  const OdPair od = od_pair_of(flow, num_routers());
  return router_name(od.origin) + "-" + router_name(od.destination);
}

FlowId Topology::flow_id(const std::string& origin,
                         const std::string& destination) const {
  return od_flow_id(router_id(origin), router_id(destination), num_routers());
}

Topology abilene11_topology() {
  // The well-known 11-node Abilene map (pre-2007); weights approximate
  // circuit mileage.
  std::vector<std::string> names = {"ATLA", "CHIN", "DNVR", "HSTN",
                                    "IPLS", "KSCY", "LOSA", "NYCM",
                                    "SNVA", "STTL", "WASH"};
  const RouterId ATLA = 0, CHIN = 1, DNVR = 2, HSTN = 3, IPLS = 4, KSCY = 5,
                 LOSA = 6, NYCM = 7, SNVA = 8, STTL = 9, WASH = 10;
  std::vector<Link> links = {
      {STTL, SNVA, 8.0},  {STTL, DNVR, 13.0}, {SNVA, LOSA, 4.0},
      {SNVA, DNVR, 12.0}, {LOSA, HSTN, 15.0}, {DNVR, KSCY, 6.0},
      {KSCY, HSTN, 8.0},  {KSCY, IPLS, 5.0},  {HSTN, ATLA, 8.0},
      {IPLS, CHIN, 2.0},  {IPLS, ATLA, 6.0},  {CHIN, NYCM, 8.0},
      {ATLA, WASH, 6.0},  {NYCM, WASH, 2.0},
  };
  return Topology(std::move(names), std::move(links));
}

Topology abilene_topology() {
  // Router set from Sec. VI; indices are alphabetical.
  std::vector<std::string> names = {"ATLA", "CHIC", "HOUS", "KANS", "LOSA",
                                    "NEWY", "SALT", "SEAT", "WASH"};
  const RouterId ATLA = 0, CHIC = 1, HOUS = 2, KANS = 3, LOSA = 4, NEWY = 5,
                 SALT = 6, SEAT = 7, WASH = 8;
  // Approximate Internet2 backbone circuits of 2008 with rough
  // mileage-derived IGP weights.
  std::vector<Link> links = {
      {SEAT, SALT, 7.0}, {SEAT, LOSA, 10.0}, {LOSA, SALT, 6.0},
      {LOSA, HOUS, 14.0}, {SALT, KANS, 9.0},  {KANS, HOUS, 7.0},
      {KANS, CHIC, 5.0},  {HOUS, ATLA, 7.0},  {CHIC, ATLA, 6.0},
      {CHIC, NEWY, 8.0},  {CHIC, WASH, 7.0},  {ATLA, WASH, 5.0},
      {NEWY, WASH, 3.0},
  };
  return Topology(std::move(names), std::move(links));
}

}  // namespace spca
