// Backbone topology model and the Internet2/Abilene 9-router instance the
// paper's evaluation runs on (Sec. VI: ATLA, CHIC, HOUS, KANS, LOSA, NEWY,
// SALT, SEAT, WASH after Feb 2008).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/flow.hpp"

namespace spca {

/// An undirected weighted backbone link between two routers.
struct Link {
  RouterId a = 0;
  RouterId b = 0;
  /// IGP metric used by shortest-path routing (roughly mileage-based).
  double weight = 1.0;
};

/// A named backbone topology: routers plus undirected links.
class Topology final {
 public:
  Topology(std::vector<std::string> router_names, std::vector<Link> links);

  [[nodiscard]] std::uint32_t num_routers() const noexcept {
    return static_cast<std::uint32_t>(names_.size());
  }
  [[nodiscard]] std::size_t num_links() const noexcept {
    return links_.size();
  }
  [[nodiscard]] std::uint32_t num_od_flows() const noexcept {
    return num_routers() * num_routers();
  }

  [[nodiscard]] const std::string& router_name(RouterId r) const;
  /// Router index by name; throws InputError if unknown.
  [[nodiscard]] RouterId router_id(const std::string& name) const;

  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }

  /// Adjacency: (neighbor, link index, weight) triples for router `r`.
  struct Edge {
    RouterId neighbor;
    std::size_t link;
    double weight;
  };
  [[nodiscard]] const std::vector<Edge>& neighbors(RouterId r) const;

  /// Human-readable flow name, e.g. "ATLA-CHIC".
  [[nodiscard]] std::string flow_name(FlowId flow) const;

  /// Flow id from "ORIGIN-DEST" router names.
  [[nodiscard]] FlowId flow_id(const std::string& origin,
                               const std::string& destination) const;

 private:
  std::vector<std::string> names_;
  std::vector<Link> links_;
  std::vector<std::vector<Edge>> adjacency_;
};

/// The Internet2 (post-Feb-2008) 9-router backbone used in Sec. VI. Link
/// set and metrics approximate the published Internet2 map of that period;
/// the evaluation only relies on the topology being the real router set with
/// realistic path diversity.
[[nodiscard]] Topology abilene_topology();

/// The classic pre-2007 11-router Abilene backbone (ATLA, CHIN, DNVR, HSTN,
/// IPLS, KSCY, LOSA, NYCM, SNVA, STTL, WASH with its 14 circuits) — the
/// topology of Lakhina et al.'s original SIGCOMM'04 study (m = 121 OD
/// flows). Provided so experiments can also be run at the baseline paper's
/// scale.
[[nodiscard]] Topology abilene11_topology();

}  // namespace spca
