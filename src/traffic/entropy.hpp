// Feature-entropy measurements: the alternative x_ij of Sec. III-B ("the
// entropy of IP addresses, the frequency of the byte values in the
// payload, and so forth"), following Lakhina et al., SIGCOMM'05 (ref [4]).
//
// Volume is blind to anomalies that move few bytes but change the traffic
// *structure* — port/address scans, DDoS with spoofed sources. The
// empirical entropy of the address distribution within each flow and
// interval exposes them: a scan flattens the destination-address histogram
// (entropy up), a many-to-one flood flattens the source histogram.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "linalg/vector.hpp"
#include "traffic/flow.hpp"

namespace spca {

/// Shannon entropy (bits) of the distribution induced by a nonnegative
/// weight vector: H = -sum (w_j / W) log2(w_j / W) over the strictly
/// positive weights, with W their sum. Zero weights carry no probability
/// mass and are skipped; fewer than two positive weights (or a nonpositive
/// total) yield 0.0, matching EntropyCounter's degenerate-distribution
/// convention. Deterministic: summation follows span order.
[[nodiscard]] double shannon_entropy_bits(std::span<const double> weights);

/// Empirical entropy (bits) of observed categorical values, built
/// incrementally within one measurement interval.
class EntropyCounter final {
 public:
  /// Records one observation of `value` with multiplicity `weight`.
  void add(std::uint32_t value, std::uint64_t weight = 1);

  /// Shannon entropy H = -sum p log2 p of the observed distribution
  /// (0 for fewer than two distinct values).
  [[nodiscard]] double entropy_bits() const;

  /// Entropy normalized by log2(distinct) into [0, 1] — Lakhina'05's
  /// preferred scale, insensitive to the observation count.
  [[nodiscard]] double normalized_entropy() const;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept {
    return counts_.size();
  }

  void reset();

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-flow, per-interval entropy measurement: the drop-in replacement for
/// the VolumeCounter when the measurement of interest is address entropy.
class EntropyAggregator final {
 public:
  /// Which packet field is measured.
  enum class Feature { kSourceAddress, kDestinationAddress };

  EntropyAggregator(std::uint32_t num_flows, Feature feature);

  /// Records one packet for the current interval (O(1) expected).
  void record(const Packet& packet, std::uint32_t num_routers);

  /// Ends the interval: returns the per-flow entropy vector (bits) and
  /// resets all histograms.
  [[nodiscard]] Vector end_interval();

  [[nodiscard]] std::uint32_t num_flows() const noexcept {
    return static_cast<std::uint32_t>(counters_.size());
  }
  [[nodiscard]] Feature feature() const noexcept { return feature_; }

  /// Current (unflushed) counter of one flow, for inspection.
  [[nodiscard]] const EntropyCounter& counter(FlowId flow) const;

 private:
  Feature feature_;
  std::vector<EntropyCounter> counters_;
};

}  // namespace spca
