#include "traffic/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/contracts.hpp"

namespace spca {

Routing::Routing(const Topology& topology)
    : n_(topology.num_routers()), num_links_(topology.num_links()) {
  const std::size_t pairs = static_cast<std::size_t>(n_) * n_;
  paths_.resize(pairs);
  distances_.assign(pairs, std::numeric_limits<double>::infinity());
  routing_matrix_ = Matrix(num_links_, pairs);

  for (RouterId src = 0; src < n_; ++src) {
    // Dijkstra from src with predecessor-link tracking.
    std::vector<double> dist(n_, std::numeric_limits<double>::infinity());
    std::vector<std::int64_t> pred_router(n_, -1);
    std::vector<std::int64_t> pred_link(n_, -1);
    using Item = std::pair<double, RouterId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[src] = 0.0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (const auto& e : topology.neighbors(u)) {
        const double nd = d + e.weight;
        if (nd < dist[e.neighbor]) {
          dist[e.neighbor] = nd;
          pred_router[e.neighbor] = u;
          pred_link[e.neighbor] = static_cast<std::int64_t>(e.link);
          heap.emplace(nd, e.neighbor);
        }
      }
    }
    for (RouterId dst = 0; dst < n_; ++dst) {
      const std::size_t pair = static_cast<std::size_t>(src) * n_ + dst;
      distances_[pair] = dist[dst];
      if (dst == src || pred_router[dst] < 0) continue;
      std::vector<std::size_t> links;
      for (RouterId v = dst; v != src;
           v = static_cast<RouterId>(pred_router[v])) {
        SPCA_ENSURES(pred_link[v] >= 0);
        links.push_back(static_cast<std::size_t>(pred_link[v]));
      }
      std::reverse(links.begin(), links.end());
      for (const std::size_t link : links) {
        routing_matrix_(link, pair) = 1.0;
      }
      paths_[pair] = std::move(links);
    }
  }
}

const std::vector<std::size_t>& Routing::path(RouterId origin,
                                              RouterId destination) const {
  SPCA_EXPECTS(origin < n_ && destination < n_);
  return paths_[static_cast<std::size_t>(origin) * n_ + destination];
}

double Routing::distance(RouterId origin, RouterId destination) const {
  SPCA_EXPECTS(origin < n_ && destination < n_);
  return distances_[static_cast<std::size_t>(origin) * n_ + destination];
}

Vector Routing::link_loads(const Vector& od_volumes) const {
  SPCA_EXPECTS(od_volumes.size() == static_cast<std::size_t>(n_) * n_);
  return multiply(routing_matrix_, od_volumes);
}

}  // namespace spca
