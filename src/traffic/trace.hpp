// Labelled OD-flow traffic traces: the data set abstraction the evaluation
// harness consumes. Plays the role of the Abilene Observatory NetFlow
// collection of Sec. VI, with ground-truth anomaly annotations attached by
// the synthetic generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// One injected (or otherwise known) anomaly episode.
struct AnomalyEvent {
  /// Inclusive interval range [start, end] of the episode.
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// OD flows the episode touches.
  std::vector<std::uint32_t> flows;
  /// Category tag: "ddos", "botnet", "flash-crowd", "outage", "scan".
  std::string kind;
  /// Rough relative volume change applied (for reporting only).
  double magnitude = 0.0;
};

/// A complete measured/synthesized trace: per-interval OD volumes plus
/// annotations.
class TraceSet final {
 public:
  TraceSet(Matrix volumes, double interval_seconds,
           std::vector<std::string> flow_names);

  [[nodiscard]] std::size_t num_intervals() const noexcept {
    return volumes_.rows();
  }
  [[nodiscard]] std::size_t num_flows() const noexcept {
    return volumes_.cols();
  }
  [[nodiscard]] double interval_seconds() const noexcept {
    return interval_seconds_;
  }

  [[nodiscard]] const Matrix& volumes() const noexcept { return volumes_; }
  [[nodiscard]] Matrix& volumes() noexcept { return volumes_; }

  /// The measurement vector x_t of interval `t`.
  [[nodiscard]] Vector row(std::size_t t) const { return volumes_.row(t); }

  [[nodiscard]] const std::vector<std::string>& flow_names() const noexcept {
    return flow_names_;
  }

  [[nodiscard]] const std::vector<AnomalyEvent>& events() const noexcept {
    return events_;
  }
  void add_event(AnomalyEvent event);

  /// True iff some annotated episode covers interval `t`.
  [[nodiscard]] bool is_anomalous(std::int64_t t) const noexcept;

  /// Per-interval 0/1 ground-truth labels.
  [[nodiscard]] std::vector<bool> labels() const;

  /// Persists volumes (+ events) to `<prefix>_volumes.csv` and
  /// `<prefix>_events.csv`.
  void save(const std::string& prefix) const;

  /// Loads a trace saved by `save`.
  [[nodiscard]] static TraceSet load(const std::string& prefix);

 private:
  Matrix volumes_;
  double interval_seconds_;
  std::vector<std::string> flow_names_;
  std::vector<AnomalyEvent> events_;
};

}  // namespace spca
