#include "traffic/link_view.hpp"

#include <set>

#include "common/contracts.hpp"

namespace spca {

TraceSet to_link_trace(const TraceSet& od_trace, const Topology& topology,
                       const Routing& routing) {
  SPCA_EXPECTS(od_trace.num_flows() == topology.num_od_flows());
  const std::size_t num_links = topology.num_links();

  Matrix link_volumes(od_trace.num_intervals(), num_links);
  for (std::size_t t = 0; t < od_trace.num_intervals(); ++t) {
    const Vector loads = routing.link_loads(od_trace.row(t));
    link_volumes.set_row(t, loads);
  }

  std::vector<std::string> link_names;
  link_names.reserve(num_links);
  for (const Link& link : topology.links()) {
    link_names.push_back(topology.router_name(link.a) + "--" +
                         topology.router_name(link.b));
  }

  TraceSet out(std::move(link_volumes), od_trace.interval_seconds(),
               std::move(link_names));
  for (const AnomalyEvent& event : od_trace.events()) {
    AnomalyEvent mapped = event;
    std::set<std::uint32_t> links;
    for (const std::uint32_t flow : event.flows) {
      const OdPair od = od_pair_of(flow, topology.num_routers());
      for (const std::size_t link : routing.path(od.origin, od.destination)) {
        links.insert(static_cast<std::uint32_t>(link));
      }
    }
    mapped.flows.assign(links.begin(), links.end());
    if (!mapped.flows.empty()) out.add_event(std::move(mapped));
  }
  return out;
}

}  // namespace spca
