// Transport decorator that injects message-level faults AND the recovery
// machinery that masks them, so the protocol trajectory over a faulty
// channel stays bit-identical to the fault-free run:
//
//   drop     -> the attempt never reaches the inner transport; the sender
//               retransmits deterministically (the ARQ a real deployment
//               would run on top of its frames)
//   corrupt  -> the frame CRC catches any byte flip, so a corrupted attempt
//               behaves like a detected drop: counted, then retransmitted
//   dup      -> the message enters the inner transport twice; the receive
//               side deduplicates on (type, from, to, interval, payload
//               width), which is a unique key for every legitimate protocol
//               message — the width (values per id) tells apart the
//               volume-, score-, and sketch-shaped kAggregates a regional
//               NOC sends to the root within one interval
//   reorder  -> the message is held back and released on the next receive
//               operation, after messages sent later — the interval
//               assemblers are order-insensitive within an interval, and
//               the flush-on-any-receive rule keeps the lock-step protocol
//               free of holds it could deadlock on
//
// Composes over any Transport (SimNetwork, TcpBus, TcpTransport) unchanged.
// Kill and reset events need daemon cooperation and are driven by the chaos
// harness (fault/chaos.hpp), not by this decorator.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/transport.hpp"

namespace spca {

/// What the decorator injected (and recovered from) so far.
struct FaultInjectionStats {
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  /// Extra send attempts the ARQ performed to mask drops/corruptions.
  std::uint64_t retransmits = 0;
  /// Duplicate messages removed on the receive side.
  std::uint64_t deduplicated = 0;
};

/// Thread-safe sink summing the stats of decorators that outlive their
/// creator's view of them (the chaos harness hands decorators to daemons
/// and collects the totals here when they are destroyed).
class FaultStatsAccumulator final {
 public:
  void add(const FaultInjectionStats& stats);
  [[nodiscard]] FaultInjectionStats total() const;

 private:
  mutable std::mutex mutex_;
  FaultInjectionStats total_;
};

/// The decorating transport. Thread-safe to the same degree as the inner
/// transport (all fault state is mutex-guarded).
class FaultyTransport final : public Transport {
 public:
  /// Wraps `inner` (not owned; must outlive the decorator) with the message
  /// faults of `plan`. Kill/reset events in the plan are ignored here. A
  /// non-null `sink` (not owned, must outlive the decorator) receives the
  /// final fault stats on destruction.
  FaultyTransport(Transport& inner, const FaultPlanConfig& plan,
                  FaultStatsAccumulator* sink = nullptr);
  ~FaultyTransport() override;

  // Transport interface. send() runs the fault pipeline; the receive
  // operations first release held (reordered) messages into the inner
  // transport, then delegate and deduplicate.
  void send(const Message& msg) override;
  [[nodiscard]] std::vector<Message> drain(NodeId node) override;
  [[nodiscard]] std::vector<Message> take(NodeId node,
                                          MessageType type) override;
  [[nodiscard]] bool has_mail(NodeId node) const override;
  bool wait_for_mail(NodeId node, std::chrono::milliseconds timeout) override;
  [[nodiscard]] const NetworkStats& stats() const noexcept override {
    return inner_.stats();
  }
  void reset_stats() noexcept override { inner_.reset_stats(); }

  [[nodiscard]] FaultInjectionStats fault_stats() const;

 private:
  /// Releases every held message into the inner transport (FIFO).
  void flush_held() const;
  /// Removes messages whose (type, from, to, interval, width) key was
  /// delivered before.
  std::vector<Message> deduplicate(std::vector<Message> messages) const;

  Transport& inner_;
  mutable std::mutex mutex_;
  mutable FaultPlan plan_;
  mutable std::vector<Message> held_;
  using DedupKey =
      std::tuple<std::uint8_t, NodeId, NodeId, std::int64_t, std::size_t>;
  mutable std::set<DedupKey> delivered_;
  mutable FaultInjectionStats fault_stats_;
  FaultStatsAccumulator* sink_;
};

}  // namespace spca
