// Chaos harness: runs a full deployment (NOC + monitors) through a scripted
// fault schedule and checks the invariant the whole subsystem exists to
// uphold — the faulted trajectory is bit-identical to the fault-free
// SimNetwork reference.
//
// Two modes:
//
//   sim  -> the synchronous single-process deployment over a FaultyTransport
//           wrapping SimNetwork. Exercises the message faults (drop /
//           corrupt / dup / reorder) and their recovery machinery without
//           sockets or threads. Kill/reset events need daemons and are
//           rejected here.
//
//   tcp  -> the real daemons on loopback TCP, one thread per process body.
//           Every endpoint's Message traffic runs through its own
//           FaultyTransport; scheduled connection resets flap a monitor's
//           NOC link at a protocol-quiet point; scheduled kills stop a
//           monitor daemon mid-run and restart a fresh incarnation from its
//           durable checkpoint (clean kill: restore the shutdown snapshot;
//           crash kill: restore the last periodic snapshot and absorb the
//           tail locally).
//
// The harness is deterministic end to end: same config -> same faults ->
// same trajectory, which is what lets CI assert `match` on seeded
// schedules.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/scenario.hpp"
#include "net/socket.hpp"

namespace spca {

/// One chaos experiment.
struct ChaosConfig {
  NetScenarioConfig scenario;
  FaultPlanConfig faults;
  /// false = single-process SimNetwork mode; true = loopback TCP daemons.
  bool tcp = false;
  /// Regional NOCs between the monitors and the root (tcp mode; 0 = flat).
  /// In hierarchical mode kill events may target the regiond tier (spec
  /// form "kill=r<idx>@T"): the regional daemon winds down after relaying
  /// intervals < T and a fresh incarnation resumes from its SPCR snapshot
  /// on the same port, with the shard's monitors redialing transparently.
  /// Message faults wrap only the monitor endpoints here — an aggregate
  /// carries both protocol phases on one message type, so the flat-mode
  /// receive-side dedup key is not unique on the region -> root hop.
  std::size_t regions = 0;
  /// Durable snapshot directory (tcp mode; required when kills are
  /// scheduled). Should be empty or stale-free: leftover snapshots from
  /// another deployment are detected and skipped, but cost a warning.
  std::string checkpoint_dir;
  /// Periodic snapshot cadence in intervals (tcp mode).
  std::int64_t checkpoint_every = 6;
  /// true = kills leave no shutdown snapshot (as a SIGKILL would), so the
  /// restarted monitor restores the last periodic snapshot and absorbs the
  /// tail; false = clean kills whose shutdown snapshot resumes exactly.
  bool crash_kills = false;
  /// Dial/backoff policy of the monitor daemons (tcp mode).
  RetryPolicy retry;
  std::chrono::milliseconds io_timeout{20000};
  std::chrono::milliseconds interval_deadline{60000};
};

/// What the experiment did and whether the invariant held.
struct ChaosResult {
  /// Fault-free SimNetwork trajectory.
  ScenarioRun reference;
  /// Trajectory of the faulted deployment.
  ScenarioRun run;
  /// True iff run and reference agree bit-for-bit (distances and alarms).
  bool match = false;
  /// Message faults injected (and recovered from) across all endpoints.
  FaultInjectionStats faults;
  /// Node-level events performed.
  std::uint64_t kills = 0;
  std::uint64_t resets = 0;
  /// Monitor-side connection re-establishments (covers the resets).
  std::uint64_t monitor_reconnects = 0;
  /// True iff every killed monitor's second incarnation actually restored
  /// a checkpoint snapshot (instead of falling back to a full rebuild).
  bool restored_from_checkpoint = true;
};

/// Bit-exact trajectory comparison (distances and alarm intervals; wire
/// stats are excluded — retransmits legitimately change byte counts).
[[nodiscard]] bool trajectories_match(const ScenarioRun& a,
                                      const ScenarioRun& b);

/// Runs the experiment. Throws InputError on an infeasible config (kill or
/// reset events aimed at unknown monitors or out-of-range intervals, kills
/// without a checkpoint_dir, node events in sim mode) and TransportError if
/// the faulted deployment wedges past its deadlines.
[[nodiscard]] ChaosResult run_chaos(const ChaosConfig& config);

}  // namespace spca
