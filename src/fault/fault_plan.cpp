#include "fault/fault_plan.hpp"

#include <charconv>
#include <sstream>

#include "common/error.hpp"
#include "dist/aggregate.hpp"

namespace spca {

namespace {

/// Uniform double in [0, 1) from one generator step.
double next_unit(SplitMix64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& key, const std::string& value) {
  double out = 0.0;
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    throw InputError("fault spec: " + key + " expects a number, got '" +
                     value + "'");
  }
  if (out < 0.0 || out > 0.9) {
    throw InputError("fault spec: " + key + " must be in [0, 0.9], got '" +
                     value + "'");
  }
  return out;
}

FaultEvent parse_event(const std::string& key, const std::string& value) {
  const std::size_t at = value.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= value.size()) {
    throw InputError("fault spec: " + key + " expects NODE@INTERVAL, got '" +
                     value + "'");
  }
  FaultEvent event;
  // "r<idx>" addresses a regional NOC of the hierarchical deployment; a
  // bare number is a monitor (or 0, the NOC itself — chaos validates which
  // event kinds support it).
  const bool regional = value.front() == 'r';
  const char* node_first = value.data() + (regional ? 1 : 0);
  const char* node_last = value.data() + at;
  auto [np, nec] = std::from_chars(node_first, node_last, event.node);
  if (regional && nec == std::errc{}) {
    event.node = region_node_id(event.node);
  }
  const char* t_first = value.data() + at + 1;
  const char* t_last = value.data() + value.size();
  auto [tp, tec] = std::from_chars(t_first, t_last, event.interval);
  if (nec != std::errc{} || np != node_last || tec != std::errc{} ||
      tp != t_last || event.interval < 0) {
    throw InputError("fault spec: " + key +
                     " expects NODE@INTERVAL (NODE = id or r<region>), "
                     "got '" + value + "'");
  }
  return event;
}

/// Renders a node back in spec form ("r<idx>" for regional NOCs).
std::string node_spec(NodeId node) {
  return is_region_node(node) ? "r" + std::to_string(region_index(node))
                              : std::to_string(node);
}

}  // namespace

FaultPlanConfig parse_fault_spec(const std::string& spec) {
  FaultPlanConfig config;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InputError("fault spec: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") {
      config.drop = parse_probability(key, value);
    } else if (key == "dup") {
      config.duplicate = parse_probability(key, value);
    } else if (key == "reorder") {
      config.reorder = parse_probability(key, value);
    } else if (key == "corrupt") {
      config.corrupt = parse_probability(key, value);
    } else if (key == "seed") {
      std::uint64_t seed = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), seed);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        throw InputError("fault spec: seed expects an integer, got '" + value +
                         "'");
      }
      config.seed = seed;
    } else if (key == "kill") {
      config.kills.push_back(parse_event(key, value));
    } else if (key == "reset") {
      config.resets.push_back(parse_event(key, value));
    } else {
      throw InputError("fault spec: unknown key '" + key + "'");
    }
  }
  return config;
}

std::string to_string(const FaultPlanConfig& config) {
  std::ostringstream oss;
  oss << "drop=" << config.drop << ",dup=" << config.duplicate
      << ",reorder=" << config.reorder << ",corrupt=" << config.corrupt;
  for (const FaultEvent& e : config.kills) {
    oss << ",kill=" << node_spec(e.node) << '@' << e.interval;
  }
  for (const FaultEvent& e : config.resets) {
    oss << ",reset=" << node_spec(e.node) << '@' << e.interval;
  }
  oss << ",seed=" << config.seed;
  return oss.str();
}

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)),
      drop_rng_(splitmix64_mix(config_.seed ^ 0x64726f70ULL)),      // "drop"
      duplicate_rng_(splitmix64_mix(config_.seed ^ 0x647570ULL)),   // "dup"
      reorder_rng_(splitmix64_mix(config_.seed ^ 0x72656f72ULL)),   // "reor"
      corrupt_rng_(splitmix64_mix(config_.seed ^ 0x636f7272ULL)) {  // "corr"
}

bool FaultPlan::next_drop() {
  return next_unit(drop_rng_) < config_.drop;
}

bool FaultPlan::next_duplicate() {
  return next_unit(duplicate_rng_) < config_.duplicate;
}

bool FaultPlan::next_reorder() {
  return next_unit(reorder_rng_) < config_.reorder;
}

bool FaultPlan::next_corrupt() {
  return next_unit(corrupt_rng_) < config_.corrupt;
}

std::optional<std::int64_t> FaultPlan::kill_interval(NodeId node) const {
  for (const FaultEvent& e : config_.kills) {
    if (e.node == node) return e.interval;
  }
  return std::nullopt;
}

bool FaultPlan::reset_scheduled(NodeId node, std::int64_t interval) const {
  for (const FaultEvent& e : config_.resets) {
    if (e.node == node && e.interval == interval) return true;
  }
  return false;
}

}  // namespace spca
