#include "fault/faulty_transport.hpp"

#include "obs/metrics.hpp"

namespace spca {

namespace {

Counter& fault_counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

}  // namespace

void FaultStatsAccumulator::add(const FaultInjectionStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_.drops += stats.drops;
  total_.corruptions += stats.corruptions;
  total_.duplicates += stats.duplicates;
  total_.reorders += stats.reorders;
  total_.retransmits += stats.retransmits;
  total_.deduplicated += stats.deduplicated;
}

FaultInjectionStats FaultStatsAccumulator::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlanConfig& plan,
                                 FaultStatsAccumulator* sink)
    : inner_(inner), plan_(plan), sink_(sink) {}

FaultyTransport::~FaultyTransport() {
  if (sink_ != nullptr) sink_->add(fault_stats_);
}

void FaultyTransport::send(const Message& msg) {
  static Counter& drops = fault_counter("spca.fault.injected_drops");
  static Counter& corruptions = fault_counter("spca.fault.injected_corruptions");
  static Counter& duplicates = fault_counter("spca.fault.injected_duplicates");
  static Counter& reorders = fault_counter("spca.fault.injected_reorders");
  static Counter& retransmits = fault_counter("spca.fault.retransmits");

  std::lock_guard<std::mutex> lock(mutex_);
  // ARQ: a dropped attempt never reaches the inner transport; a corrupted
  // attempt is always detected (the frame CRC catches any byte flip) and
  // behaves the same. Either way the sender retries — the loop terminates
  // with probability 1 because the per-attempt fault probabilities are
  // capped at 0.9.
  for (;;) {
    if (plan_.next_drop()) {
      ++fault_stats_.drops;
      ++fault_stats_.retransmits;
      drops.inc();
      retransmits.inc();
      continue;
    }
    if (plan_.next_corrupt()) {
      ++fault_stats_.corruptions;
      ++fault_stats_.retransmits;
      corruptions.inc();
      retransmits.inc();
      continue;
    }
    break;
  }

  const int copies = plan_.next_duplicate() ? 2 : 1;
  if (copies == 2) {
    ++fault_stats_.duplicates;
    duplicates.inc();
  }
  for (int c = 0; c < copies; ++c) {
    if (plan_.next_reorder()) {
      ++fault_stats_.reorders;
      reorders.inc();
      held_.push_back(msg);
    } else {
      inner_.send(msg);
    }
  }
}

void FaultyTransport::flush_held() const {
  for (const Message& msg : held_) inner_.send(msg);
  held_.clear();
}

std::vector<Message> FaultyTransport::deduplicate(
    std::vector<Message> messages) const {
  static Counter& deduplicated = fault_counter("spca.fault.deduplicated");
  std::vector<Message> out;
  out.reserve(messages.size());
  for (Message& msg : messages) {
    const std::size_t width =
        msg.ids.empty() ? 0 : msg.values.size() / msg.ids.size();
    const DedupKey key{static_cast<std::uint8_t>(msg.type), msg.from, msg.to,
                       msg.interval, width};
    if (delivered_.insert(key).second) {
      out.push_back(std::move(msg));
    } else {
      ++fault_stats_.deduplicated;
      deduplicated.inc();
    }
  }
  return out;
}

std::vector<Message> FaultyTransport::drain(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_held();
  return deduplicate(inner_.drain(node));
}

std::vector<Message> FaultyTransport::take(NodeId node, MessageType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_held();
  return deduplicate(inner_.take(node, type));
}

bool FaultyTransport::has_mail(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_held();
  return inner_.has_mail(node);
}

bool FaultyTransport::wait_for_mail(NodeId node,
                                    std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_held();
  return inner_.wait_for_mail(node, timeout);
}

FaultInjectionStats FaultyTransport::fault_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_stats_;
}

}  // namespace spca
