// Seeded, scriptable fault schedule — the single source of randomness of
// the fault-injection subsystem.
//
// A plan is built from a compact spec string such as
//
//   "drop=0.05,dup=0.02,reorder=0.1,corrupt=0.03,kill=1@18,reset=2@9,seed=42"
//
// and drives every decision from dedicated SplitMix64 streams derived from
// the seed, so a chaos run is exactly replayable: the same spec produces
// the same faults in the same order, which is what lets CI assert the final
// trajectory bit-for-bit against the fault-free reference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "rand/splitmix64.hpp"

namespace spca {

/// One scheduled node-level event (a monitor or regional-NOC kill, or a
/// connection reset).
struct FaultEvent {
  /// NodeId the event hits: a monitor (1..k), the NOC (0, clean kills
  /// only), or a regional NOC (spec form "r<idx>"; hierarchical mode).
  NodeId node = 0;
  /// Interval at which it fires (kill: after reporting intervals < t;
  /// reset: right after the monitor received kAdvance(t), a protocol-quiet
  /// point where no frame is in flight towards it).
  std::int64_t interval = 0;
};

/// Parsed fault schedule.
struct FaultPlanConfig {
  /// Per-send probabilities in [0, 0.9]: message dropped (retransmitted),
  /// duplicated, held back (reordered), or corrupted in flight (detected by
  /// the frame CRC and retransmitted).
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  /// Seed of the decision streams.
  std::uint64_t seed = 1;
  /// Scheduled monitor kills (the daemon exits after the given interval and
  /// a fresh incarnation restarts from its checkpoint).
  std::vector<FaultEvent> kills;
  /// Scheduled connection resets.
  std::vector<FaultEvent> resets;
};

/// Parses a spec string ("drop=0.05,dup=0.02,reorder=0.1,corrupt=0.03,
/// kill=NODE@T,reset=NODE@T,seed=42"; kill/reset repeatable, every key
/// optional, empty spec = no faults). Throws InputError on malformed input
/// or probabilities outside [0, 0.9] (the cap keeps the retransmit loops
/// finitely biased).
[[nodiscard]] FaultPlanConfig parse_fault_spec(const std::string& spec);

/// Renders a config back into spec-string form (round-trips through
/// parse_fault_spec; used by spca_chaos logging).
[[nodiscard]] std::string to_string(const FaultPlanConfig& config);

/// The live decision engine. Each fault kind draws from its own SplitMix64
/// stream, so e.g. enabling duplication does not shift the drop sequence —
/// schedules stay comparable across spec changes.
class FaultPlan final {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  [[nodiscard]] const FaultPlanConfig& config() const noexcept {
    return config_;
  }

  /// Next decision of each stream; every call advances that stream once.
  [[nodiscard]] bool next_drop();
  [[nodiscard]] bool next_duplicate();
  [[nodiscard]] bool next_reorder();
  [[nodiscard]] bool next_corrupt();

  /// The interval at which `node` is scheduled to be killed, if any.
  [[nodiscard]] std::optional<std::int64_t> kill_interval(NodeId node) const;

  /// True if a connection reset is scheduled for `node` at `interval`.
  [[nodiscard]] bool reset_scheduled(NodeId node,
                                     std::int64_t interval) const;

 private:
  FaultPlanConfig config_;
  SplitMix64 drop_rng_;
  SplitMix64 duplicate_rng_;
  SplitMix64 reorder_rng_;
  SplitMix64 corrupt_rng_;
};

}  // namespace spca
