#include "fault/chaos.hpp"

#include <atomic>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "dist/aggregate.hpp"
#include "dist/sim_network.hpp"
#include "hier/regional_daemon.hpp"
#include "net/monitor_daemon.hpp"
#include "net/noc_daemon.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

std::optional<std::int64_t> kill_of(const FaultPlanConfig& faults,
                                    NodeId node) {
  std::optional<std::int64_t> found;
  for (const FaultEvent& e : faults.kills) {
    if (e.node != node) continue;
    if (found) {
      throw InputError("chaos: multiple kills scheduled for node " +
                       std::to_string(node));
    }
    found = e.interval;
  }
  return found;
}

bool reset_at(const FaultPlanConfig& faults, NodeId node, std::int64_t t) {
  for (const FaultEvent& e : faults.resets) {
    if (e.node == node && e.interval == t) return true;
  }
  return false;
}

void validate(const ChaosConfig& config) {
  const auto monitors = static_cast<NodeId>(config.scenario.monitors);
  const auto intervals = static_cast<std::int64_t>(config.scenario.intervals);
  const bool hier = config.regions > 0;
  if (hier && (!config.tcp || config.regions > config.scenario.monitors)) {
    throw InputError("chaos: hierarchical mode needs tcp daemons and "
                     "1 <= regions <= monitors");
  }
  const auto check_node = [&](const FaultEvent& e, const char* kind) {
    if (e.node < 1 || e.node > monitors) {
      throw InputError(std::string("chaos: ") + kind + " targets monitor " +
                       std::to_string(e.node) + ", deployment has " +
                       std::to_string(monitors));
    }
    if (e.interval >= intervals) {
      throw InputError(std::string("chaos: ") + kind + " at interval " +
                       std::to_string(e.interval) + ", scenario ends at " +
                       std::to_string(intervals));
    }
  };
  for (const FaultEvent& e : config.faults.kills) {
    if (e.node == kNocId) {
      // A NOC kill restarts the NOC daemon from its shutdown snapshot on
      // the same port; only clean kills are supported (a crash-killed NOC
      // cannot replay reports it never received from the monitors). In
      // hierarchical mode a root restart is not supported at all: the
      // regions do not re-send already-forwarded aggregates, so a reborn
      // root would wait forever for its next interval.
      if (hier) {
        throw InputError("chaos: root NOC kills are not supported in "
                         "hierarchical mode (kill the regiond tier instead)");
      }
      if (config.crash_kills) {
        throw InputError("chaos: NOC kills must be clean "
                         "(crash kills only apply to monitors)");
      }
      if (e.interval >= intervals) {
        throw InputError("chaos: NOC kill at interval " +
                         std::to_string(e.interval) + ", scenario ends at " +
                         std::to_string(intervals));
      }
    } else if (is_region_node(e.node)) {
      if (!hier || region_index(e.node) >= config.regions) {
        throw InputError("chaos: kill targets region " +
                         std::to_string(region_index(e.node)) +
                         ", deployment has " +
                         std::to_string(config.regions) + " regions");
      }
      if (e.interval >= intervals) {
        throw InputError("chaos: region kill at interval " +
                         std::to_string(e.interval) + ", scenario ends at " +
                         std::to_string(intervals));
      }
    } else {
      check_node(e, "kill");
    }
    if (e.interval < 1) {
      throw InputError("chaos: kill intervals must be >= 1");
    }
  }
  for (const FaultEvent& e : config.faults.resets) check_node(e, "reset");
  if (!config.tcp &&
      (!config.faults.kills.empty() || !config.faults.resets.empty())) {
    throw InputError("chaos: kill/reset events need the tcp mode "
                     "(sim mode has no daemons to restart)");
  }
  if (config.tcp && !config.faults.kills.empty() &&
      config.checkpoint_dir.empty()) {
    throw InputError("chaos: kills need --checkpoint-dir, the restarted "
                     "monitor must have a snapshot to recover from");
  }
}

}  // namespace

bool trajectories_match(const ScenarioRun& a, const ScenarioRun& b) {
  if (a.alarm_intervals != b.alarm_intervals) return false;
  if (a.fused_alarm_intervals != b.fused_alarm_intervals) return false;
  const auto doubles_match = [](const std::vector<double>& x,
                                const std::vector<double>& y) {
    if (x.size() != y.size()) return false;
    return x.empty() || std::memcmp(x.data(), y.data(),
                                    x.size() * sizeof(double)) == 0;
  };
  return doubles_match(a.distances, b.distances) &&
         doubles_match(a.fused_statistics, b.fused_statistics);
}

ChaosResult run_chaos(const ChaosConfig& config) {
  validate(config);
  const NetScenario scenario = build_scenario(config.scenario);

  ChaosResult result;
  result.reference = run_scenario_reference(scenario);

  FaultStatsAccumulator acc;
  if (!config.tcp) {
    // SimNetwork mode: one shared decorator carries every node's traffic.
    SimNetwork sim;
    {
      FaultyTransport faulty(sim, config.faults, &acc);
      result.run = run_scenario_reference(scenario, &faulty);
    }
  } else {
    Counter& kills_metric =
        MetricsRegistry::global().counter("spca.fault.injected_kills");
    Counter& resets_metric =
        MetricsRegistry::global().counter("spca.fault.injected_resets");

    const bool hier = config.regions > 0;
    const std::optional<std::int64_t> noc_kill =
        kill_of(config.faults, kNocId);

    NocDaemonConfig nc;
    nc.scenario = config.scenario;
    nc.regions = config.regions;
    nc.interval_deadline = config.interval_deadline;
    nc.io_timeout = config.io_timeout;
    // Every tier is fault-wrapped, including the region -> root hop: the
    // dedup key's payload-width element tells the volume-, score-, and
    // sketch-shaped kAggregates of one interval apart, so duplicates on
    // that hop are removed without swallowing a legitimate second phase.
    nc.wrap_transport = [&](Transport& inner) {
      return std::make_unique<FaultyTransport>(inner, config.faults, &acc);
    };
    if (noc_kill) {
      // First incarnation: checkpoints and stops after intervals < kill; its
      // shutdown snapshot seeds the second incarnation on the same port.
      nc.checkpoint_dir = config.checkpoint_dir;
      nc.checkpoint_every = config.checkpoint_every;
      nc.last_interval = *noc_kill;
    }
    auto nocd = std::make_unique<NocDaemon>(nc);
    nocd->start();
    const std::uint16_t port = nocd->bound_port();

    // The monitors must be able to stop whichever NOC incarnation is live
    // when they hit an error; a NOC kill swaps the daemon object mid-run.
    std::mutex noc_mutex;
    NocDaemon* active_noc = nocd.get();
    const auto stop_noc = [&] {
      const std::lock_guard<std::mutex> lock(noc_mutex);
      if (active_noc != nullptr) active_noc->request_stop();
    };
    const auto swap_active_noc = [&](NocDaemon* next) {
      const std::lock_guard<std::mutex> lock(noc_mutex);
      active_noc = next;
    };

    std::atomic<std::uint64_t> kills{0};
    std::atomic<std::uint64_t> resets{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<bool> all_restored{true};
    const std::size_t num_monitors = config.scenario.monitors;

    // The hierarchical tier, started before the monitors so the shard
    // ports are known. A killed region's thread runs two incarnations on
    // one port; the second resumes from the SPCR snapshot.
    std::vector<std::unique_ptr<RegionalDaemon>> tier;
    std::vector<std::uint16_t> region_ports(config.regions, port);
    std::vector<std::exception_ptr> region_errors(config.regions);
    std::vector<std::thread> region_threads;
    for (std::size_t r = 0; r < config.regions; ++r) {
      RegionalDaemonConfig rc;
      rc.scenario = config.scenario;
      rc.regions = config.regions;
      rc.region = r;
      rc.root_port = port;
      rc.retry = config.retry;
      rc.io_timeout = config.io_timeout;
      rc.interval_deadline = config.interval_deadline;
      rc.wrap_transport = [&](Transport& inner) {
        return std::make_unique<FaultyTransport>(inner, config.faults, &acc);
      };
      const std::optional<std::int64_t> kill =
          kill_of(config.faults, region_node_id(r));
      if (kill) {
        rc.checkpoint_dir = config.checkpoint_dir;
        rc.checkpoint_every = config.checkpoint_every;
        rc.last_interval = *kill;
        rc.final_checkpoint = !config.crash_kills;
      }
      tier.push_back(std::make_unique<RegionalDaemon>(rc));
      tier.back()->start();
      region_ports[r] = tier.back()->bound_port();
    }
    for (std::size_t r = 0; r < config.regions; ++r) {
      const std::optional<std::int64_t> kill =
          kill_of(config.faults, region_node_id(r));
      region_threads.emplace_back([&, r, kill] {
        try {
          (void)tier[r]->run();
          if (kill) {
            // Tear the first incarnation down (freeing its listen port),
            // then restart on the same port. The shard's monitors redial
            // with backoff and re-send their current interval.
            const std::uint16_t region_port = region_ports[r];
            tier[r].reset();
            kills.fetch_add(1, std::memory_order_relaxed);
            kills_metric.inc();
            log_info("chaos: killed region ", r, " at interval ", *kill);
            FlightRecorder::global().note(
                "kill", *kill,
                "region " + std::to_string(r) +
                    (config.crash_kills ? " (crash)" : " (clean)"));
            RegionalDaemonConfig rc;
            rc.scenario = config.scenario;
            rc.regions = config.regions;
            rc.region = r;
            rc.listen_port = region_port;
            rc.root_port = port;
            rc.retry = config.retry;
            rc.io_timeout = config.io_timeout;
            rc.interval_deadline = config.interval_deadline;
            rc.wrap_transport = [&](Transport& inner) {
              return std::make_unique<FaultyTransport>(inner, config.faults,
                                                       &acc);
            };
            rc.checkpoint_dir = config.checkpoint_dir;
            rc.checkpoint_every = config.checkpoint_every;
            RegionalDaemon second(rc);
            second.start();
            const RegionalDaemonResult res = second.run();
            if (!res.restored_from_checkpoint) {
              all_restored.store(false, std::memory_order_relaxed);
            }
          }
        } catch (...) {
          region_errors[r] = std::current_exception();
          stop_noc();
        }
      });
    }

    std::vector<std::exception_ptr> errors(num_monitors);
    std::vector<std::thread> threads;
    threads.reserve(num_monitors);
    for (std::size_t i = 0; i < num_monitors; ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      threads.emplace_back([&, id, i] {
        try {
          // In hierarchical mode the monitor dials its regional NOC; flat
          // deployments dial the root directly.
          const NodeId upstream =
              hier ? region_node_id(region_of_monitor(
                         num_monitors, config.regions, id))
                   : kNocId;
          MonitorDaemonConfig mc;
          mc.scenario = config.scenario;
          mc.monitor_id = id;
          mc.noc_port =
              hier ? region_ports[region_index(upstream)] : port;
          mc.upstream_id = upstream;
          mc.retry = config.retry;
          mc.io_timeout = config.io_timeout;
          mc.checkpoint_dir = config.checkpoint_dir;
          mc.checkpoint_every = config.checkpoint_every;
          mc.wrap_transport = [&](Transport& inner) {
            return std::make_unique<FaultyTransport>(inner, config.faults,
                                                     &acc);
          };
          mc.after_advance = [&, id, upstream](std::int64_t t,
                                               TcpTransport& tcp) {
            if (!reset_at(config.faults, id, t)) return;
            // Protocol-quiet point: advance(t) was consumed, nothing is in
            // flight towards this monitor — the flap loses no frames.
            tcp.reset_connection(upstream);
            tcp.ensure_connected(upstream);
            resets.fetch_add(1, std::memory_order_relaxed);
            resets_metric.inc();
            FlightRecorder::global().note(
                "reset", t, "monitor " + std::to_string(id));
          };
          const std::optional<std::int64_t> kill =
              kill_of(config.faults, id);
          if (kill) {
            // First incarnation: dies after reporting intervals < kill. A
            // crash kill leaves only the periodic snapshots behind.
            mc.last_interval = *kill;
            mc.final_checkpoint = !config.crash_kills;
            const MonitorDaemonResult first = MonitorDaemon(mc).run();
            reconnects.fetch_add(first.reconnects,
                                 std::memory_order_relaxed);
            kills.fetch_add(1, std::memory_order_relaxed);
            kills_metric.inc();
            log_info("chaos: killed monitor ", id, " at interval ", *kill);
            FlightRecorder::global().note(
                "kill", *kill,
                "monitor " + std::to_string(id) +
                    (config.crash_kills ? " (crash)" : " (clean)"));
            // Second incarnation: recover from the checkpoint and rejoin.
            MonitorDaemonConfig rc = mc;
            rc.last_interval = -1;
            rc.final_checkpoint = true;
            rc.first_interval = config.crash_kills ? *kill : kAutoInterval;
            const MonitorDaemonResult second = MonitorDaemon(rc).run();
            reconnects.fetch_add(second.reconnects,
                                 std::memory_order_relaxed);
            if (!second.restored_from_checkpoint) {
              all_restored.store(false, std::memory_order_relaxed);
            }
          } else {
            const MonitorDaemonResult r = MonitorDaemon(mc).run();
            reconnects.fetch_add(r.reconnects, std::memory_order_relaxed);
          }
        } catch (...) {
          errors[i] = std::current_exception();
          stop_noc();
        }
      });
    }

    std::exception_ptr noc_error;
    std::unique_ptr<NocDaemon> second;
    try {
      result.run = nocd->run();
      if (noc_kill) {
        // Clean NOC kill: tear the daemon down (freeing the listen port),
        // then restart it from the shutdown snapshot. The monitors block in
        // their wait-for-advance loop meanwhile and re-send the pending
        // report once the link comes back.
        swap_active_noc(nullptr);
        nocd.reset();
        kills.fetch_add(1, std::memory_order_relaxed);
        kills_metric.inc();
        log_info("chaos: killed NOC at interval ", *noc_kill);
        FlightRecorder::global().note("kill", *noc_kill, "noc (clean)");
        NocDaemonConfig rc = nc;
        rc.listen_port = port;
        rc.last_interval = -1;
        second = std::make_unique<NocDaemon>(rc);
        swap_active_noc(second.get());
        second->start();
        const ScenarioRun rest = second->run();
        swap_active_noc(nullptr);
        if (!second->restored_from_checkpoint()) {
          all_restored.store(false, std::memory_order_relaxed);
        }
        // Stitch the incarnations into one trajectory: the first covers
        // the post-warm-up intervals < kill, the second the remainder.
        result.run.alarm_intervals.insert(result.run.alarm_intervals.end(),
                                          rest.alarm_intervals.begin(),
                                          rest.alarm_intervals.end());
        result.run.distances.insert(result.run.distances.end(),
                                    rest.distances.begin(),
                                    rest.distances.end());
        result.run.fused_alarm_intervals.insert(
            result.run.fused_alarm_intervals.end(),
            rest.fused_alarm_intervals.begin(),
            rest.fused_alarm_intervals.end());
        result.run.fused_statistics.insert(result.run.fused_statistics.end(),
                                           rest.fused_statistics.begin(),
                                           rest.fused_statistics.end());
        result.run.stats += rest.stats;
      }
    } catch (...) {
      noc_error = std::current_exception();
      stop_noc();
    }
    for (std::thread& t : threads) t.join();
    for (std::thread& t : region_threads) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    for (const std::exception_ptr& e : region_errors) {
      if (e) std::rethrow_exception(e);
    }
    if (noc_error) std::rethrow_exception(noc_error);

    result.kills = kills.load(std::memory_order_relaxed);
    result.resets = resets.load(std::memory_order_relaxed);
    result.monitor_reconnects = reconnects.load(std::memory_order_relaxed);
    result.restored_from_checkpoint =
        all_restored.load(std::memory_order_relaxed);
  }

  result.faults = acc.total();
  result.match = trajectories_match(result.run, result.reference);
  log_info("chaos: ", result.match ? "MATCH" : "MISMATCH", " (",
           result.faults.drops, " drops, ", result.faults.corruptions,
           " corruptions, ", result.faults.duplicates, " dups, ",
           result.faults.reorders, " reorders, ", result.kills, " kills, ",
           result.resets, " resets)");
  return result;
}

}  // namespace spca
