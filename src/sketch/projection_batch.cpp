#include "sketch/projection_batch.hpp"

#include <atomic>

#include "rand/projection_prf.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace spca {

namespace {

std::atomic<bool> g_force_scalar{false};

}  // namespace

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

void force_scalar_projection_kernel(bool force) noexcept {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool projection_kernel_uses_avx2() noexcept {
  return cpu_supports_avx2() && !g_force_scalar.load(std::memory_order_relaxed);
}

namespace detail {

void fill_tow_payload_scalar(std::uint64_t seed, std::int64_t t, double volume,
                             std::size_t l, double* payload) noexcept {
  const std::uint64_t base = projection_prf_base(seed, t);
  for (std::size_t k = 0; k < l; ++k) {
    const std::uint64_t h = projection_prf_finish(base, k, 0);
    const double r = (h & 1ULL) ? 1.0 : -1.0;
    payload[k] = volume * r;
    payload[l + k] = r;
  }
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) static inline __m256i mullo_epi64(
    __m256i a, __m256i b) noexcept {
  // AVX2 has no 64-bit multiply; compose it from 32x32->64 products:
  //   lo(a*b) = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)
  // exactly modulo 2^64 — which is exactly what the scalar multiply does.
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) static inline __m256i splitmix_mix_epi64(
    __m256i x) noexcept {
  // splitmix64_mix, four lanes at once, bit-identical to the scalar mixer.
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
  x = mullo_epi64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
                  _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
  x = mullo_epi64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
                  _mm256_set1_epi64x(0x94d049bb133111ebULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void fill_tow_payload_avx2(
    std::uint64_t seed, std::int64_t t, double volume, std::size_t l,
    double* payload) noexcept {
  const std::uint64_t base = projection_prf_base(seed, t);
  const __m256i base_v = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i one_bit = _mm256_set1_epi64x(1);
  const __m256d plus_one = _mm256_set1_pd(1.0);
  const __m256d minus_one = _mm256_set1_pd(-1.0);
  const __m256d vol = _mm256_set1_pd(volume);

  std::size_t k = 0;
  for (; k + 4 <= l; k += 4) {
    const __m256i kv = _mm256_set_epi64x(
        static_cast<long long>(k + 3), static_cast<long long>(k + 2),
        static_cast<long long>(k + 1), static_cast<long long>(k));
    // prf = mix(mix(base ^ k) ^ lane) with lane = 0.
    __m256i h = splitmix_mix_epi64(_mm256_xor_si256(base_v, kv));
    h = splitmix_mix_epi64(h);
    const __m256i bit = _mm256_and_si256(h, one_bit);
    const __m256d is_one =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(bit, one_bit));
    const __m256d sign = _mm256_blendv_pd(minus_one, plus_one, is_one);
    _mm256_storeu_pd(payload + k, _mm256_mul_pd(vol, sign));
    _mm256_storeu_pd(payload + l + k, sign);
  }
  for (; k < l; ++k) {
    const std::uint64_t h = projection_prf_finish(base, k, 0);
    const double r = (h & 1ULL) ? 1.0 : -1.0;
    payload[k] = volume * r;
    payload[l + k] = r;
  }
}

#endif  // defined(__x86_64__)

}  // namespace detail

void fill_tow_payload(std::uint64_t seed, std::int64_t t, double volume,
                      std::size_t l, double* payload) noexcept {
#if defined(__x86_64__)
  if (projection_kernel_uses_avx2()) {
    detail::fill_tow_payload_avx2(seed, t, volume, l, payload);
    return;
  }
#endif
  detail::fill_tow_payload_scalar(seed, t, volume, l, payload);
}

}  // namespace spca
