// Per-flow streaming sketch: the local-monitor data structure of Fig. 4.
//
// Combines the variance histogram (stream module) with the shared
// counter-based projection source (rand module). Each incoming traffic
// volume x_tj contributes, besides the (n, mu, V) statistics, the additive
// payload  Z_pk = sum x_ij r_ik  and  R_pk = sum r_ik  for k = 1..l
// (Fig. 3 Step 2). At any interval the monitor can emit the sketch vector
//
//   z-hat_kj = (Z_all,k - mu_all * R_all,k) / sqrt(l)          (eq. 17)
//
// which approximates the random projection of the *centered* traffic column
// within the sliding window (Lemma 4).
//
// Note on eq. (17): the paper prints Z - n*mu*R, but the quantity that
// approximates the centered projection sum_i (x_ij - mean_j) r_ik is
// Z - mean*R (each of the n terms subtracts mean once, and R already sums n
// coefficient values). We implement Z - mu*R; with the paper's extra factor
// n the sketch norm would be off by orders of magnitude and Lemma 4 could
// not hold. DESIGN.md records this as a presumed typo.
#pragma once

#include <cstdint>
#include <span>

#include "linalg/vector.hpp"
#include "rand/projection_source.hpp"
#include "stream/variance_histogram.hpp"

namespace spca {

/// One pre-aggregated interval update, the unit of FlowSketch::add_batch.
struct SketchUpdate {
  /// Interval timestamp (strictly increasing across a batch).
  std::int64_t t = 0;
  /// Aggregated traffic volume of the flow in that interval.
  double volume = 0.0;
};

/// Streaming sketch of one aggregated flow over a sliding window.
class FlowSketch final {
 public:
  /// `window` = sliding-window length n, `epsilon` = VH approximation
  /// parameter, `sketch_rows` = l, `projection` = the shared coefficient
  /// source (copied; two monitors constructing from equal sources stay in
  /// sync by construction).
  FlowSketch(std::uint64_t window, double epsilon, std::size_t sketch_rows,
             const ProjectionSource& projection);

  /// Reconstructs a sketch from exported histogram state (checkpoint
  /// restore); `projection` must be parameter-identical to the one used
  /// when the state was saved or subsequent updates will be incoherent.
  [[nodiscard]] static FlowSketch from_state(
      std::uint64_t window, double epsilon, std::size_t sketch_rows,
      const ProjectionSource& projection, std::vector<VhBucket> buckets,
      std::int64_t now);

  /// The underlying histogram (exposed for checkpointing and tests).
  [[nodiscard]] const VarianceHistogram& histogram() const noexcept {
    return histogram_;
  }

  /// Feeds the traffic volume of this flow for interval `t` (strictly
  /// increasing across calls).
  void add(std::int64_t t, double volume);

  /// Feeds a block of interval updates (timestamps strictly increasing
  /// within the batch and relative to earlier calls). Bit-identical to
  /// calling add() once per element at every batch size; the tug-of-war
  /// payload blocks come from the batched SIMD kernel behind runtime CPU
  /// dispatch (sketch/projection_batch.hpp), which is exact integer/sign
  /// arithmetic and therefore cannot perturb the trajectory.
  void add_batch(std::span<const SketchUpdate> updates);

  /// Emits the length-l sketch vector z-hat of eq. (17).
  [[nodiscard]] Vector sketch() const;

  /// Allocation-free emission for per-interval hot paths: resizes `out` to l
  /// if needed and fills it with z-hat.
  void sketch_into(Vector& out) const;

  /// The (mean, count) pair a sketch report carries alongside z-hat.
  struct Report {
    double mean = 0.0;
    std::uint64_t count = 0;
  };

  /// One-pass emission of the full report block: fills `z` with z-hat and
  /// returns (mean, count) from the same bucket aggregate, instead of the
  /// three separate aggregate passes of sketch() + mean() + count().
  Report report_into(Vector& z) const;

  /// Mean traffic volume over the (approximated) window: the mu_all used by
  /// the NOC to center incoming measurement vectors.
  [[nodiscard]] double mean() const;

  /// Number of window elements currently summarized.
  [[nodiscard]] std::uint64_t count() const;

  /// The VH variance estimate V-hat (Lemma 1).
  [[nodiscard]] double variance_estimate() const;

  [[nodiscard]] std::size_t sketch_rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t window() const noexcept {
    return histogram_.window();
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return histogram_.bucket_count();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return histogram_.memory_bytes();
  }
  [[nodiscard]] const ProjectionSource& projection() const noexcept {
    return projection_;
  }

 private:
  std::size_t rows_;
  ProjectionSource projection_;
  VarianceHistogram histogram_;  // payload = [Z_1..Z_l, R_1..R_l]
  // Reused per-call buffers: these run once per flow per interval, so the
  // O(l) allocations would otherwise dominate small-flow monitors. The
  // mutable aggregate scratch makes the const readers (sketch/mean/count)
  // safe to call concurrently on *distinct* FlowSketch objects but NOT on a
  // shared one — which is the parallel layer's fan-out unit anyway.
  std::vector<double> payload_scratch_;
  mutable VhBucket aggregate_scratch_;
};

}  // namespace spca
