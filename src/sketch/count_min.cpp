#include "sketch/count_min.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/contracts.hpp"
#include "rand/splitmix64.hpp"

namespace spca {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed),
      counters_(width * depth, 0.0) {
  SPCA_EXPECTS(width >= 1);
  SPCA_EXPECTS(depth >= 1);
}

CountMinSketch CountMinSketch::with_accuracy(double eps, double delta,
                                             std::uint64_t seed) {
  SPCA_EXPECTS(eps > 0.0 && eps < 1.0);
  SPCA_EXPECTS(delta > 0.0 && delta < 1.0);
  const auto width = static_cast<std::size_t>(
      std::ceil(std::numbers::e / eps));
  const auto depth =
      static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<std::size_t>(depth, 1), seed);
}

std::size_t CountMinSketch::cell(std::size_t row, std::uint32_t key) const {
  // Per-row keyed hash: mix (seed, row, key).
  std::uint64_t h = splitmix64_mix(seed_ ^ (0x9e3779b9ULL * (row + 1)));
  h = splitmix64_mix(h ^ key);
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::add(std::uint32_t key, double weight) {
  SPCA_EXPECTS(weight >= 0.0);
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[cell(row, key)] += weight;
  }
  total_ += weight;
}

double CountMinSketch::estimate(std::uint32_t key) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[cell(row, key)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  SPCA_EXPECTS(width_ == other.width_ && depth_ == other.depth_);
  SPCA_EXPECTS(seed_ == other.seed_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

void CountMinSketch::reset() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  total_ = 0.0;
}

HeavyHitterTracker::HeavyHitterTracker(std::size_t capacity, double eps,
                                       double delta, std::uint64_t seed)
    : capacity_(capacity),
      sketch_(CountMinSketch::with_accuracy(eps, delta, seed)) {
  SPCA_EXPECTS(capacity >= 1);
  candidates_.reserve(capacity + 1);
}

void HeavyHitterTracker::add(std::uint32_t key, double weight) {
  sketch_.add(key, weight);
  // Maintain the candidate set: ensure the key is present, then evict the
  // weakest candidate if over capacity.
  if (std::find(candidates_.begin(), candidates_.end(), key) ==
      candidates_.end()) {
    candidates_.push_back(key);
    if (candidates_.size() > capacity_) {
      auto weakest = candidates_.begin();
      double weakest_estimate = sketch_.estimate(*weakest);
      for (auto it = candidates_.begin() + 1; it != candidates_.end(); ++it) {
        const double e = sketch_.estimate(*it);
        if (e < weakest_estimate) {
          weakest_estimate = e;
          weakest = it;
        }
      }
      candidates_.erase(weakest);
    }
  }
}

std::vector<HeavyHitter> HeavyHitterTracker::hitters(double fraction) const {
  SPCA_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  std::vector<HeavyHitter> out;
  const double bar = fraction * sketch_.total();
  for (const std::uint32_t key : candidates_) {
    const double estimate = sketch_.estimate(key);
    if (estimate >= bar) {
      out.push_back(HeavyHitter{key, estimate});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

std::vector<HeavyHitter> HeavyHitterTracker::top(std::size_t k) const {
  std::vector<HeavyHitter> out;
  out.reserve(candidates_.size());
  for (const std::uint32_t key : candidates_) {
    out.push_back(HeavyHitter{key, sketch_.estimate(key)});
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

void HeavyHitterTracker::reset() {
  sketch_.reset();
  candidates_.clear();
}

}  // namespace spca
