// Batched projection-payload kernels for the FlowSketch hot path.
//
// One sketch update contributes the payload block
//   payload[k]     = volume * r_{t,k}      (Z contribution, Fig. 3 Step 2)
//   payload[l + k] = r_{t,k}               (R contribution)
// for k = 0..l-1. For the tug-of-war scheme every r_{t,k} is ±1 derived
// from the keyed PRF, so the whole block is integer work plus a sign flip —
// ideal SIMD shape. This module provides a scalar kernel and an AVX2 kernel
// behind runtime CPU-feature dispatch; both produce bit-identical doubles
// (the PRF is exact integer arithmetic and ±1.0 * volume is an exact IEEE
// operation), so enabling SIMD can never change a trajectory.
//
// The non-tug-of-war schemes (Gaussian, sparse) involve transcendental
// transforms whose vectorization would not be bit-stable; they always take
// the scalar ProjectionSource::value path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spca {

/// True iff this build can run the AVX2 kernel on this CPU (compile-time
/// support and runtime CPUID probe).
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Forces the scalar kernel even where AVX2 is available (tests assert
/// bit-equality across the dispatch). Not thread-safe against concurrent
/// kernel invocations; flip it only around single-threaded test sections.
void force_scalar_projection_kernel(bool force) noexcept;

/// True iff the next kernel invocation will use AVX2.
[[nodiscard]] bool projection_kernel_uses_avx2() noexcept;

/// Fills the 2l-element payload block for one tug-of-war update: sign bits
/// come from projection_prf(seed, t, k, 0), exactly like
/// ProjectionSource::value on the kTugOfWar path.
void fill_tow_payload(std::uint64_t seed, std::int64_t t, double volume,
                      std::size_t l, double* payload) noexcept;

namespace detail {
/// The two kernels, exposed for the bit-equality tests.
void fill_tow_payload_scalar(std::uint64_t seed, std::int64_t t, double volume,
                             std::size_t l, double* payload) noexcept;
#if defined(__x86_64__)
void fill_tow_payload_avx2(std::uint64_t seed, std::int64_t t, double volume,
                           std::size_t l, double* payload) noexcept;
#endif
}  // namespace detail

}  // namespace spca
