#include "sketch/flow_sketch.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "sketch/projection_batch.hpp"

namespace spca {

namespace {

/// Fills the 2l payload block for one (t, volume) update: the batched kernel
/// for tug-of-war, the generic per-coefficient path otherwise. Both agree
/// bit for bit with ProjectionSource::value.
void fill_payload(const ProjectionSource& projection, std::int64_t t,
                  double volume, std::size_t l, double* payload) {
  if (projection.kind() == ProjectionKind::kTugOfWar) {
    fill_tow_payload(projection.seed(), t, volume, l, payload);
    return;
  }
  for (std::size_t k = 0; k < l; ++k) {
    const double r = projection.value(t, k);
    payload[k] = volume * r;   // Z contribution (Fig. 3 Step 2)
    payload[l + k] = r;        // R contribution
  }
}

}  // namespace

FlowSketch::FlowSketch(std::uint64_t window, double epsilon,
                       std::size_t sketch_rows,
                       const ProjectionSource& projection)
    : rows_(sketch_rows),
      projection_(projection),
      histogram_(window, epsilon, 2 * sketch_rows) {
  SPCA_EXPECTS(sketch_rows >= 1);
}

FlowSketch FlowSketch::from_state(std::uint64_t window, double epsilon,
                                  std::size_t sketch_rows,
                                  const ProjectionSource& projection,
                                  std::vector<VhBucket> buckets,
                                  std::int64_t now) {
  FlowSketch sketch(window, epsilon, sketch_rows, projection);
  sketch.histogram_ = VarianceHistogram::from_state(
      window, epsilon, 2 * sketch_rows, std::move(buckets), now);
  return sketch;
}

void FlowSketch::add(std::int64_t t, double volume) {
  // Resolved once per process; two relaxed atomic increments per update.
  static Counter& updates =
      MetricsRegistry::global().counter("spca.sketch.updates");
  static Counter& merges =
      MetricsRegistry::global().counter("spca.sketch.bucket_merges");

  payload_scratch_.resize(2 * rows_);  // no-op after the first call
  fill_payload(projection_, t, volume, rows_, payload_scratch_.data());
  const std::uint64_t merges_before = histogram_.merge_count();
  histogram_.add(t, volume, payload_scratch_);
  updates.inc();
  merges.inc(histogram_.merge_count() - merges_before);
}

void FlowSketch::add_batch(std::span<const SketchUpdate> batch) {
  static Counter& updates =
      MetricsRegistry::global().counter("spca.sketch.updates");
  static Counter& merges =
      MetricsRegistry::global().counter("spca.sketch.bucket_merges");
  static Counter& batches =
      MetricsRegistry::global().counter("spca.sketch.batches");

  if (batch.empty()) return;
  payload_scratch_.resize(2 * rows_);
  const std::uint64_t merges_before = histogram_.merge_count();
  for (const SketchUpdate& u : batch) {
    fill_payload(projection_, u.t, u.volume, rows_, payload_scratch_.data());
    histogram_.add(u.t, u.volume, payload_scratch_);
  }
  updates.inc(batch.size());
  batches.inc();
  merges.inc(histogram_.merge_count() - merges_before);
}

Vector FlowSketch::sketch() const {
  Vector z(rows_);
  sketch_into(z);
  return z;
}

void FlowSketch::sketch_into(Vector& out) const {
  (void)report_into(out);
}

FlowSketch::Report FlowSketch::report_into(Vector& z) const {
  histogram_.aggregate_into(aggregate_scratch_);
  const VhBucket& all = aggregate_scratch_;
  if (z.size() != rows_) z = Vector(rows_);
  if (all.count == 0) {
    for (std::size_t k = 0; k < rows_; ++k) z[k] = 0.0;
    return {};
  }
  const double inv_sqrt_l = 1.0 / std::sqrt(static_cast<double>(rows_));
  for (std::size_t k = 0; k < rows_; ++k) {
    const double z_all = all.payload[k];
    const double r_all = all.payload[rows_ + k];
    z[k] = inv_sqrt_l * (z_all - all.mean * r_all);  // eq. (17), see header
  }
  return {all.mean, all.count};
}

double FlowSketch::mean() const {
  histogram_.aggregate_into(aggregate_scratch_);
  return aggregate_scratch_.mean;
}

std::uint64_t FlowSketch::count() const {
  histogram_.aggregate_into(aggregate_scratch_);
  return aggregate_scratch_.count;
}

double FlowSketch::variance_estimate() const {
  return histogram_.variance_estimate();
}

}  // namespace spca
