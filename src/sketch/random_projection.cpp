#include "sketch/random_projection.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace spca {

Matrix project_columns(const Matrix& y, const ProjectionSource& projection,
                       std::int64_t t_first, std::size_t sketch_rows) {
  SPCA_EXPECTS(sketch_rows >= 1);
  const std::size_t n = y.rows();
  const std::size_t m = y.cols();
  Matrix z(sketch_rows, m);
  const double inv_sqrt_l = 1.0 / std::sqrt(static_cast<double>(sketch_rows));
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = y.row_span(i);
    const std::int64_t t = t_first + static_cast<std::int64_t>(i);
    for (std::size_t k = 0; k < sketch_rows; ++k) {
      const double r = projection.value(t, k);
      if (r == 0.0) continue;  // sparse schemes skip most rows
      for (std::size_t j = 0; j < m; ++j) {
        z(k, j) += r * row[j];
      }
    }
  }
  z *= inv_sqrt_l;
  return z;
}

Matrix projection_matrix(const ProjectionSource& projection,
                         std::int64_t t_first, std::size_t n,
                         std::size_t sketch_rows) {
  Matrix r(n, sketch_rows);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < sketch_rows; ++k) {
      r(i, k) = projection.value(t_first + static_cast<std::int64_t>(i), k);
    }
  }
  return r;
}

}  // namespace spca
