// Count-Min sketch and heavy-hitter tracking.
//
// The related work (Li et al., IMC'06 — ref [7]) couples PCA detection with
// sketch subspaces so operators can recover the IP addresses behind an
// anomaly. This module provides that capability for this library: monitors
// keep a tiny Count-Min sketch of per-address byte counts per interval;
// when the NOC flags an interval and the diagnosis step names culprit
// flows, the heavy hitters of those flows' sketches name the addresses.
//
// Standard guarantees (Cormode & Muthukrishnan): with width w = ceil(e/eps)
// and depth d = ceil(ln(1/delta)), the estimate overshoots the true count
// by at most eps * (total weight) with probability 1 - delta, and never
// undershoots.
#pragma once

#include <cstdint>
#include <vector>

namespace spca {

/// Count-Min sketch over 32-bit keys with double-valued weights.
class CountMinSketch final {
 public:
  /// Direct shape constructor: `width` counters per row, `depth` rows.
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  /// Accuracy-driven factory: overshoot <= eps * total with prob 1 - delta.
  [[nodiscard]] static CountMinSketch with_accuracy(double eps, double delta,
                                                    std::uint64_t seed);

  /// Adds `weight` to `key`'s count.
  void add(std::uint32_t key, double weight = 1.0);

  /// Point estimate of `key`'s count: never an underestimate, and an
  /// overestimate by at most eps * total() with probability 1 - delta.
  [[nodiscard]] double estimate(std::uint32_t key) const;

  /// Total weight added so far.
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Merges another sketch with identical shape and seed (e.g. combining
  /// intervals); throws ContractViolation on shape mismatch.
  void merge(const CountMinSketch& other);

  void reset();

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return counters_.capacity() * sizeof(double) + sizeof(*this);
  }

 private:
  [[nodiscard]] std::size_t cell(std::size_t row, std::uint32_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  double total_ = 0.0;
  std::vector<double> counters_;  // depth x width, row-major
};

/// One tracked heavy hitter.
struct HeavyHitter {
  std::uint32_t key = 0;
  /// Count-Min estimate of its weight (an overestimate).
  double estimate = 0.0;
};

/// Count-Min-backed heavy-hitter tracker: keeps the top-k candidate set
/// alongside the sketch so queries need no key enumeration.
class HeavyHitterTracker final {
 public:
  /// Tracks up to `capacity` candidates over a sketch of the given accuracy.
  HeavyHitterTracker(std::size_t capacity, double eps, double delta,
                     std::uint64_t seed);

  void add(std::uint32_t key, double weight = 1.0);

  /// Current candidates with estimated weight >= `fraction` of the total,
  /// sorted by descending estimate.
  [[nodiscard]] std::vector<HeavyHitter> hitters(double fraction) const;

  /// The top `k` candidates regardless of fraction.
  [[nodiscard]] std::vector<HeavyHitter> top(std::size_t k) const;

  [[nodiscard]] const CountMinSketch& sketch() const noexcept {
    return sketch_;
  }

  void reset();

 private:
  std::size_t capacity_;
  CountMinSketch sketch_;
  /// Candidate keys (small: the capacity bounds it).
  std::vector<std::uint32_t> candidates_;
};

}  // namespace spca
