// Exact (non-streaming) random projection Z = R^T Y / sqrt(l) — eq. (24).
//
// This is the quantity the streaming FlowSketch approximates; it is used by
// tests to verify Lemma 4 (|z-hat|^2 close to |z|^2) and by the ablation
// bench comparing projection schemes. The coefficient r_ik for the row of Y
// observed at time t comes from the same ProjectionSource the monitors use.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "rand/projection_source.hpp"

namespace spca {

/// Projects the columns of `y` with the coefficients of `projection`.
///
/// Row i of `y` is taken to be the measurement of time `t_first + i`, so the
/// coefficient applied to it in sketch row k is projection.value(t_first+i,k).
/// Returns the l x m matrix with entries (1/sqrt(l)) sum_i y_ij r_ik.
[[nodiscard]] Matrix project_columns(const Matrix& y,
                                     const ProjectionSource& projection,
                                     std::int64_t t_first,
                                     std::size_t sketch_rows);

/// Materializes the l-column random matrix R for the time range
/// [t_first, t_first + n) — handy for tests of the distributional
/// properties (Lemmas 2 and 3).
[[nodiscard]] Matrix projection_matrix(const ProjectionSource& projection,
                                       std::int64_t t_first, std::size_t n,
                                       std::size_t sketch_rows);

}  // namespace spca
