// Detection-accuracy evaluation: Type I / Type II errors against a set of
// ground-truth labels, plus the paper's protocol of using the exact Lakhina
// detections as the "real" anomalies when scoring the sketch method
// (Sec. VI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "traffic/trace.hpp"

namespace spca {

/// Binary confusion counts over evaluated intervals.
struct ConfusionMatrix {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;

  void add(bool truth, bool predicted) noexcept;

  /// Type I error: false alarms / true normal observations (Sec. VI).
  [[nodiscard]] double type1_error() const noexcept;
  /// Type II error: missed anomalies / true anomalies (Sec. VI).
  [[nodiscard]] double type2_error() const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept;
};

/// The full per-interval output of one detector run over a trace.
struct DetectorRun {
  std::string detector_name;
  /// Verdicts, index-aligned with trace intervals.
  std::vector<Detection> detections;
  /// First interval with a ready verdict (end of warm-up).
  std::size_t first_ready = 0;
};

/// Streams `trace` through `detector` and collects every verdict.
[[nodiscard]] DetectorRun run_detector(Detector& detector,
                                       const TraceSet& trace);

/// Scores predicted alarms against boolean labels, restricted to intervals
/// >= `first_eval` where the run was ready.
[[nodiscard]] ConfusionMatrix score_against_labels(
    const DetectorRun& run, const std::vector<bool>& truth,
    std::size_t first_eval);

/// Scores one run against another run's alarms (the paper's protocol:
/// `reference` = exact Lakhina detections taken as ground truth).
[[nodiscard]] ConfusionMatrix score_against_reference(
    const DetectorRun& run, const DetectorRun& reference);

}  // namespace spca
