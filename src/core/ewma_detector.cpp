#include "core/ewma_detector.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace spca {

EwmaDetector::EwmaDetector(std::size_t dimensions, const EwmaConfig& config)
    : m_(dimensions),
      config_(config),
      mean_(dimensions, 0.0),
      variance_(dimensions, 0.0) {
  SPCA_EXPECTS(dimensions >= 1);
  SPCA_EXPECTS(config.smoothing > 0.0 && config.smoothing < 1.0);
  SPCA_EXPECTS(config.k_sigma > 0.0);
  SPCA_EXPECTS(config.warmup >= 2);
}

Detection EwmaDetector::observe(std::int64_t /*t*/, const Vector& x) {
  SPCA_EXPECTS(x.size() == m_);
  Detection det;
  const double a = config_.smoothing;

  if (observed_ == 0) {
    for (std::size_t j = 0; j < m_; ++j) mean_[j] = x[j];
    ++observed_;
    return det;
  }

  // Score against the state from *before* this interval, then update —
  // a per-flow detector has no subspace to poison, so predict-then-update
  // is both natural and standard for EWMA control charts.
  double worst_z = 0.0;
  std::size_t worst = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const double sigma = std::sqrt(variance_[j]);
    if (sigma > 0.0) {
      const double z = std::abs(x[j] - mean_[j]) / sigma;
      if (z > worst_z) {
        worst_z = z;
        worst = j;
      }
    }
    const double delta = x[j] - mean_[j];
    mean_[j] += a * delta;
    variance_[j] = (1.0 - a) * (variance_[j] + a * delta * delta);
  }
  ++observed_;

  if (observed_ <= config_.warmup) return det;
  det.ready = true;
  det.distance = worst_z;
  det.threshold = config_.k_sigma;
  det.alarm = worst_z > config_.k_sigma;
  worst_ = worst;
  return det;
}

}  // namespace spca
