#include "core/sketch_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "pca/q_statistic.hpp"

namespace spca {

SketchDetector::SketchDetector(std::size_t dimensions,
                               const SketchDetectorConfig& config)
    : m_(dimensions), config_(config), last_centered_(dimensions) {
  SPCA_EXPECTS(dimensions >= 2);
  SPCA_EXPECTS(config.window >= 2);
  SPCA_EXPECTS(config.sketch_rows >= 1);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
  const ProjectionSource source =
      config.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(config.seed, config.window)
          : ProjectionSource(config.projection, config.seed, config.sparsity);
  flows_.reserve(dimensions);
  for (std::size_t j = 0; j < dimensions; ++j) {
    // All flows share one coefficient source (same seed => same r_tk),
    // exactly as the distributed monitors do.
    flows_.emplace_back(config.window, config.epsilon, config.sketch_rows,
                        source);
  }
}

Detection SketchDetector::observe(std::int64_t t, const Vector& x) {
  SPCA_EXPECTS(x.size() == m_);
  for (std::size_t j = 0; j < m_; ++j) {
    flows_[j].add(t, x[j]);
  }
  ++observed_;

  Detection det;
  if (observed_ < config_.window) {
    return det;  // warm-up
  }

  if (!model_.fitted() || !config_.lazy) {
    refresh_model();
    det.model_refreshed = true;
  }

  det.ready = true;
  double distance = model_.anomaly_distance(x, rank_);
  bool alarm = distance * distance > threshold_squared_;
  if (alarm && config_.lazy && !det.model_refreshed) {
    // Sec. IV-C: the stale model flagged the vector. Pull fresh sketches,
    // recompute PCA and the threshold, and re-check before alarming.
    refresh_model();
    det.model_refreshed = true;
    distance = model_.anomaly_distance(x, rank_);
    alarm = distance * distance > threshold_squared_;
  }
  last_centered_ = model_.center(x);
  det.distance = distance;
  det.threshold = std::sqrt(threshold_squared_);
  det.alarm = alarm;
  det.normal_rank = rank_;
  return det;
}

Matrix SketchDetector::sketch_matrix() const {
  Matrix z(config_.sketch_rows, m_);
  for (std::size_t j = 0; j < m_; ++j) {
    z.set_col(j, flows_[j].sketch());
  }
  return z;
}

Vector SketchDetector::sketch_means() const {
  Vector mu(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    mu[j] = flows_[j].mean();
  }
  return mu;
}

void SketchDetector::refresh_model() {
  const Matrix z = sketch_matrix();
  // Effective sample count: what the histograms actually summarize.
  const std::uint64_t n_eff = std::max<std::uint64_t>(flows_[0].count(), 2);
  model_ = PcaModel::from_sketch(z, sketch_means(), n_eff);
  ++model_computations_;
  rank_ = config_.rank_policy.select(model_, z);
  threshold_squared_ = q_statistic_threshold_squared(
      model_.singular_values(), rank_, n_eff, config_.alpha);
}

Vector SketchDetector::distance_profile() const {
  SPCA_EXPECTS(model_.fitted());
  Vector profile(m_ - 1);
  double residual = norm_squared(last_centered_);
  for (std::size_t r = 1; r < m_; ++r) {
    double proj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      proj += model_.components()(i, r - 1) * last_centered_[i];
    }
    residual -= proj * proj;
    profile[r - 1] = std::sqrt(std::max(residual, 0.0));
  }
  return profile;
}

std::size_t SketchDetector::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& f : flows_) bytes += f.memory_bytes();
  return bytes;
}

}  // namespace spca
