#include "core/sketch_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "pca/q_statistic.hpp"

namespace spca {

SketchDetector::SketchDetector(std::size_t dimensions,
                               const SketchDetectorConfig& config)
    : m_(dimensions),
      config_(config),
      backend_(make_model_backend(config.backend, dimensions, config.window)),
      last_centered_(dimensions) {
  SPCA_EXPECTS(dimensions >= 2);
  SPCA_EXPECTS(config.window >= 2);
  SPCA_EXPECTS(config.sketch_rows >= 1);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
  const ProjectionSource source =
      config.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(config.seed, config.window)
          : ProjectionSource(config.projection, config.seed, config.sparsity);
  flows_.reserve(dimensions);
  for (std::size_t j = 0; j < dimensions; ++j) {
    // All flows share one coefficient source (same seed => same r_tk),
    // exactly as the distributed monitors do.
    flows_.emplace_back(config.window, config.epsilon, config.sketch_rows,
                        source);
  }
}

Detection SketchDetector::observe(std::int64_t t, const Vector& x) {
  static Histogram& observe_seconds =
      MetricsRegistry::global().histogram("spca.detector.observe_seconds");
  static Counter& alarms =
      MetricsRegistry::global().counter("spca.detector.alarms");
  static Counter& stale_passes =
      MetricsRegistry::global().counter("spca.detector.stale_passes");
  static Counter& lazy_pulls =
      MetricsRegistry::global().counter("spca.detector.lazy_pulls");
  static Counter& false_refreshes =
      MetricsRegistry::global().counter("spca.detector.false_refreshes");

  SPCA_EXPECTS(x.size() == m_);
  const ScopedTimer timer(observe_seconds);
  for (std::size_t j = 0; j < m_; ++j) {
    flows_[j].add(t, x[j]);
  }
  if (backend_->wants_rows()) backend_->absorb_row(x.span());
  ++observed_;

  Detection det;
  if (observed_ < config_.window) {
    return det;  // warm-up
  }

  if (!model_.fitted() || !config_.lazy) {
    refresh_model();
    det.model_refreshed = true;
  }

  det.ready = true;
  double distance = model_.anomaly_distance(x, rank_);
  bool alarm = distance * distance > threshold_squared_;
  if (alarm && config_.lazy && !det.model_refreshed) {
    // Sec. IV-C: the stale model flagged the vector. Pull fresh sketches,
    // recompute PCA and the threshold, and re-check before alarming.
    refresh_model();
    det.model_refreshed = true;
    lazy_pulls.inc();
    distance = model_.anomaly_distance(x, rank_);
    alarm = distance * distance > threshold_squared_;
    // A false refresh: the stale model's suspicion did not survive refit.
    if (!alarm) false_refreshes.inc();
  } else if (config_.lazy && !det.model_refreshed) {
    stale_passes.inc();
  }
  last_centered_ = model_.center(x);
  det.distance = distance;
  det.threshold = std::sqrt(threshold_squared_);
  det.alarm = alarm;
  det.normal_rank = rank_;
  if (alarm) alarms.inc();
  EventTrace::global().record({name(), t, distance * distance,
                               threshold_squared_, rank_, det.model_refreshed,
                               alarm});
  return det;
}

Matrix SketchDetector::sketch_matrix() const {
  Matrix z(config_.sketch_rows, m_);
  for (std::size_t j = 0; j < m_; ++j) {
    z.set_col(j, flows_[j].sketch());
  }
  return z;
}

Vector SketchDetector::sketch_means() const {
  Vector mu(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    mu[j] = flows_[j].mean();
  }
  return mu;
}

void SketchDetector::refresh_model() {
  static Histogram& assembly_seconds = MetricsRegistry::global().histogram(
      "spca.detector.sketch_assembly_seconds");
  static Histogram& svd_seconds =
      MetricsRegistry::global().histogram("spca.detector.svd_seconds");
  static Counter& refreshes =
      MetricsRegistry::global().counter("spca.detector.model_refreshes");
  static Gauge& memory_gauge =
      MetricsRegistry::global().gauge("spca.sketch.memory_bytes");

  Matrix z(0, 0);
  Vector means;
  {
    const ScopedTimer timer(assembly_seconds);
    z = sketch_matrix();
    means = sketch_means();
  }
  // Effective sample count: what the histograms actually summarize.
  const std::uint64_t n_eff = std::max<std::uint64_t>(flows_[0].count(), 2);
  {
    const ScopedTimer timer(svd_seconds);
    model_ = backend_->fit_rows(z, std::move(means), n_eff);
    // Truncated backends (rsvd/fd) only recover basis_cols genuine axes;
    // the normal subspace cannot extend past them.
    rank_ = std::min(config_.rank_policy.select(model_, z),
                     std::max<std::size_t>(model_.basis_cols(), 1));
    threshold_squared_ = q_statistic_threshold_squared(
        model_.singular_values(), rank_, n_eff, config_.alpha);
  }
  ++model_computations_;
  refreshes.inc();
  memory_gauge.set(static_cast<double>(memory_bytes()));
}

Vector SketchDetector::distance_profile() const {
  SPCA_EXPECTS(model_.fitted());
  Vector profile(m_ - 1);
  double residual = norm_squared(last_centered_);
  for (std::size_t r = 1; r < m_; ++r) {
    double proj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      proj += model_.components()(i, r - 1) * last_centered_[i];
    }
    residual -= proj * proj;
    profile[r - 1] = std::sqrt(std::max(residual, 0.0));
  }
  return profile;
}

std::size_t SketchDetector::memory_bytes() const noexcept {
  // Fixed-size detector state: the object itself, the retained last
  // centered vector, and the fitted model's heap allocations (spectrum,
  // m x m component basis, column means). These are O(m^2) and independent
  // of the window length n, so Theorem 1's O(w log n) summary-state bound
  // is unaffected — but the absolute number now matches what a deployment
  // actually holds in memory.
  std::size_t bytes = sizeof(*this);
  bytes += last_centered_.size() * sizeof(double);
  if (model_.fitted()) {
    bytes += model_.singular_values().size() * sizeof(double);
    bytes += model_.column_means().size() * sizeof(double);
    bytes += model_.components().rows() * model_.components().cols() *
             sizeof(double);
  }
  for (const auto& f : flows_) bytes += f.memory_bytes();
  return bytes;
}

}  // namespace spca
