// The paper's contribution: sketch-based streaming PCA anomaly detection
// (Sec. IV), single-process form. The dist module runs the same logic split
// across simulated monitors and a NOC; this class is the reference
// implementation and the one the evaluation benches sweep.
//
// Per interval, each flow's volume updates its FlowSketch (variance
// histogram + projection partial sums) in O(l) amortized time. Detection
// fits PCA to the l x m sketch matrix Z-hat instead of the n x m window:
// O(m^2 l) instead of O(m^2 n) (Theorem 1). In lazy mode (Sec. IV-C) the
// model is refreshed only when the distance under the stale model exceeds
// the stale threshold; an alarm is raised only if the refreshed model still
// flags the vector.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "pca/backend/model_backend.hpp"
#include "rand/projection_source.hpp"
#include "sketch/flow_sketch.hpp"

namespace spca {

/// Configuration of the sketch-based streaming detector.
struct SketchDetectorConfig {
  /// Sliding-window length n.
  std::size_t window = 2016;
  /// Variance-histogram approximation parameter (the paper uses 0.01).
  double epsilon = 0.01;
  /// Sketch length l (the paper sweeps 10..1000).
  std::size_t sketch_rows = 200;
  /// False-alarm rate of the Q-statistic threshold.
  double alpha = 0.01;
  /// Normal-subspace selection.
  RankPolicy rank_policy = RankPolicy::fixed(6);
  /// Projection coefficient distribution (Sec. V-B).
  ProjectionKind projection = ProjectionKind::kGaussian;
  /// Sparsity parameter s of the sparse schemes.
  double sparsity = 3.0;
  /// Seed of the shared coefficient source.
  std::uint64_t seed = 42;
  /// Lazy mode: refresh the PCA only when the stale model raises a hand.
  bool lazy = true;
  /// Model-fitting strategy (exact | warm | rsvd | fd) and its tuning knobs.
  ModelBackendConfig backend;
};

/// Sketch-based streaming PCA detector.
class SketchDetector final : public Detector {
 public:
  SketchDetector(std::size_t dimensions, const SketchDetectorConfig& config);

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "sketch-pca"; }

  [[nodiscard]] const SketchDetectorConfig& config() const noexcept {
    return config_;
  }

  /// The current sketch matrix Z-hat (l x m), assembled from all flows.
  [[nodiscard]] Matrix sketch_matrix() const;

  /// Current window means mu_all,j reported by the sketches.
  [[nodiscard]] Vector sketch_means() const;

  [[nodiscard]] const PcaModel& model() const noexcept { return model_; }
  [[nodiscard]] std::size_t normal_rank() const noexcept { return rank_; }

  /// The model-fitting strategy in use (for tests and checkpoint codecs).
  [[nodiscard]] const ModelBackend& backend() const noexcept {
    return *backend_;
  }

  /// Distances for all candidate ranks of the last observation (see
  /// LakhinaDetector::distance_profile).
  [[nodiscard]] Vector distance_profile() const;

  /// Number of PCA recomputations (sketch pulls in the distributed view).
  [[nodiscard]] std::uint64_t model_computations() const noexcept {
    return model_computations_;
  }

  /// Total bytes of detector state: every flow sketch's summary (the
  /// Theorem 1 O(w log n) part) plus the detector's fixed-size members —
  /// the fitted model and the retained last-centered vector. Mirrored into
  /// the `spca.sketch.memory_bytes` gauge on every model refresh.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Serializes the complete detector state — configuration, every flow's
  /// histogram buckets, the fitted model, and progress counters — so a
  /// restarted process can resume mid-window without re-observing weeks of
  /// traffic. The format is versioned; see sketch_detector_io.cpp.
  [[nodiscard]] std::vector<std::byte> save_state() const;

  /// Reconstructs a detector from `save_state` output. The restored
  /// detector continues the stream bit-for-bit identically to the original
  /// (see the checkpoint tests). Throws ProtocolError on a malformed or
  /// version-mismatched blob. When `expected_backend` is set, a blob
  /// written under a different model backend is rejected as ProtocolError:
  /// backend state is not interchangeable, and silently refitting cold
  /// would break the bit-identical-restore guarantee.
  [[nodiscard]] static SketchDetector restore_state(
      const std::vector<std::byte>& blob,
      std::optional<ModelBackendKind> expected_backend = std::nullopt);

  /// Intervals observed so far (warm-up progress).
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

 private:
  void refresh_model();

  std::size_t m_;
  SketchDetectorConfig config_;
  std::unique_ptr<ModelBackend> backend_;
  std::vector<FlowSketch> flows_;
  std::uint64_t observed_ = 0;
  PcaModel model_;
  std::size_t rank_ = 1;
  double threshold_squared_ = 0.0;
  std::uint64_t model_computations_ = 0;
  Vector last_centered_;
};

}  // namespace spca
