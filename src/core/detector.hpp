// Detector interface shared by the exact Lakhina baseline and the paper's
// sketch-based streaming detector.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "pca/pca_model.hpp"

namespace spca {

/// Verdict for one measurement interval.
struct Detection {
  /// True once the detector has a full window and produced a real verdict.
  bool ready = false;
  /// Alarm: anomaly distance exceeded the Q-statistic threshold.
  bool alarm = false;
  /// The SPE anomaly distance d(y*) of eq. (5)/(19).
  double distance = 0.0;
  /// The distance threshold (sqrt of the Q-statistic delta^2).
  double threshold = 0.0;
  /// Size r of the normal subspace used.
  std::size_t normal_rank = 0;
  /// True if this observation triggered a model recomputation (for the
  /// sketch detector: a sketch pull in lazy mode).
  bool model_refreshed = false;
};

/// How the size r of the normal subspace is chosen (Sec. IV-D).
struct RankPolicy {
  enum class Kind {
    kFixed,   ///< a fixed r (the paper's evaluation sweeps r = 1..10)
    kEnergy,  ///< smallest r capturing `energy_fraction` of spectral energy
    kKSigma,  ///< the 3-sigma heuristic on fitted projections
    kScree,   ///< Cattell's Scree test on the spectrum (Sec. IV-D)
  };
  Kind kind = Kind::kFixed;
  std::size_t fixed_rank = 6;
  double energy_fraction = 0.9;
  double ksigma_k = 3.0;
  double scree_knee = 0.1;

  [[nodiscard]] static RankPolicy fixed(std::size_t r) {
    return {Kind::kFixed, r, 0.9, 3.0, 0.1};
  }
  [[nodiscard]] static RankPolicy energy(double fraction) {
    return {Kind::kEnergy, 0, fraction, 3.0, 0.1};
  }
  [[nodiscard]] static RankPolicy ksigma_policy(double k) {
    return {Kind::kKSigma, 0, 0.9, k, 0.1};
  }
  [[nodiscard]] static RankPolicy scree(double knee_fraction) {
    return {Kind::kScree, 0, 0.9, 3.0, knee_fraction};
  }

  /// Applies the policy. `fitted_data` is the matrix the model was fitted
  /// on (needed by kKSigma; may be empty for the other kinds). The result
  /// is clamped to [1, m-1] so both subspaces are nonempty.
  [[nodiscard]] std::size_t select(const PcaModel& model,
                                   const Matrix& fitted_data) const;
};

/// A streaming network-wide anomaly detector: consumes one measurement
/// vector per interval and yields a verdict.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Feeds the measurement vector of interval `t` (strictly increasing) and
  /// returns the verdict for that interval.
  virtual Detection observe(std::int64_t t, const Vector& x) = 0;

  /// Human-readable identifier for result tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace spca
