#include "core/lakhina_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "pca/q_statistic.hpp"

namespace spca {

LakhinaDetector::LakhinaDetector(std::size_t dimensions,
                                 const LakhinaConfig& config)
    : m_(dimensions),
      config_(config),
      backend_(make_model_backend(config.backend, dimensions, config.window)),
      sum_(dimensions),
      gram_(dimensions, dimensions),
      last_centered_(dimensions) {
  SPCA_EXPECTS(dimensions >= 2);
  SPCA_EXPECTS(config.window >= 2);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
  SPCA_EXPECTS(config.recompute_period >= 1);
}

Detection LakhinaDetector::observe(std::int64_t t, const Vector& x) {
  static Histogram& observe_seconds =
      MetricsRegistry::global().histogram("spca.lakhina.observe_seconds");
  static Counter& alarms =
      MetricsRegistry::global().counter("spca.lakhina.alarms");

  SPCA_EXPECTS(x.size() == m_);
  const ScopedTimer timer(observe_seconds);
  if (backend_->wants_rows()) backend_->absorb_row(x.span());
  if (!shift_) shift_ = x;

  // Shifted copy keeps accumulator magnitudes small (see header).
  Vector v = x;
  v -= *shift_;

  window_.push_back(v);
  sum_ += v;
  for (std::size_t i = 0; i < m_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < m_; ++j) {
      gram_(i, j) += vi * v[j];
    }
  }
  if (window_.size() > config_.window) {
    const Vector& u = window_.front();
    sum_ -= u;
    for (std::size_t i = 0; i < m_; ++i) {
      const double ui = u[i];
      if (ui == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) {
        gram_(i, j) -= ui * u[j];
      }
    }
    window_.pop_front();
  }

  Detection det;
  if (window_.size() < config_.window) {
    return det;  // warm-up: no verdict yet
  }

  if (!model_ || ++since_recompute_ >= config_.recompute_period) {
    refresh_model();
    since_recompute_ = 0;
    det.model_refreshed = true;
  }

  last_centered_ = model_->center(x);
  det.ready = true;
  det.normal_rank = rank_;
  det.distance = model_->anomaly_distance(x, rank_);
  det.threshold = std::sqrt(threshold_squared_);
  det.alarm = det.distance * det.distance > threshold_squared_;
  if (det.alarm) alarms.inc();
  EventTrace::global().record({name(), t, det.distance * det.distance,
                               threshold_squared_, rank_, det.model_refreshed,
                               det.alarm});
  return det;
}

void LakhinaDetector::refresh_model() {
  static Histogram& eig_seconds =
      MetricsRegistry::global().histogram("spca.lakhina.eig_seconds");
  static Counter& refreshes =
      MetricsRegistry::global().counter("spca.lakhina.model_refreshes");
  const ScopedTimer timer(eig_seconds);
  refreshes.inc();

  const double n = static_cast<double>(window_.size());
  // Centered Gram: G = sum v v^T - n vbar vbar^T (shift cancels).
  Vector mean_shifted = sum_;
  mean_shifted /= n;
  Matrix centered = gram_;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      centered(i, j) -= n * mean_shifted[i] * mean_shifted[j];
    }
  }
  Vector means = mean_shifted;
  means += *shift_;

  // The backend owns the eigensolver strategy: warm (default) seeds each
  // refit with the previous basis — between consecutive intervals the
  // window covariance changes by two rank-one updates, so the eigenbasis
  // barely rotates and the warm Jacobi converges in a sweep or two.
  model_ = backend_->fit_gram(centered, std::move(means), window_.size());
  ++model_computations_;

  Matrix fitted_data;
  if (config_.rank_policy.kind == RankPolicy::Kind::kKSigma) {
    // The heuristic needs the actual centered window rows.
    fitted_data = Matrix(window_.size(), m_);
    for (std::size_t i = 0; i < window_.size(); ++i) {
      Vector row = window_[i];
      row -= mean_shifted;
      fitted_data.set_row(i, row);
    }
  }
  // Truncated backends (rsvd/fd) only recover basis_cols genuine axes; the
  // normal subspace cannot extend past them.
  rank_ = std::min(config_.rank_policy.select(*model_, fitted_data),
                   std::max<std::size_t>(model_->basis_cols(), 1));
  threshold_squared_ = q_statistic_threshold_squared(
      model_->singular_values(), rank_, window_.size(), config_.alpha);
}

Vector LakhinaDetector::distance_profile() const {
  SPCA_EXPECTS(model_.has_value());
  Vector profile(m_ - 1);
  double residual = norm_squared(last_centered_);
  for (std::size_t r = 1; r < m_; ++r) {
    double proj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      proj += model_->components()(i, r - 1) * last_centered_[i];
    }
    residual -= proj * proj;
    profile[r - 1] = std::sqrt(std::max(residual, 0.0));
  }
  return profile;
}

}  // namespace spca
