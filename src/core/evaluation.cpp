#include "core/evaluation.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace spca {

void ConfusionMatrix::add(bool truth, bool predicted) noexcept {
  if (truth && predicted) {
    ++true_positives;
  } else if (truth && !predicted) {
    ++false_negatives;
  } else if (!truth && predicted) {
    ++false_positives;
  } else {
    ++true_negatives;
  }
}

double ConfusionMatrix::type1_error() const noexcept {
  const std::uint64_t normals = false_positives + true_negatives;
  return normals == 0
             ? 0.0
             : static_cast<double>(false_positives) /
                   static_cast<double>(normals);
}

double ConfusionMatrix::type2_error() const noexcept {
  const std::uint64_t anomalies = true_positives + false_negatives;
  return anomalies == 0
             ? 0.0
             : static_cast<double>(false_negatives) /
                   static_cast<double>(anomalies);
}

std::uint64_t ConfusionMatrix::total() const noexcept {
  return true_positives + false_positives + true_negatives + false_negatives;
}

DetectorRun run_detector(Detector& detector, const TraceSet& trace) {
  DetectorRun run;
  run.detector_name = detector.name();
  run.detections.reserve(trace.num_intervals());
  run.first_ready = trace.num_intervals();
  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (det.ready && run.first_ready == trace.num_intervals()) {
      run.first_ready = t;
    }
    run.detections.push_back(det);
  }
  return run;
}

ConfusionMatrix score_against_labels(const DetectorRun& run,
                                     const std::vector<bool>& truth,
                                     std::size_t first_eval) {
  SPCA_EXPECTS(truth.size() == run.detections.size());
  ConfusionMatrix cm;
  for (std::size_t t = std::max(first_eval, run.first_ready);
       t < run.detections.size(); ++t) {
    if (!run.detections[t].ready) continue;
    cm.add(truth[t], run.detections[t].alarm);
  }
  return cm;
}

ConfusionMatrix score_against_reference(const DetectorRun& run,
                                        const DetectorRun& reference) {
  SPCA_EXPECTS(run.detections.size() == reference.detections.size());
  ConfusionMatrix cm;
  const std::size_t first =
      std::max(run.first_ready, reference.first_ready);
  for (std::size_t t = first; t < run.detections.size(); ++t) {
    if (!run.detections[t].ready || !reference.detections[t].ready) continue;
    cm.add(reference.detections[t].alarm, run.detections[t].alarm);
  }
  return cm;
}

}  // namespace spca
