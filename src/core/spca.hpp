// Umbrella header: the public API of the spca library.
//
// Quick tour:
//   * SketchDetector        — the paper's sketch-based streaming PCA detector
//   * LakhinaDetector       — the exact PCA baseline it approximates
//   * EwmaDetector          — per-flow control-chart baseline (motivation)
//   * anomaly_contributions — which flows drove an alarm
//   * generate_traffic      — synthetic Abilene-style OD traffic
//   * AnomalyInjector       — labelled anomaly episodes
//   * to_link_trace         — per-link view via the routing matrix
//   * run_detector / score_* — evaluation harness
//   * dist/ headers         — the simulated distributed deployment (link
//     against spca::dist; not re-exported here to keep layering acyclic)
#pragma once

#include "core/detector.hpp"          // IWYU pragma: export
#include "core/evaluation.hpp"        // IWYU pragma: export
#include "core/ewma_detector.hpp"     // IWYU pragma: export
#include "core/identification.hpp"    // IWYU pragma: export
#include "core/lakhina_detector.hpp"  // IWYU pragma: export
#include "core/sketch_detector.hpp"   // IWYU pragma: export
#include "pca/pca_model.hpp"          // IWYU pragma: export
#include "pca/q_statistic.hpp"        // IWYU pragma: export
#include "synth/anomaly_injector.hpp" // IWYU pragma: export
#include "synth/traffic_model.hpp"    // IWYU pragma: export
#include "traffic/link_view.hpp"      // IWYU pragma: export
#include "traffic/topology.hpp"       // IWYU pragma: export
#include "traffic/trace.hpp"          // IWYU pragma: export
