// Markov-model anomaly detector — the paper's Sec. VII future work
// ("we will apply our sketch-based method on various statistical anomaly
// detection methods, e.g. Markov models, Bayesian networks") realized for
// the network-wide volume process.
//
// The detector quantizes each interval into a discrete state (a z-scored
// bin of the log network-wide volume against EWMA-tracked statistics),
// learns first-order transition counts over a sliding window, and scores
// each interval by its *surprise* -log P(s_t | s_{t-1}) under the
// Laplace-smoothed empirical chain. An interval alarms when its surprise
// exceeds the (1 - alpha) empirical quantile of recent surprises.
//
// Complementary to the PCA detectors: it models temporal order rather than
// spatial correlation, so it reacts to volume-dynamics anomalies (sudden
// regime changes) regardless of their spatial footprint.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/detector.hpp"

namespace spca {

/// Configuration of the Markov-chain detector.
struct MarkovConfig {
  /// Number of discrete states (z-score bins of the log total volume).
  std::size_t num_states = 8;
  /// EWMA smoothing for the log-volume normalization.
  double smoothing = 0.05;
  /// Sliding window (transitions) the chain is estimated over.
  std::size_t window = 2016;
  /// Laplace smoothing added to each transition count.
  double laplace = 0.5;
  /// Alarm when the surprise exceeds this empirical quantile of the
  /// window's surprises.
  double alpha = 0.01;
  /// Intervals before verdicts are issued.
  std::size_t warmup = 128;
};

/// First-order Markov chain surprise detector on the network-wide volume.
class MarkovDetector final : public Detector {
 public:
  MarkovDetector(std::size_t dimensions, const MarkovConfig& config);

  /// `Detection::distance` is the surprise in nats; `threshold` is the
  /// current (1 - alpha) surprise quantile.
  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "markov-volume"; }

  /// The state the last observation mapped to (for diagnosis).
  [[nodiscard]] std::size_t last_state() const noexcept { return last_state_; }

  /// Current transition probability estimate P(to | from).
  [[nodiscard]] double transition_probability(std::size_t from,
                                              std::size_t to) const;

 private:
  [[nodiscard]] std::size_t quantize(double total);
  [[nodiscard]] double surprise(std::size_t from, std::size_t to) const;
  void learn(std::size_t from, std::size_t to);
  void forget_expired();

  std::size_t m_;
  MarkovConfig config_;
  std::uint64_t observed_ = 0;

  // EWMA normalization of the log total volume.
  double ewma_mean_ = 0.0;
  double ewma_var_ = 0.0;

  // Sliding-window transition statistics.
  std::vector<std::uint32_t> counts_;      // num_states x num_states
  std::vector<std::uint32_t> row_totals_;  // per `from` state
  std::deque<std::pair<std::uint16_t, std::uint16_t>> transitions_;
  std::deque<double> surprises_;  // aligned with transitions_

  std::size_t previous_state_ = 0;
  bool has_previous_ = false;
  std::size_t last_state_ = 0;
};

}  // namespace spca
