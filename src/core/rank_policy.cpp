#include <algorithm>

#include "common/contracts.hpp"
#include "core/detector.hpp"

namespace spca {

std::size_t RankPolicy::select(const PcaModel& model,
                               const Matrix& fitted_data) const {
  SPCA_EXPECTS(model.fitted());
  const std::size_t m = model.dimensions();
  std::size_t r = 0;
  switch (kind) {
    case Kind::kFixed:
      r = fixed_rank;
      break;
    case Kind::kEnergy:
      r = select_rank_by_energy(model.singular_values(), energy_fraction);
      break;
    case Kind::kKSigma:
      SPCA_EXPECTS(!fitted_data.empty());
      r = select_rank_by_ksigma(fitted_data, model, ksigma_k);
      break;
    case Kind::kScree:
      r = select_rank_by_scree(model.singular_values(), scree_knee);
      break;
  }
  return std::clamp<std::size_t>(r, 1, m > 1 ? m - 1 : 1);
}

}  // namespace spca
