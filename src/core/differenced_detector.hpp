// Temporal-preprocessing wrapper: runs any Detector on first differences
// x_t - x_{t-1} instead of raw volumes.
//
// This implements the temporal-correlation refinement the paper's related
// work discusses (Brauckhoff et al., ref [12]): differencing removes the
// slowly varying diurnal/weekly trend, so the PCA subspace models the
// short-term correlation structure instead of the seasonal cycle — the
// known nonstationarity weakness of raw-volume PCA (Ringberg et al., ref
// [2]). A step anomaly appears in the differenced stream as a spike at
// onset and an opposite spike at offset.
#pragma once

#include <memory>
#include <optional>

#include "core/detector.hpp"

namespace spca {

/// Wraps an inner detector, feeding it first differences.
class DifferencedDetector final : public Detector {
 public:
  /// Takes ownership of `inner`; the first observation only primes the
  /// differencer (the inner detector starts at the second).
  explicit DifferencedDetector(std::unique_ptr<Detector> inner);

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+diff";
  }

  [[nodiscard]] const Detector& inner() const noexcept { return *inner_; }
  [[nodiscard]] Detector& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<Detector> inner_;
  std::optional<Vector> previous_;
};

}  // namespace spca
