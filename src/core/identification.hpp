// Anomaly identification: once d(y*) exceeds the threshold, which flows
// drove it? The residual vector (I - PP^T) y* attributes the alarm: flows
// with large absolute residual components carry the anomalous traffic.
// This is the diagnosis step operators need after the paper's detection
// step fires (cf. Lakhina'04 Sec. 5's "identification").
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"
#include "pca/pca_model.hpp"

namespace spca {

/// One flow's share of an alarm's residual energy.
struct FlowContribution {
  std::size_t flow = 0;
  /// Signed residual component of the centered measurement on this flow.
  double residual = 0.0;
  /// residual^2 / |residual vector|^2, in [0, 1].
  double share = 0.0;
};

/// Per-flow residual components of measurement `x` against `model` with
/// normal rank `r`, sorted by descending |residual|.
[[nodiscard]] std::vector<FlowContribution> anomaly_contributions(
    const PcaModel& model, const Vector& x, std::size_t r);

/// The smallest set of top contributors covering at least `share` of the
/// residual energy (useful default: 0.8).
[[nodiscard]] std::vector<FlowContribution> top_contributors(
    const PcaModel& model, const Vector& x, std::size_t r, double share);

}  // namespace spca
