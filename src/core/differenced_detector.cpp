#include "core/differenced_detector.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace spca {

DifferencedDetector::DifferencedDetector(std::unique_ptr<Detector> inner)
    : inner_(std::move(inner)) {
  SPCA_EXPECTS(inner_ != nullptr);
}

Detection DifferencedDetector::observe(std::int64_t t, const Vector& x) {
  if (!previous_) {
    previous_ = x;
    return Detection{};  // priming interval: nothing to difference yet
  }
  Vector diff = x;
  diff -= *previous_;
  previous_ = x;
  return inner_->observe(t, diff);
}

}  // namespace spca
