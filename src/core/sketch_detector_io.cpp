// Checkpoint format of the SketchDetector (versioned, little-endian):
//
//   u32 magic 'SPCA' | u32 version (2)
//   config: u64 window | f64 epsilon | u64 sketch_rows | f64 alpha
//           | u8 rank_kind | u64 fixed_rank | f64 energy_fraction
//           | f64 ksigma_k | f64 scree_knee
//           | u8 projection_kind | f64 sparsity | u64 seed | u8 lazy
//           | backend config (see write_backend_config: u8 kind
//             | f64 drift_threshold | i32 warm_sweeps | u64 rank
//             | u64 oversample | i32 power_iters | u64 fd_rows | u64 seed)
//   u64 dimensions | u64 observed | u64 model_computations
//   model: u8 fitted; if fitted: u64 sample_count | f64[] singular_values
//          | f64[] components (row-major m*m) | u64 basis_cols | f64[] means
//          | u64 rank | f64 threshold_squared
//   backend state (kind-specific, see ModelBackend::save_state)
//   per flow (dimensions times):
//     i64 now | u64 bucket_count
//     per bucket: i64 timestamp | u64 count | f64 mean | f64 variance
//                 | f64[] payload
//
// Version history: v1 had no backend config/state section and no
// basis_cols; v1 blobs are no longer readable (restore throws
// ProtocolError on the version word).
#include <utility>

#include "common/serialize.hpp"
#include "core/sketch_detector.hpp"

namespace spca {

namespace {
constexpr std::uint32_t kMagic = 0x53504341;  // "SPCA"
constexpr std::uint32_t kVersion = 2;
}  // namespace

std::vector<std::byte> SketchDetector::save_state() const {
  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);

  out.put(static_cast<std::uint64_t>(config_.window));
  out.put(config_.epsilon);
  out.put(static_cast<std::uint64_t>(config_.sketch_rows));
  out.put(config_.alpha);
  out.put(static_cast<std::uint8_t>(config_.rank_policy.kind));
  out.put(static_cast<std::uint64_t>(config_.rank_policy.fixed_rank));
  out.put(config_.rank_policy.energy_fraction);
  out.put(config_.rank_policy.ksigma_k);
  out.put(config_.rank_policy.scree_knee);
  out.put(static_cast<std::uint8_t>(config_.projection));
  out.put(config_.sparsity);
  out.put(config_.seed);
  out.put(static_cast<std::uint8_t>(config_.lazy ? 1 : 0));
  write_backend_config(out, config_.backend);

  out.put(static_cast<std::uint64_t>(m_));
  out.put(observed_);
  out.put(model_computations_);

  out.put(static_cast<std::uint8_t>(model_.fitted() ? 1 : 0));
  if (model_.fitted()) {
    out.put(static_cast<std::uint64_t>(model_.sample_count()));
    out.put_all(model_.singular_values().data());
    std::vector<double> components(m_ * m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        components[i * m_ + j] = model_.components()(i, j);
      }
    }
    out.put_all(components);
    out.put(static_cast<std::uint64_t>(model_.basis_cols()));
    out.put_all(model_.column_means().data());
    out.put(static_cast<std::uint64_t>(rank_));
    out.put(threshold_squared_);
  }
  backend_->save_state(out);

  for (const FlowSketch& flow : flows_) {
    const VarianceHistogram& vh = flow.histogram();
    out.put(vh.now());
    out.put(static_cast<std::uint64_t>(vh.buckets().size()));
    for (const VhBucket& b : vh.buckets()) {
      out.put(b.timestamp);
      out.put(b.count);
      out.put(b.mean);
      out.put(b.variance);
      out.put_all(b.payload);
    }
  }
  return std::move(out).take();
}

SketchDetector SketchDetector::restore_state(
    const std::vector<std::byte>& blob,
    std::optional<ModelBackendKind> expected_backend) {
  ByteReader in(blob);
  if (in.get<std::uint32_t>() != kMagic) {
    throw ProtocolError("SketchDetector::restore_state: bad magic");
  }
  if (in.get<std::uint32_t>() != kVersion) {
    throw ProtocolError("SketchDetector::restore_state: unknown version");
  }

  SketchDetectorConfig config;
  config.window = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.epsilon = in.get<double>();
  config.sketch_rows = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.alpha = in.get<double>();
  config.rank_policy.kind =
      static_cast<RankPolicy::Kind>(in.get<std::uint8_t>());
  config.rank_policy.fixed_rank =
      static_cast<std::size_t>(in.get<std::uint64_t>());
  config.rank_policy.energy_fraction = in.get<double>();
  config.rank_policy.ksigma_k = in.get<double>();
  config.rank_policy.scree_knee = in.get<double>();
  config.projection = static_cast<ProjectionKind>(in.get<std::uint8_t>());
  config.sparsity = in.get<double>();
  config.seed = in.get<std::uint64_t>();
  config.lazy = in.get<std::uint8_t>() != 0;
  config.backend = read_backend_config(in);
  if (expected_backend && config.backend.kind != *expected_backend) {
    throw ProtocolError(
        std::string("SketchDetector::restore_state: checkpoint written by "
                    "the '") +
        to_string(config.backend.kind) + "' model backend, expected '" +
        to_string(*expected_backend) + "'");
  }

  const auto m = static_cast<std::size_t>(in.get<std::uint64_t>());
  SketchDetector detector(m, config);
  detector.observed_ = in.get<std::uint64_t>();
  detector.model_computations_ = in.get<std::uint64_t>();

  if (in.get<std::uint8_t>() != 0) {
    const auto sample_count = in.get<std::uint64_t>();
    Vector singular_values(in.get_all<double>());
    const std::vector<double> components_flat = in.get_all<double>();
    const auto basis_cols = static_cast<std::size_t>(in.get<std::uint64_t>());
    Vector means(in.get_all<double>());
    if (singular_values.size() != m || means.size() != m ||
        components_flat.size() != m * m || basis_cols > m) {
      throw ProtocolError("SketchDetector::restore_state: bad model shape");
    }
    Matrix components(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        components(i, j) = components_flat[i * m + j];
      }
    }
    detector.model_ =
        PcaModel::from_parts(std::move(singular_values),
                             std::move(components), std::move(means),
                             sample_count, basis_cols);
    detector.rank_ = static_cast<std::size_t>(in.get<std::uint64_t>());
    detector.threshold_squared_ = in.get<double>();
  }
  detector.backend_->restore_state(in);

  const ProjectionSource source =
      config.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(config.seed, config.window)
          : ProjectionSource(config.projection, config.seed, config.sparsity);
  detector.flows_.clear();
  detector.flows_.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    const auto now = in.get<std::int64_t>();
    const auto bucket_count = in.get<std::uint64_t>();
    std::vector<VhBucket> buckets;
    buckets.reserve(bucket_count);
    for (std::uint64_t b = 0; b < bucket_count; ++b) {
      VhBucket bucket;
      bucket.timestamp = in.get<std::int64_t>();
      bucket.count = in.get<std::uint64_t>();
      bucket.mean = in.get<double>();
      bucket.variance = in.get<double>();
      bucket.payload = in.get_all<double>();
      buckets.push_back(std::move(bucket));
    }
    detector.flows_.push_back(FlowSketch::from_state(
        config.window, config.epsilon, config.sketch_rows, source,
        std::move(buckets), now));
  }
  if (!in.exhausted()) {
    throw ProtocolError("SketchDetector::restore_state: trailing bytes");
  }
  return detector;
}

}  // namespace spca
