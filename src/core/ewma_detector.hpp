// Per-flow EWMA baseline detector: the classic single-monitor volume
// detector the paper's introduction contrasts against. Each flow keeps an
// exponentially weighted moving average and variance; an interval alarms if
// any flow's volume deviates by more than k standard deviations.
//
// Included as a motivating baseline: it catches high-profile spikes but is
// structurally blind to coordinated low-profile anomalies, which is exactly
// what the PCA-subspace methods exist to fix (see the
// abl_detection_baselines bench).
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.hpp"

namespace spca {

/// Configuration of the EWMA baseline.
struct EwmaConfig {
  /// Smoothing factor in (0, 1); smaller = longer memory.
  double smoothing = 0.05;
  /// Alarm when any flow deviates by more than `k_sigma` EWMA standard
  /// deviations from its EWMA mean.
  double k_sigma = 4.0;
  /// Intervals to observe before issuing verdicts.
  std::size_t warmup = 64;
};

/// Independent per-flow EWMA z-score detector.
class EwmaDetector final : public Detector {
 public:
  EwmaDetector(std::size_t dimensions, const EwmaConfig& config);

  /// `Detection::distance` is the largest per-flow |z| of the interval and
  /// `Detection::threshold` is k_sigma.
  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "ewma-per-flow"; }

  /// Index of the flow with the largest |z| in the last observation.
  [[nodiscard]] std::size_t worst_flow() const noexcept { return worst_; }

 private:
  std::size_t m_;
  EwmaConfig config_;
  std::uint64_t observed_ = 0;
  std::vector<double> mean_;
  std::vector<double> variance_;
  std::size_t worst_ = 0;
};

}  // namespace spca
