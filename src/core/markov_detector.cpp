#include "core/markov_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace spca {

MarkovDetector::MarkovDetector(std::size_t dimensions,
                               const MarkovConfig& config)
    : m_(dimensions),
      config_(config),
      counts_(config.num_states * config.num_states, 0),
      row_totals_(config.num_states, 0) {
  SPCA_EXPECTS(dimensions >= 1);
  SPCA_EXPECTS(config.num_states >= 2 && config.num_states <= 4096);
  SPCA_EXPECTS(config.smoothing > 0.0 && config.smoothing < 1.0);
  SPCA_EXPECTS(config.window >= 8);
  SPCA_EXPECTS(config.laplace > 0.0);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
  SPCA_EXPECTS(config.warmup >= 4);
}

std::size_t MarkovDetector::quantize(double total) {
  SPCA_EXPECTS(total >= 0.0);
  const double log_total = std::log1p(total);
  if (observed_ == 0) {
    ewma_mean_ = log_total;
    ewma_var_ = 0.0;
    return config_.num_states / 2;
  }
  const double a = config_.smoothing;
  const double sigma = std::sqrt(ewma_var_);
  double z = 0.0;
  if (sigma > 0.0) {
    z = (log_total - ewma_mean_) / sigma;
  }
  const double delta = log_total - ewma_mean_;
  ewma_mean_ += a * delta;
  ewma_var_ = (1.0 - a) * (ewma_var_ + a * delta * delta);

  // Map z in [-K/2, K/2) linearly onto [0, K), clamping the tails.
  const double k = static_cast<double>(config_.num_states);
  const double shifted = std::floor(z + k / 2.0);
  return static_cast<std::size_t>(
      std::clamp(shifted, 0.0, k - 1.0));
}

double MarkovDetector::surprise(std::size_t from, std::size_t to) const {
  const double k = static_cast<double>(config_.num_states);
  const double numerator =
      static_cast<double>(counts_[from * config_.num_states + to]) +
      config_.laplace;
  const double denominator =
      static_cast<double>(row_totals_[from]) + config_.laplace * k;
  return -std::log(numerator / denominator);
}

void MarkovDetector::learn(std::size_t from, std::size_t to) {
  ++counts_[from * config_.num_states + to];
  ++row_totals_[from];
  transitions_.emplace_back(static_cast<std::uint16_t>(from),
                            static_cast<std::uint16_t>(to));
}

void MarkovDetector::forget_expired() {
  while (transitions_.size() > config_.window) {
    const auto [from, to] = transitions_.front();
    transitions_.pop_front();
    --counts_[static_cast<std::size_t>(from) * config_.num_states + to];
    --row_totals_[from];
    if (!surprises_.empty()) surprises_.pop_front();
  }
}

double MarkovDetector::transition_probability(std::size_t from,
                                              std::size_t to) const {
  SPCA_EXPECTS(from < config_.num_states && to < config_.num_states);
  return std::exp(-surprise(from, to));
}

Detection MarkovDetector::observe(std::int64_t /*t*/, const Vector& x) {
  SPCA_EXPECTS(x.size() == m_);
  double total = 0.0;
  for (std::size_t j = 0; j < m_; ++j) total += x[j];

  const std::size_t state = quantize(total);
  last_state_ = state;
  ++observed_;

  Detection det;
  if (!has_previous_) {
    previous_state_ = state;
    has_previous_ = true;
    return det;
  }

  // Score against the chain learned from PAST transitions, then learn.
  const double s = surprise(previous_state_, state);
  learn(previous_state_, state);
  surprises_.push_back(s);
  forget_expired();
  previous_state_ = state;

  if (observed_ <= config_.warmup) return det;

  // Empirical (1 - alpha) quantile of windowed surprises.
  std::vector<double> sorted(surprises_.begin(), surprises_.end());
  std::nth_element(
      sorted.begin(),
      sorted.begin() +
          static_cast<std::ptrdiff_t>((1.0 - config_.alpha) *
                                      static_cast<double>(sorted.size() - 1)),
      sorted.end());
  const double threshold =
      sorted[static_cast<std::size_t>((1.0 - config_.alpha) *
                                      static_cast<double>(sorted.size() - 1))];

  det.ready = true;
  det.distance = s;
  det.threshold = threshold;
  det.alarm = s > threshold;
  return det;
}

}  // namespace spca
