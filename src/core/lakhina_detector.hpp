// Exact sliding-window PCA detector: the Lakhina et al. (SIGCOMM'04)
// baseline of Sec. II/III, run in streaming fashion.
//
// The textbook formulation recomputes the SVD of the full n x m window
// matrix every interval at O(n m^2) cost — exactly the bottleneck the paper
// attacks. This implementation is mathematically identical but maintains
// the window's Gram matrix incrementally with rank-one updates (add the new
// row, subtract the expired row), so the per-interval cost is the O(m^3)
// eigendecomposition plus O(m^2) bookkeeping, and the O(n m) window storage
// remains. The asymptotic *space* behaviour the paper criticizes is
// unchanged; only constant-factor work is saved so the benches can afford
// to run the baseline at full window lengths.
//
// For numerical health the accumulators store shifted rows (x - c for a
// fixed reference c, the first observed row), which removes the huge
// common magnitude of traffic volumes before squaring.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "core/detector.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "pca/backend/model_backend.hpp"

namespace spca {

/// Configuration of the exact PCA baseline.
struct LakhinaConfig {
  /// Sliding-window length n (number of intervals).
  std::size_t window = 2016;
  /// False-alarm rate of the Q-statistic threshold (the paper's beta=0.01).
  double alpha = 0.01;
  /// Normal-subspace selection.
  RankPolicy rank_policy = RankPolicy::fixed(6);
  /// Recompute the eigendecomposition every this many intervals (1 = always,
  /// the exact method; larger values trade recency for speed).
  std::size_t recompute_period = 1;
  /// Model-fitting strategy (exact | warm | rsvd | fd) and its tuning knobs.
  ModelBackendConfig backend;
};

/// The exact PCA-subspace detector.
class LakhinaDetector final : public Detector {
 public:
  LakhinaDetector(std::size_t dimensions, const LakhinaConfig& config);

  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override { return "lakhina-exact"; }

  /// The fitted model (empty Optional before the window fills).
  [[nodiscard]] const std::optional<PcaModel>& model() const noexcept {
    return model_;
  }
  [[nodiscard]] std::size_t normal_rank() const noexcept { return rank_; }

  /// Per-interval anomaly distances for every candidate rank 1..m-1 for the
  /// *last observed* vector — lets the evaluation harness sweep r without
  /// rerunning the stream. Entry [r-1] is d(y*, r).
  [[nodiscard]] Vector distance_profile() const;

  /// Number of eigendecompositions performed (cost accounting).
  [[nodiscard]] std::uint64_t model_computations() const noexcept {
    return model_computations_;
  }

  /// The model-fitting strategy in use.
  [[nodiscard]] const ModelBackend& backend() const noexcept {
    return *backend_;
  }

 private:
  void refresh_model();

  std::size_t m_;
  LakhinaConfig config_;
  std::unique_ptr<ModelBackend> backend_;
  std::deque<Vector> window_;  // shifted rows (x - shift_)
  std::optional<Vector> shift_;
  Vector sum_;    // sum of shifted rows
  Matrix gram_;   // sum of (shifted row)(shifted row)^T
  std::optional<PcaModel> model_;
  std::size_t rank_ = 1;
  double threshold_squared_ = 0.0;
  std::size_t since_recompute_ = 0;
  std::uint64_t model_computations_ = 0;
  Vector last_centered_;  // centered last observation (for distance_profile)
};

}  // namespace spca
