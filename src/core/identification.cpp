#include "core/identification.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace spca {

std::vector<FlowContribution> anomaly_contributions(const PcaModel& model,
                                                    const Vector& x,
                                                    std::size_t r) {
  SPCA_EXPECTS(model.fitted());
  const PcaModel::Split split = model.split(x, r);
  const double total = norm_squared(split.anomaly);

  std::vector<FlowContribution> out(model.dimensions());
  for (std::size_t j = 0; j < model.dimensions(); ++j) {
    out[j].flow = j;
    out[j].residual = split.anomaly[j];
    out[j].share = total > 0.0
                       ? split.anomaly[j] * split.anomaly[j] / total
                       : 0.0;
  }
  std::sort(out.begin(), out.end(),
            [](const FlowContribution& a, const FlowContribution& b) {
              return std::abs(a.residual) > std::abs(b.residual);
            });
  return out;
}

std::vector<FlowContribution> top_contributors(const PcaModel& model,
                                               const Vector& x, std::size_t r,
                                               double share) {
  SPCA_EXPECTS(share > 0.0 && share <= 1.0);
  std::vector<FlowContribution> all = anomaly_contributions(model, x, r);
  double covered = 0.0;
  std::size_t count = 0;
  for (; count < all.size() && covered < share; ++count) {
    // A zero share means the residual is exhausted (or identically zero);
    // further entries carry no information.
    if (all[count].share == 0.0 && count > 0) break;
    covered += all[count].share;
  }
  all.resize(std::max<std::size_t>(count, 1));
  return all;
}

}  // namespace spca
