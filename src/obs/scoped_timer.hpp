// RAII latency probe: measures the enclosing scope on the monotonic clock
// and records the elapsed seconds into a Histogram on destruction.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace spca {

/// Feeds one Histogram sample per scope. Non-copyable; `dismiss()` cancels
/// the recording (e.g. when the scope exits via an error path that should
/// not pollute latency quantiles).
class ScopedTimer final {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(&sink), start_(Clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ != nullptr) {
      sink_->record(
          std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

  /// Drops the pending sample.
  void dismiss() noexcept { sink_ = nullptr; }

  /// Seconds elapsed so far (for call sites that also want the raw value).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* sink_;
  Clock::time_point start_;
};

}  // namespace spca
