// End-to-end interval tracing: one Span per pipeline stage per interval,
// keyed by the interval id that already travels through the frame protocol,
// so a single interval's wall-clock breakdown (ingest absorb -> sketch
// close -> wire tx -> NOC feed -> refit -> decision) is reconstructible
// across processes by merging each process's JSONL export.
//
// Spans carry two clocks: `start_unix_seconds` is the system (wall) clock,
// comparable across processes on one host, and `duration_seconds` is
// measured on the monotonic clock, immune to wall-clock steps. Recording a
// span also feeds the `spca.latency.<stage>` histogram of the global
// MetricsRegistry, so the per-stage latency picture shows up in /metrics
// without any post-processing.
//
// The simulated (SimNetwork) and TCP deployments instrument the exact same
// LocalMonitor/Noc call sites, so both produce structurally identical span
// trees — `structural_signature` is the comparison the parity tests use.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spca {

/// Canonical stage names, in pipeline order.
inline constexpr const char* kStageIngestAbsorb = "ingest_absorb";
inline constexpr const char* kStageSketchClose = "sketch_close";
inline constexpr const char* kStageWireTx = "wire_tx";
inline constexpr const char* kStageNocFeed = "noc_feed";
inline constexpr const char* kStageRefit = "refit";
inline constexpr const char* kStageDecision = "decision";

/// One timed pipeline stage of one interval on one node.
struct Span {
  /// Which node ran the stage ("monitor1", "noc", "replay", ...).
  std::string node;
  /// Stage name (one of the kStage* constants).
  std::string stage;
  /// The interval id the stage worked on — the cross-process trace key.
  std::int64_t interval = 0;
  /// Wall-clock start (seconds since the Unix epoch; system clock).
  double start_unix_seconds = 0.0;
  /// Stage duration (monotonic clock).
  double duration_seconds = 0.0;

  [[nodiscard]] bool operator==(const Span&) const = default;
};

/// Thread-safe bounded ring of Spans, mirroring EventTrace: when full the
/// oldest span is overwritten and `recorded()` keeps the lifetime total.
class SpanLog final {
 public:
  explicit SpanLog(std::size_t capacity = 65536);

  /// Records one span and feeds spca.latency.<stage> in the global
  /// MetricsRegistry.
  void record(Span span);

  /// Buffered spans, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Total spans ever recorded (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// One JSON object per line, oldest first.
  [[nodiscard]] std::string to_jsonl() const;

  /// Parses `to_jsonl` output back into spans; throws InputError on a
  /// malformed line. Blank lines are skipped, so the JSONL files of several
  /// processes can be concatenated and parsed as one trace.
  [[nodiscard]] static std::vector<Span> parse_jsonl(const std::string& text);

  /// The process-wide span log every instrumentation site records to.
  [[nodiscard]] static SpanLog& global();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::vector<Span> ring_;  // insertion position = recorded_ % capacity_
};

/// Serializes one span as a single JSON object (no trailing newline).
[[nodiscard]] std::string to_json(const Span& span);

/// RAII span probe: times the enclosing scope and records it into
/// SpanLog::global() on destruction. `dismiss()` cancels the recording
/// (error paths that should not pollute the trace).
class ScopedSpan final {
 public:
  ScopedSpan(std::string node, const char* stage, std::int64_t interval);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  void dismiss() noexcept { active_ = false; }

 private:
  Span span_;
  std::uint64_t start_ns_;  // monotonic
  bool active_ = true;
};

/// The (interval, node, stage) shape of a trace with all timing stripped:
/// two runs of the same deployment produce equal signatures iff they ran
/// the same stages on the same nodes for the same intervals — the
/// "structurally identical span trees" check of the sim-vs-TCP parity
/// tests.
[[nodiscard]] std::vector<std::string> structural_signature(
    const std::vector<Span>& spans);

/// Human-readable per-interval latency breakdown: one block per interval,
/// stages ordered by wall-clock start, with durations in microseconds.
[[nodiscard]] std::string render_breakdown(const std::vector<Span>& spans);

}  // namespace spca
