#include "obs/span_log.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

void append_number(std::ostringstream& oss, double value) {
  oss << std::setprecision(std::numeric_limits<double>::max_digits10)
      << value;
}

void append_escaped(std::ostringstream& oss, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') oss << '\\';
    oss << c;
  }
}

/// Single-line parser for the flat objects `to_json` emits: string and
/// number values only, no nesting, no escape sequences beyond \" and \\ in
/// strings (mirrors the EventTrace parser).
class LineParser final {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  [[nodiscard]] Span parse() {
    Span span;
    skip_ws();
    expect('{');
    for (;;) {
      skip_ws();
      if (peek() == '}') break;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      apply(span, key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    skip_ws();
    if (pos_ != line_.size()) {
      throw InputError("SpanLog: trailing characters in JSON line");
    }
    if (seen_ != kAllKeys) {
      throw InputError("SpanLog: JSON line is missing required span keys");
    }
    return span;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= line_.size()) {
      throw InputError("SpanLog: truncated JSON line");
    }
    return line_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw InputError(std::string("SpanLog: expected '") + c +
                       "' in JSON line");
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') break;
      if (c == '\\') {
        out.push_back(peek());
        ++pos_;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  [[nodiscard]] double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isdigit(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '-' || line_[pos_] == '+' || line_[pos_] == '.' ||
            line_[pos_] == 'e' || line_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw InputError("SpanLog: expected a number in JSON line");
    }
    double value = 0.0;
    const char* begin = line_.data() + start;
    const char* end = line_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      throw InputError("SpanLog: malformed number in JSON line");
    }
    return value;
  }

  void apply(Span& span, const std::string& key) {
    if (key == "node") {
      span.node = parse_string();
      seen_ |= 1u << 0;
    } else if (key == "stage") {
      span.stage = parse_string();
      seen_ |= 1u << 1;
    } else if (key == "interval") {
      span.interval = static_cast<std::int64_t>(parse_number());
      seen_ |= 1u << 2;
    } else if (key == "start_unix_s") {
      span.start_unix_seconds = parse_number();
      seen_ |= 1u << 3;
    } else if (key == "duration_s") {
      span.duration_seconds = parse_number();
      seen_ |= 1u << 4;
    } else {
      throw InputError("SpanLog: unknown key '" + key + "' in JSON line");
    }
  }

  static constexpr unsigned kAllKeys = (1u << 5) - 1;

  const std::string& line_;
  std::size_t pos_ = 0;
  unsigned seen_ = 0;
};

[[nodiscard]] double unix_now_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

[[nodiscard]] std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string to_json(const Span& span) {
  std::ostringstream oss;
  oss << "{\"node\":\"";
  append_escaped(oss, span.node);
  oss << "\",\"stage\":\"";
  append_escaped(oss, span.stage);
  oss << "\",\"interval\":" << span.interval << ",\"start_unix_s\":";
  append_number(oss, span.start_unix_seconds);
  oss << ",\"duration_s\":";
  append_number(oss, span.duration_seconds);
  oss << '}';
  return oss.str();
}

SpanLog::SpanLog(std::size_t capacity) : capacity_(capacity) {
  SPCA_EXPECTS(capacity >= 1);
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void SpanLog::record(Span span) {
  MetricsRegistry::global()
      .histogram("spca.latency." + span.stage)
      .record(span.duration_seconds);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[recorded_ % capacity_] = std::move(span);
  }
  ++recorded_;
}

std::vector<Span> SpanLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t oldest = recorded_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(oldest + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t SpanLog::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void SpanLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

std::string SpanLog::to_jsonl() const {
  std::string out;
  for (const Span& span : snapshot()) {
    out += to_json(span);
    out += '\n';
  }
  return out;
}

std::vector<Span> SpanLog::parse_jsonl(const std::string& text) {
  std::vector<Span> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(LineParser(line).parse());
  }
  return out;
}

SpanLog& SpanLog::global() {
  static SpanLog log;
  return log;
}

ScopedSpan::ScopedSpan(std::string node, const char* stage,
                       std::int64_t interval)
    : start_ns_(steady_now_ns()) {
  span_.node = std::move(node);
  span_.stage = stage;
  span_.interval = interval;
  span_.start_unix_seconds = unix_now_seconds();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  span_.duration_seconds =
      static_cast<double>(steady_now_ns() - start_ns_) * 1e-9;
  SpanLog::global().record(std::move(span_));
}

std::vector<std::string> structural_signature(const std::vector<Span>& spans) {
  std::vector<std::string> out;
  out.reserve(spans.size());
  for (const Span& span : spans) {
    out.push_back(std::to_string(span.interval) + '/' + span.node + '/' +
                  span.stage);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string render_breakdown(const std::vector<Span>& spans) {
  std::vector<Span> sorted = spans;
  std::sort(sorted.begin(), sorted.end(), [](const Span& a, const Span& b) {
    if (a.interval != b.interval) return a.interval < b.interval;
    if (a.start_unix_seconds != b.start_unix_seconds) {
      return a.start_unix_seconds < b.start_unix_seconds;
    }
    if (a.node != b.node) return a.node < b.node;
    return a.stage < b.stage;
  });
  std::ostringstream oss;
  std::int64_t current = 0;
  bool open = false;
  for (const Span& span : sorted) {
    if (!open || span.interval != current) {
      if (open) oss << '\n';
      current = span.interval;
      open = true;
      oss << "interval " << current << '\n';
    }
    oss << "  " << std::left << std::setw(16) << span.stage << ' '
        << std::setw(12) << span.node << ' ' << std::right << std::fixed
        << std::setprecision(1) << span.duration_seconds * 1e6 << " us\n";
  }
  return oss.str();
}

}  // namespace spca
