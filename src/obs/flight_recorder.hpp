// Crash flight recorder: a fixed-size in-memory ring of recent telemetry
// (per-interval metric snapshots + free-form events) that is cheap enough
// to leave on for a whole run and is dumped to a timestamped JSONL file
// when something goes wrong — on SIGUSR1 (operator-requested), on
// ProtocolError (peer sent garbage), and from the fatal-signal path — so a
// chaos-run failure ships its last N intervals of telemetry instead of
// nothing.
//
// Disabled by default: `note()`/`capture_metrics()` are no-ops until
// `configure()` names a dump directory, so library code can instrument
// unconditionally without touching processes that never opted in.
//
// Signal integration: `request_dump()` only sets an atomic flag and is
// async-signal-safe; the owning loop calls `poll_dump_request()` at its
// next quiet point to write the file. The fatal-signal handler installed
// by `install_flight_recorder_signals()` instead dumps directly — that
// path is deliberately NOT async-signal-safe (it allocates); it is a
// best-effort last gasp behind a recursion guard, after which the default
// handler is re-raised so the process still dies with the right status.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spca {

/// One ring entry: an event note or a metrics snapshot.
struct FlightEntry {
  /// Monotonic sequence number (lifetime, survives ring wrap).
  std::uint64_t seq = 0;
  /// Wall-clock capture time (seconds since the Unix epoch).
  double unix_seconds = 0.0;
  /// "event" or "metrics".
  std::string kind;
  /// Short label ("interval", "protocol_error", "kill", ...).
  std::string label;
  /// Interval the entry belongs to; -1 when not interval-scoped.
  std::int64_t interval = -1;
  /// Event text, or the full MetricsRegistry JSON for "metrics" entries.
  std::string detail;
};

/// Serializes one entry as a single JSON object line (no newline). For
/// "metrics" entries `detail` is embedded verbatim as a JSON value under
/// "metrics"; for events it is escaped under "detail".
[[nodiscard]] std::string to_json(const FlightEntry& entry);

class FlightRecorder final {
 public:
  /// Enables recording: dumps land in `dump_dir` (created if missing) and
  /// the ring holds the most recent `capacity` entries.
  void configure(std::string dump_dir, std::size_t capacity = 512);

  [[nodiscard]] bool enabled() const;

  /// Records a free-form event; no-op while disabled.
  void note(std::string label, std::int64_t interval = -1,
            std::string detail = std::string());

  /// Snapshots the global MetricsRegistry JSON into the ring; no-op while
  /// disabled.
  void capture_metrics(std::string label, std::int64_t interval = -1);

  /// Writes the ring to `<dump_dir>/flight-<utc>-<pid>-<n>-<reason>.jsonl`
  /// (oldest entry first, preceded by one header line naming the reason)
  /// and returns the path; returns "" while disabled. Never throws: a
  /// failed write logs a warning and returns "".
  std::string dump(const std::string& reason) noexcept;

  /// Async-signal-safe: flags that the owning loop should dump. Safe to
  /// call from a signal handler or any thread, enabled or not.
  void request_dump() noexcept;

  /// Dumps with reason "signal" iff `request_dump()` fired since the last
  /// poll; returns the dump path or "". Call from loop quiet points.
  std::string poll_dump_request();

  /// Buffered entries, oldest first (for tests).
  [[nodiscard]] std::vector<FlightEntry> snapshot() const;

  /// Lifetime entries recorded (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const;

  /// Disables recording and clears the ring (tests).
  void reset();

  /// The process-wide recorder all instrumentation sites use.
  [[nodiscard]] static FlightRecorder& global();

 private:
  mutable std::mutex mutex_;
  std::string dump_dir_;
  std::size_t capacity_ = 512;
  std::vector<FlightEntry> ring_;  // insertion position = recorded_ % capacity_
  std::uint64_t recorded_ = 0;
  std::uint64_t dumps_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> dump_requested_{false};
};

/// Installs SIGUSR1 -> request_dump() plus best-effort dump-then-reraise
/// handlers for fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL).
/// Idempotent; call once from a process's main().
void install_flight_recorder_signals();

}  // namespace spca
