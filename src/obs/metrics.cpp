#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/metric_catalog.hpp"

namespace spca {

namespace {

constexpr double kEmptyMin = std::numeric_limits<double>::infinity();
constexpr double kEmptyMax = -std::numeric_limits<double>::infinity();

void atomic_store_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_store_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void append_number(std::ostringstream& oss, double value) {
  oss << std::setprecision(std::numeric_limits<double>::max_digits10)
      << value;
}

void append_json_string(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\r':
        oss << "\\r";
        break;
      case '\t':
        oss << "\\t";
        break;
      case '\b':
        oss << "\\b";
        break;
      case '\f':
        oss << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          oss << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
              << std::setfill(' ');
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

/// `null` for empty histograms: 0.0 would read as a real observation.
void append_stat(std::ostringstream& oss, const Histogram& h, double value) {
  if (h.count() == 0) {
    oss << "null";
  } else {
    append_number(oss, value);
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; everything else
/// (notably the '.' separators of spca.* names) maps to '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void append_prometheus_header(std::ostringstream& oss, const std::string& name,
                              const std::string& exposition_name,
                              const char* type) {
  if (const MetricInfo* info = find_metric(name); info != nullptr) {
    oss << "# HELP " << exposition_name << ' ' << info->help << '\n';
  }
  oss << "# TYPE " << exposition_name << ' ' << type << '\n';
}

}  // namespace

void Histogram::record(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  atomic_store_min(min_, value);
  atomic_store_max(max_, value);
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  if (count() == 0) return 0.0;
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const noexcept {
  if (count() == 0) return 0.0;
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > kMinTracked)) return 0;
  // value / kMinTracked can overflow to infinity for huge values; compare in
  // floating point before the integer cast (casting inf is undefined).
  const double scaled = std::log2(value / kMinTracked) *
                        static_cast<double>(kBucketsPerOctave);
  if (!(scaled < static_cast<double>(kBucketCount - 1))) {
    return kBucketCount - 1;
  }
  return static_cast<std::size_t>(scaled);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double mid =
          kMinTracked *
          std::exp2((static_cast<double>(i) + 0.5) /
                    static_cast<double>(kBucketsPerOctave));
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::render_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    oss << name << " count=" << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    oss << name << " value=";
    append_number(oss, g->value());
    oss << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    oss << name << " count=" << h->count() << " sum=";
    append_number(oss, h->sum());
    oss << " min=";
    append_number(oss, h->min());
    oss << " p50=";
    append_number(oss, h->quantile(0.50));
    oss << " p95=";
    append_number(oss, h->quantile(0.95));
    oss << " p99=";
    append_number(oss, h->quantile(0.99));
    oss << " max=";
    append_number(oss, h->max());
    oss << '\n';
  }
  return oss.str();
}

std::string MetricsRegistry::render_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ':' << c->value();
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ':';
    append_number(oss, g->value());
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ":{\"count\":" << h->count() << ",\"sum\":";
    append_number(oss, h->sum());
    oss << ",\"mean\":";
    append_stat(oss, *h, h->mean());
    oss << ",\"min\":";
    append_stat(oss, *h, h->min());
    oss << ",\"p50\":";
    append_stat(oss, *h, h->quantile(0.50));
    oss << ",\"p90\":";
    append_stat(oss, *h, h->quantile(0.90));
    oss << ",\"p95\":";
    append_stat(oss, *h, h->quantile(0.95));
    oss << ",\"p99\":";
    append_stat(oss, *h, h->quantile(0.99));
    oss << ",\"max\":";
    append_stat(oss, *h, h->max());
    oss << '}';
  }
  oss << "}}";
  return oss.str();
}

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    const std::string exposition = prometheus_name(name);
    append_prometheus_header(oss, name, exposition, "counter");
    oss << exposition << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string exposition = prometheus_name(name);
    append_prometheus_header(oss, name, exposition, "gauge");
    oss << exposition << ' ';
    append_number(oss, g->value());
    oss << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string exposition = prometheus_name(name);
    append_prometheus_header(oss, name, exposition, "summary");
    // Quantile series only make sense once something was observed; _sum and
    // _count are always well defined.
    if (h->count() > 0) {
      struct QuantilePoint {
        const char* label;
        double q;
      };
      static constexpr QuantilePoint kQuantiles[] = {
          {"0.5", 0.50}, {"0.9", 0.90}, {"0.95", 0.95}, {"0.99", 0.99}};
      for (const QuantilePoint& point : kQuantiles) {
        oss << exposition << "{quantile=\"" << point.label << "\"} ";
        append_number(oss, h->quantile(point.q));
        oss << '\n';
      }
    }
    oss << exposition << "_sum ";
    append_number(oss, h->sum());
    oss << '\n' << exposition << "_count " << h->count() << '\n';
  }
  return oss.str();
}

namespace {

template <typename Map>
[[nodiscard]] std::vector<std::string> keys_of(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, value] : map) out.push_back(name);
  return out;  // std::map iterates sorted
}

}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return keys_of(counters_);
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return keys_of(gauges_);
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return keys_of(histograms_);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace spca
