#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace spca {

namespace {

constexpr double kEmptyMin = std::numeric_limits<double>::infinity();
constexpr double kEmptyMax = -std::numeric_limits<double>::infinity();

void atomic_store_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_store_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void append_number(std::ostringstream& oss, double value) {
  oss << std::setprecision(std::numeric_limits<double>::max_digits10)
      << value;
}

void append_json_string(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') oss << '\\';
    oss << c;
  }
  oss << '"';
}

}  // namespace

void Histogram::record(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  atomic_store_min(min_, value);
  atomic_store_max(max_, value);
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  if (count() == 0) return 0.0;
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const noexcept {
  if (count() == 0) return 0.0;
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > kMinTracked)) return 0;
  // value / kMinTracked can overflow to infinity for huge values; compare in
  // floating point before the integer cast (casting inf is undefined).
  const double scaled = std::log2(value / kMinTracked) *
                        static_cast<double>(kBucketsPerOctave);
  if (!(scaled < static_cast<double>(kBucketCount - 1))) {
    return kBucketCount - 1;
  }
  return static_cast<std::size_t>(scaled);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double mid =
          kMinTracked *
          std::exp2((static_cast<double>(i) + 0.5) /
                    static_cast<double>(kBucketsPerOctave));
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::render_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    oss << name << " count=" << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    oss << name << " value=";
    append_number(oss, g->value());
    oss << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    oss << name << " count=" << h->count() << " sum=";
    append_number(oss, h->sum());
    oss << " min=";
    append_number(oss, h->min());
    oss << " p50=";
    append_number(oss, h->quantile(0.50));
    oss << " p95=";
    append_number(oss, h->quantile(0.95));
    oss << " p99=";
    append_number(oss, h->quantile(0.99));
    oss << " max=";
    append_number(oss, h->max());
    oss << '\n';
  }
  return oss.str();
}

std::string MetricsRegistry::render_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ':' << c->value();
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ':';
    append_number(oss, g->value());
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) oss << ',';
    first = false;
    append_json_string(oss, name);
    oss << ":{\"count\":" << h->count() << ",\"sum\":";
    append_number(oss, h->sum());
    oss << ",\"mean\":";
    append_number(oss, h->mean());
    oss << ",\"min\":";
    append_number(oss, h->min());
    oss << ",\"p50\":";
    append_number(oss, h->quantile(0.50));
    oss << ",\"p90\":";
    append_number(oss, h->quantile(0.90));
    oss << ",\"p95\":";
    append_number(oss, h->quantile(0.95));
    oss << ",\"p99\":";
    append_number(oss, h->quantile(0.99));
    oss << ",\"max\":";
    append_number(oss, h->max());
    oss << '}';
  }
  oss << "}}";
  return oss.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace spca
