// File export of the observability state: the bridge between the standard
// --metrics-out / --trace-out flag pair (defined in common/cli) and the
// global MetricsRegistry / EventTrace, shared by benches and examples.
#pragma once

#include <string>

#include "common/cli.hpp"

namespace spca {

/// Writes `content` to `path`, overwriting; throws InputError on failure.
void write_text_file(const std::string& path, const std::string& content);

/// Writes the global registry's JSON to `metrics_path` and the global event
/// trace's JSON lines to `trace_path`; an empty path skips that export.
void export_observability(const std::string& metrics_path,
                          const std::string& trace_path);

/// Convenience overload reading the standard flag pair (see
/// `define_observability_flags` in common/cli): --metrics-out, --trace-out.
void export_observability(const CliFlags& flags);

}  // namespace spca
