// File export of the observability state: the bridge between the standard
// --metrics-out / --trace-out / --span-out / --flight-dir flags (defined
// in common/cli) and the global MetricsRegistry / EventTrace / SpanLog /
// FlightRecorder, shared by benches, examples, and daemons.
#pragma once

#include <string>

#include "common/cli.hpp"

namespace spca {

/// Writes `content` to `path`, overwriting; throws InputError on failure.
void write_text_file(const std::string& path, const std::string& content);

/// Writes the global registry's JSON to `metrics_path`, the global event
/// trace's JSON lines to `trace_path`, and the global span log's JSON
/// lines to `span_path`; an empty path skips that export.
void export_observability(const std::string& metrics_path,
                          const std::string& trace_path,
                          const std::string& span_path = std::string());

/// Convenience overload reading the standard flags (see
/// `define_observability_flags` in common/cli): --metrics-out,
/// --trace-out, --span-out.
void export_observability(const CliFlags& flags);

/// Start-of-run counterpart of export_observability: enables the global
/// flight recorder (and its SIGUSR1 / fatal-signal dump hooks) when
/// --flight-dir is non-empty. Call right after flag parsing.
void configure_observability(const CliFlags& flags);

}  // namespace spca
