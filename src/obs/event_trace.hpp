// Structured trail of detection decisions: one event per evaluated
// interval, recording exactly the quantities the lazy protocol of Sec. IV-C
// branches on, kept in a bounded ring buffer and exportable as JSON lines
// for bench post-processing.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spca {

/// One detection decision. `refreshed` distinguishes a lazy refresh (the
/// stale model raised a hand and fresh sketches were pulled) from a pass on
/// the stale model; `alarm` is the final verdict after any re-check.
struct DetectionEvent {
  /// Which detector decided ("sketch-pca", "lakhina-exact", "noc", ...).
  std::string detector;
  std::int64_t interval = 0;
  /// Squared SPE distance d^2(y*) of eq. (19).
  double distance_squared = 0.0;
  /// Squared Q-statistic threshold delta^2 of eq. (23).
  double threshold_squared = 0.0;
  /// Normal-subspace size r in force for this decision.
  std::size_t rank = 0;
  /// True if the model was recomputed for this interval.
  bool refreshed = false;
  bool alarm = false;

  [[nodiscard]] bool operator==(const DetectionEvent&) const = default;
};

/// Thread-safe bounded ring buffer of DetectionEvents. When full, the
/// oldest event is overwritten; `recorded()` keeps the lifetime total so
/// post-processors can tell how much was dropped.
class EventTrace final {
 public:
  explicit EventTrace(std::size_t capacity = 65536);

  void record(DetectionEvent event);

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<DetectionEvent> snapshot() const;

  /// Total events ever recorded (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// One JSON object per line, oldest first (the export format documented
  /// in README.md's Observability section).
  [[nodiscard]] std::string to_jsonl() const;

  /// Parses `to_jsonl` output back into events; throws InputError on a
  /// malformed line. Blank lines are skipped.
  [[nodiscard]] static std::vector<DetectionEvent> parse_jsonl(
      const std::string& text);

  /// The process-wide trace every built-in instrumentation site records to.
  [[nodiscard]] static EventTrace& global();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::vector<DetectionEvent> ring_;  // insertion position = recorded_ % cap
};

/// Serializes one event as a single JSON object (no trailing newline).
[[nodiscard]] std::string to_json(const DetectionEvent& event);

}  // namespace spca
