// The documented inventory of every spca.* metric: one row per name with
// its instrument kind and meaning. This table is the single source of
// truth for docs/METRICS.md (`render_metrics_doc` emits that file's exact
// content) and for the HELP lines of the Prometheus exposition, and the
// catalog-coverage test fails whenever a metric registered at runtime is
// missing a row here — so a new instrument cannot ship undocumented.
#pragma once

#include <string>
#include <vector>

namespace spca {

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricInfo {
  const char* name;
  MetricKind kind;
  /// One-line meaning, written for the METRICS.md reference table.
  const char* help;
};

/// Every documented metric, sorted by name.
[[nodiscard]] const std::vector<MetricInfo>& metric_catalog();

/// Catalog row for `name`, or nullptr if undocumented.
[[nodiscard]] const MetricInfo* find_metric(const std::string& name);

/// "counter" / "gauge" / "histogram".
[[nodiscard]] const char* to_string(MetricKind kind);

/// The full docs/METRICS.md content (generated header + one table per
/// instrument kind).
[[nodiscard]] std::string render_metrics_doc();

}  // namespace spca
