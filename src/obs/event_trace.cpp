#include "obs/event_trace.hpp"

#include <cctype>
#include <charconv>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

namespace {

void append_number(std::ostringstream& oss, double value) {
  oss << std::setprecision(std::numeric_limits<double>::max_digits10)
      << value;
}

/// Single-line parser for the flat objects `to_json` emits: string, number,
/// and boolean values only, no nesting, no escape sequences beyond \" and
/// \\ in strings.
class LineParser final {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  [[nodiscard]] DetectionEvent parse() {
    DetectionEvent event;
    skip_ws();
    expect('{');
    for (;;) {
      skip_ws();
      if (peek() == '}') break;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      apply(event, key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    skip_ws();
    if (pos_ != line_.size()) {
      throw InputError("EventTrace: trailing characters in JSON line");
    }
    return event;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= line_.size()) {
      throw InputError("EventTrace: truncated JSON line");
    }
    return line_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw InputError(std::string("EventTrace: expected '") + c +
                       "' in JSON line");
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') break;
      if (c == '\\') {
        out.push_back(peek());
        ++pos_;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  [[nodiscard]] double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isdigit(static_cast<unsigned char>(line_[pos_])) != 0 ||
            line_[pos_] == '-' || line_[pos_] == '+' || line_[pos_] == '.' ||
            line_[pos_] == 'e' || line_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw InputError("EventTrace: expected a number in JSON line");
    }
    double value = 0.0;
    const char* begin = line_.data() + start;
    const char* end = line_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      throw InputError("EventTrace: malformed number in JSON line");
    }
    return value;
  }

  [[nodiscard]] bool parse_bool() {
    if (line_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (line_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw InputError("EventTrace: expected a boolean in JSON line");
  }

  void apply(DetectionEvent& event, const std::string& key) {
    if (key == "detector") {
      event.detector = parse_string();
    } else if (key == "interval") {
      event.interval = static_cast<std::int64_t>(parse_number());
    } else if (key == "distance2") {
      event.distance_squared = parse_number();
    } else if (key == "threshold2") {
      event.threshold_squared = parse_number();
    } else if (key == "rank") {
      event.rank = static_cast<std::size_t>(parse_number());
    } else if (key == "refreshed") {
      event.refreshed = parse_bool();
    } else if (key == "alarm") {
      event.alarm = parse_bool();
    } else {
      throw InputError("EventTrace: unknown key '" + key + "' in JSON line");
    }
  }

  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const DetectionEvent& event) {
  std::ostringstream oss;
  oss << "{\"detector\":\"";
  for (const char c : event.detector) {
    if (c == '"' || c == '\\') oss << '\\';
    oss << c;
  }
  oss << "\",\"interval\":" << event.interval << ",\"distance2\":";
  append_number(oss, event.distance_squared);
  oss << ",\"threshold2\":";
  append_number(oss, event.threshold_squared);
  oss << ",\"rank\":" << event.rank
      << ",\"refreshed\":" << (event.refreshed ? "true" : "false")
      << ",\"alarm\":" << (event.alarm ? "true" : "false") << '}';
  return oss.str();
}

EventTrace::EventTrace(std::size_t capacity) : capacity_(capacity) {
  SPCA_EXPECTS(capacity >= 1);
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void EventTrace::record(DetectionEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[recorded_ % capacity_] = std::move(event);
  }
  ++recorded_;
}

std::vector<DetectionEvent> EventTrace::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DetectionEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t oldest = recorded_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(oldest + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t EventTrace::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void EventTrace::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

std::string EventTrace::to_jsonl() const {
  std::string out;
  for (const DetectionEvent& event : snapshot()) {
    out += to_json(event);
    out += '\n';
  }
  return out;
}

std::vector<DetectionEvent> EventTrace::parse_jsonl(const std::string& text) {
  std::vector<DetectionEvent> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(LineParser(line).parse());
  }
  return out;
}

EventTrace& EventTrace::global() {
  static EventTrace trace;
  return trace;
}

}  // namespace spca
