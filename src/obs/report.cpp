#include "obs/report.hpp"

#include <fstream>

#include "common/error.hpp"
#include "obs/event_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"

namespace spca {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw InputError("cannot open '" + path + "' for writing");
  }
  out << content;
  if (!out) {
    throw InputError("failed writing '" + path + "'");
  }
}

void export_observability(const std::string& metrics_path,
                          const std::string& trace_path,
                          const std::string& span_path) {
  if (!metrics_path.empty()) {
    write_text_file(metrics_path,
                    MetricsRegistry::global().render_json() + "\n");
  }
  if (!trace_path.empty()) {
    write_text_file(trace_path, EventTrace::global().to_jsonl());
  }
  if (!span_path.empty()) {
    write_text_file(span_path, SpanLog::global().to_jsonl());
  }
}

void export_observability(const CliFlags& flags) {
  export_observability(flags.str("metrics-out"), flags.str("trace-out"),
                       flags.str("span-out"));
}

void configure_observability(const CliFlags& flags) {
  const std::string flight_dir = flags.str("flight-dir");
  if (flight_dir.empty()) return;
  FlightRecorder::global().configure(flight_dir);
  install_flight_recorder_signals();
}

}  // namespace spca
