#include "obs/status_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"

namespace spca {

namespace {

[[nodiscard]] std::string http_response(int status, const char* reason,
                                        const char* content_type,
                                        const std::string& body) {
  std::ostringstream oss;
  oss << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return oss.str();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

StatusServer::StatusServer(StatusServerConfig config)
    : config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw InputError("status server: socket() failed: " +
                     std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InputError("status server: invalid bind address '" + config_.host +
                     "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InputError("status server: cannot listen on " + config_.host + ":" +
                     std::to_string(config_.port) + ": " + detail);
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
}

StatusServer::~StatusServer() {
  stop_background();
  for (Connection& conn : connections_) close_connection(conn);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatusServer::serve_in_background(std::chrono::milliseconds slice) {
  if (background_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  background_ = std::thread([this, slice] {
    while (!stop_.load(std::memory_order_relaxed)) {
      poll();
      std::this_thread::sleep_for(slice);
    }
  });
}

void StatusServer::stop_background() {
  if (!background_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  background_.join();
}

void StatusServer::poll() {
  accept_pending();
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < connections_.size();) {
    Connection& conn = connections_[i];
    const bool alive = now < conn.deadline && progress(conn);
    if (alive) {
      ++i;
      continue;
    }
    close_connection(conn);
    connections_[i] = std::move(connections_.back());
    connections_.pop_back();
  }
}

void StatusServer::accept_pending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (no pending) or transient error
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.deadline =
        std::chrono::steady_clock::now() + config_.connection_deadline;
    connections_.push_back(std::move(conn));
  }
}

bool StatusServer::progress(Connection& conn) {
  if (!conn.responded) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.request.append(buf, static_cast<std::size_t>(n));
        if (conn.request.size() > config_.max_request_bytes) {
          MetricsRegistry::global().counter("spca.status.http_errors").inc();
          conn.response = http_response(431, "Request Header Fields Too Large",
                                        "text/plain", "request too large\n");
          conn.responded = true;
          break;
        }
        continue;
      }
      if (n == 0) return false;  // peer closed before a full request head
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (!conn.responded) {
      if (conn.request.find("\r\n\r\n") == std::string::npos &&
          conn.request.find('\n') == std::string::npos) {
        return true;  // request head still incomplete
      }
      respond(conn);
    }
  }
  while (conn.sent < conn.response.size()) {
    const ssize_t n = ::send(conn.fd, conn.response.data() + conn.sent,
                             conn.response.size() - conn.sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  return false;  // fully sent -> close
}

void StatusServer::respond(Connection& conn) {
  MetricsRegistry::global().counter("spca.status.requests").inc();
  std::istringstream request_line(
      conn.request.substr(0, conn.request.find('\n')));
  std::string method;
  std::string path;
  request_line >> method >> path;
  int status = 200;
  const std::string body = route(method, path, status);
  if (status != 200) {
    MetricsRegistry::global().counter("spca.status.http_errors").inc();
  }
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 405 ? "Method Not Allowed"
                                       : "Service Unavailable";
  const bool json = path == "/metrics.json" || path == "/healthz";
  const char* content_type = json             ? "application/json"
                             : status != 200  ? "text/plain"
                                              : "text/plain; version=0.0.4";
  conn.response = http_response(status, reason, content_type, body);
  if (method == "HEAD") {
    conn.response.resize(conn.response.find("\r\n\r\n") + 4);
  }
  conn.responded = true;
}

std::string StatusServer::route(const std::string& method,
                                const std::string& path, int& http_status) {
  if (method != "GET" && method != "HEAD") {
    http_status = 405;
    return "only GET is supported\n";
  }
  if (path == "/metrics.json") {
    return MetricsRegistry::global().render_json() + "\n";
  }
  if (path == "/metrics") {
    return MetricsRegistry::global().render_prometheus();
  }
  if (path == "/spans") {
    return SpanLog::global().to_jsonl();
  }
  if (path == "/healthz") {
    const bool ok = !config_.healthy || config_.healthy();
    http_status = ok ? 200 : 503;
    if (config_.health_body) return config_.health_body();
    return std::string("{\"healthy\":") + (ok ? "true" : "false") + "}\n";
  }
  http_status = 404;
  return "unknown path; try /metrics.json /metrics /healthz /spans\n";
}

void StatusServer::close_connection(Connection& conn) noexcept {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
}

}  // namespace spca
