#include "obs/metric_catalog.hpp"

#include <algorithm>
#include <sstream>

namespace spca {

namespace {

// Keep sorted by name: find_metric binary-searches this list, and the
// catalog-order test fails on any row out of place.
const MetricInfo kCatalog[] = {
    {"spca.detect.first_line_trips", MetricKind::kCounter,
     "Monitor first-line scores above the trip threshold seen by the fusion "
     "engine."},
    {"spca.detect.fused_alarms", MetricKind::kCounter,
     "Intervals the ensemble fusion rule flagged as anomalous."},
    {"spca.detect.rpca_refits", MetricKind::kCounter,
     "Robust-PCA (PCP) baseline window refits."},
    {"spca.detect.score_reports", MetricKind::kCounter,
     "First-line score reports built by local monitors."},
    {"spca.detector.alarms", MetricKind::kCounter,
     "Intervals the sketch detector flagged as anomalous."},
    {"spca.detector.false_refreshes", MetricKind::kCounter,
     "Model refreshes where the refit cleared the alarm (stale-model false "
     "positive)."},
    {"spca.detector.lazy_pulls", MetricKind::kCounter,
     "Sketch pulls triggered by the lazy protocol (flagged intervals only)."},
    {"spca.detector.model_refreshes", MetricKind::kCounter,
     "Subspace refits performed by the sketch detector."},
    {"spca.detector.stale_passes", MetricKind::kCounter,
     "Intervals accepted by the stale model without a refit."},
    {"spca.fault.deduplicated", MetricKind::kCounter,
     "Duplicate injected messages suppressed by receiver-side dedup."},
    {"spca.fault.injected_corruptions", MetricKind::kCounter,
     "Messages the fault plan corrupted in flight."},
    {"spca.fault.injected_drops", MetricKind::kCounter,
     "Messages the fault plan dropped."},
    {"spca.fault.injected_duplicates", MetricKind::kCounter,
     "Messages the fault plan duplicated."},
    {"spca.fault.injected_kills", MetricKind::kCounter,
     "Node kill events executed by the chaos schedule."},
    {"spca.fault.injected_reorders", MetricKind::kCounter,
     "Messages the fault plan held back for reordering."},
    {"spca.fault.injected_resets", MetricKind::kCounter,
     "Connection reset events executed by the chaos schedule."},
    {"spca.fault.recovery_seconds", MetricKind::kHistogram,
     "Time from node restart to restored state (checkpoint load + tail "
     "absorb)."},
    {"spca.fault.retransmits", MetricKind::kCounter,
     "Deterministic retransmissions masking injected drops/corruptions."},
    {"spca.flight.dumps", MetricKind::kCounter,
     "Flight-recorder dump files written (signal, error, or explicit)."},
    {"spca.hier.aggregates_tx", MetricKind::kCounter,
     "Merged shard aggregates a regional NOC relayed towards the root."},
    {"spca.hier.merges", MetricKind::kCounter,
     "Complete shards a regional NOC merged into one aggregate."},
    {"spca.hier.requests_forwarded", MetricKind::kCounter,
     "Root sketch requests a regional NOC fanned out to its shard."},
    {"spca.ingest.batches", MetricKind::kCounter,
     "Record batches drained from the ingest ring."},
    {"spca.ingest.intervals", MetricKind::kCounter,
     "Intervals closed by the ingest consumer."},
    {"spca.ingest.passes", MetricKind::kCounter,
     "Full replay passes over the trace set."},
    {"spca.ingest.producer_blocks", MetricKind::kCounter,
     "Producer stalls on a full ingest ring (backpressure events)."},
    {"spca.ingest.records", MetricKind::kCounter,
     "Flow records absorbed by the ingest pipeline."},
    {"spca.ingest.records_per_sec", MetricKind::kGauge,
     "Most recent sustained ingest rate measured by spca_replay."},
    {"spca.ingest.ring_occupancy", MetricKind::kHistogram,
     "Ingest ring occupancy (batches) sampled at each consumer drain."},
    {"spca.lakhina.alarms", MetricKind::kCounter,
     "Intervals the centralized Lakhina baseline flagged as anomalous."},
    {"spca.lakhina.eig_seconds", MetricKind::kHistogram,
     "Eigendecomposition time per Lakhina model refresh."},
    {"spca.lakhina.model_refreshes", MetricKind::kCounter,
     "Model refreshes performed by the Lakhina baseline."},
    {"spca.lakhina.observe_seconds", MetricKind::kHistogram,
     "End-to-end observe() time per interval for the Lakhina baseline."},
    {"spca.latency.decision", MetricKind::kHistogram,
     "NOC decision time per interval: detect on the assembled vector, "
     "including any lazy pull + refit."},
    {"spca.latency.ingest_absorb", MetricKind::kHistogram,
     "Monitor time absorbing one interval's flow volumes into the sketch."},
    {"spca.latency.noc_feed", MetricKind::kHistogram,
     "NOC time assembling monitor volume reports into the link vector."},
    {"spca.latency.refit", MetricKind::kHistogram,
     "NOC subspace refit time (sketch assembly + SVD) when a pull "
     "escalates."},
    {"spca.latency.sketch_close", MetricKind::kHistogram,
     "Monitor time flushing buffered volumes into sketch buckets at "
     "interval close."},
    {"spca.latency.wire_tx", MetricKind::kHistogram,
     "Monitor time serializing and sending the interval's volume report."},
    {"spca.monitor.intervals", MetricKind::kCounter,
     "Intervals closed by local monitors."},
    {"spca.monitor.sketch_responses", MetricKind::kCounter,
     "Sketch responses emitted by local monitors to NOC pulls."},
    {"spca.monitor.update_seconds", MetricKind::kHistogram,
     "Local-monitor interval close time (sketch flush + report build)."},
    {"spca.net.aggregate_bytes", MetricKind::kCounter,
     "Serialized payload bytes of regional shard aggregates."},
    {"spca.net.alarm_bytes", MetricKind::kCounter,
     "Serialized payload bytes of alarm messages."},
    {"spca.net.bytes_rx", MetricKind::kCounter,
     "Serialized payload bytes received across all transports."},
    {"spca.net.bytes_tx", MetricKind::kCounter,
     "Serialized payload bytes sent across all transports."},
    {"spca.net.connect_retries", MetricKind::kCounter,
     "TCP connect attempts beyond the first (backoff retries)."},
    {"spca.net.control_rx", MetricKind::kCounter,
     "Control frames (hello/advance) received."},
    {"spca.net.control_tx", MetricKind::kCounter,
     "Control frames (hello/advance) sent."},
    {"spca.net.frame_errors", MetricKind::kCounter,
     "Malformed or CRC-failing frames rejected by the decoder."},
    {"spca.net.messages", MetricKind::kCounter,
     "Protocol messages delivered across all transports."},
    {"spca.net.poller_backend", MetricKind::kGauge,
     "Readiness backend of the TCP io loop (1 = epoll, 0 = poll)."},
    {"spca.net.reconnects", MetricKind::kCounter,
     "Connections re-established after an EOF/error drop."},
    {"spca.net.score_report_bytes", MetricKind::kCounter,
     "Serialized payload bytes of first-line score reports."},
    {"spca.net.send_seconds", MetricKind::kHistogram,
     "Transport send() time per message."},
    {"spca.net.sketch_request_bytes", MetricKind::kCounter,
     "Serialized payload bytes of sketch-pull requests."},
    {"spca.net.sketch_response_bytes", MetricKind::kCounter,
     "Serialized payload bytes of sketch responses."},
    {"spca.net.volume_report_bytes", MetricKind::kCounter,
     "Serialized payload bytes of per-interval volume reports."},
    {"spca.noc.alarms", MetricKind::kCounter,
     "Alarms raised by the NOC after refit confirmation."},
    {"spca.noc.detect_seconds", MetricKind::kHistogram,
     "NOC detection time per interval (stale-model Q-statistic test)."},
    {"spca.noc.false_refreshes", MetricKind::kCounter,
     "NOC refits that cleared the tentative alarm."},
    {"spca.noc.lazy_pulls", MetricKind::kCounter,
     "Sketch pulls the NOC issued under the lazy protocol."},
    {"spca.noc.pull_round_trip_seconds", MetricKind::kHistogram,
     "Wall time from sketch-pull request to last monitor response."},
    {"spca.noc.refit_seconds", MetricKind::kHistogram,
     "NOC refit time (sketch assembly + SVD)."},
    {"spca.noc.refits", MetricKind::kCounter,
     "Subspace refits performed by the NOC."},
    {"spca.noc.sketch_pulls", MetricKind::kCounter,
     "Per-monitor sketch requests sent by the NOC."},
    {"spca.noc.stale_passes", MetricKind::kCounter,
     "Intervals the NOC accepted with the stale model."},
    {"spca.par.pool_size", MetricKind::kGauge,
     "Worker-thread count of the global thread pool."},
    {"spca.par.tasks", MetricKind::kCounter,
     "Chunk tasks executed by the thread pool."},
    {"spca.pca.backend_sweeps", MetricKind::kCounter,
     "Jacobi sweeps spent by the model backends across refits."},
    {"spca.pca.drift_restarts", MetricKind::kCounter,
     "Warm-backend cold restarts triggered by subspace drift."},
    {"spca.pca.fd_shrinks", MetricKind::kCounter,
     "Frequent-Directions sketch shrink operations."},
    {"spca.pca.refit_seconds", MetricKind::kHistogram,
     "Model-backend fit time per refit (any backend)."},
    {"spca.sketch.batches", MetricKind::kCounter,
     "Batched update calls into FlowSketch::add_batch."},
    {"spca.sketch.bucket_merges", MetricKind::kCounter,
     "Variance-histogram bucket merges during sketch maintenance."},
    {"spca.sketch.memory_bytes", MetricKind::kGauge,
     "Resident summary-state bytes of the most recently sized sketch "
     "detector."},
    {"spca.sketch.updates", MetricKind::kCounter,
     "Individual (flow, value) updates applied to flow sketches."},
    {"spca.status.http_errors", MetricKind::kCounter,
     "Status-endpoint requests answered with a 4xx/5xx response."},
    {"spca.status.requests", MetricKind::kCounter,
     "HTTP requests handled by the embedded status endpoint."},
};

}  // namespace

const std::vector<MetricInfo>& metric_catalog() {
  static const std::vector<MetricInfo> catalog(std::begin(kCatalog),
                                               std::end(kCatalog));
  return catalog;
}

const MetricInfo* find_metric(const std::string& name) {
  const auto& catalog = metric_catalog();
  const auto it = std::lower_bound(
      catalog.begin(), catalog.end(), name,
      [](const MetricInfo& info, const std::string& key) {
        return key.compare(info.name) > 0;
      });
  if (it != catalog.end() && name == it->name) return &*it;
  return nullptr;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string render_metrics_doc() {
  std::ostringstream oss;
  oss << "# Metrics reference\n"
         "\n"
         "Every `spca.*` metric registered by the library, grouped by "
         "instrument\n"
         "kind. Counters are monotonically increasing event counts; gauges "
         "are\n"
         "last-write-wins instantaneous values; histograms are log-scale\n"
         "(~9% relative bucket width) and report count/sum/min/max plus\n"
         "p50/p90/p95/p99.\n"
         "\n"
         "All of them are served live by the daemons' `--status-port` "
         "endpoint\n"
         "(`/metrics.json` for the JSON rendering, `/metrics` for Prometheus "
         "text\n"
         "exposition, where `.` maps to `_`) and written at exit via\n"
         "`--metrics-out`.\n"
         "\n"
         "<!-- Generated by spca::render_metrics_doc(); run spca_tests_obs\n"
         "     with SPCA_UPDATE_METRICS_DOC=1 to regenerate. -->\n";
  for (const MetricKind kind :
       {MetricKind::kCounter, MetricKind::kGauge, MetricKind::kHistogram}) {
    oss << "\n## " << (kind == MetricKind::kCounter   ? "Counters"
                       : kind == MetricKind::kGauge ? "Gauges"
                                                    : "Histograms")
        << "\n\n| Name | Meaning |\n|---|---|\n";
    for (const MetricInfo& info : metric_catalog()) {
      if (info.kind != kind) continue;
      oss << "| `" << info.name << "` | " << info.help << " |\n";
    }
  }
  return oss.str();
}

}  // namespace spca
