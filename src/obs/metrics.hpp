// Runtime metrics for the paper's resource claims: named counters, gauges,
// and log-scale latency histograms collected while the detectors run, so
// the O(w log n) monitor cost, the O(m^2 l) NOC cost, and the lazy
// protocol's communication savings are measured artifacts instead of hand
// computations.
//
// All instruments are thread-safe (lock-free atomics on the hot path; a
// mutex guards only name registration and rendering), and references
// returned by the registry stay valid for the registry's lifetime, so call
// sites can resolve a name once and increment forever.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spca {

namespace detail {
/// Atomic add for doubles (std::atomic<double>::fetch_add is not available
/// on every libstdc++ this builds against); CAS loop, relaxed ordering.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing event count.
class Counter final {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. bytes of summary state held).
class Gauge final {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram for positive values (latencies in seconds, sizes in
/// bytes). Buckets grow geometrically by 2^(1/8) (~9% relative width) from
/// `kMinTracked`, so quantile estimates carry at most half a bucket (~4.5%)
/// of relative error. Values below the first bound clamp into bucket 0 and
/// values above the last bound into the final bucket; `min()`/`max()` stay
/// exact regardless.
class Histogram final {
 public:
  /// Smallest distinguishable value: 1 ns when recording seconds.
  static constexpr double kMinTracked = 1e-9;
  /// 8 buckets per power of two.
  static constexpr std::size_t kBucketsPerOctave = 8;
  /// 42 octaves reach kMinTracked * 2^42 ~ 4.4e3 (over an hour in seconds).
  static constexpr std::size_t kBucketCount = 42 * kBucketsPerOctave;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Smallest/largest recorded value; 0.0 while empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Estimated q-quantile (q in [0, 1]); 0.0 while empty. Bucket-resolution
  /// accuracy: the geometric midpoint of the bucket holding the target rank,
  /// clamped to the exact [min, max] range.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

  /// Bucket index a value falls into (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-infinity sentinels while empty; min()/max() translate them to 0.0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Name -> instrument map with process-lifetime reference stability.
class MetricsRegistry final {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. The returned reference stays valid for the
  /// registry's lifetime; resolving the same name twice yields the same
  /// instrument.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Zeroes every registered instrument without invalidating references.
  void reset();

  /// Plain-text exposition, one instrument per line, sorted by name.
  [[nodiscard]] std::string render_text() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with count/sum/mean/min/max/p50/p90/p95/p99 per histogram. Empty
  /// histograms render mean/min/max and all quantiles as `null` — there is
  /// no observed value to report, and 0.0 would be indistinguishable from a
  /// real measurement.
  [[nodiscard]] std::string render_json() const;

  /// Prometheus text exposition (version 0.0.4): `.` in metric names maps
  /// to `_`, counters/gauges emit one sample each, histograms emit a
  /// summary (quantile series + _sum + _count). HELP lines come from the
  /// metric catalog when the name is documented there.
  [[nodiscard]] std::string render_prometheus() const;

  /// Sorted names of every registered instrument of the given kind, for
  /// catalog-coverage checks.
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> gauge_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// The process-wide registry every built-in instrumentation site uses.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace spca
