// Drop-in replacement for BENCHMARK_MAIN() that adds the standard
// observability flag pair to google-benchmark binaries: the micro benches
// run as usual, then the global metrics registry and event trace are
// exported to --metrics-out / --trace-out if given.
//
// Header-only on purpose: the obs library itself does not link against
// google-benchmark; this code compiles inside each micro-bench TU.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/report.hpp"

namespace spca {

/// Extracts --metrics-out/--trace-out from argv (both --flag=value and
/// --flag value forms), forwards the rest to google-benchmark, runs the
/// registered benchmarks, and exports the observability state.
inline int benchmark_main_with_observability(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string* sink = nullptr;
    std::size_t prefix_len = 0;
    if (arg.rfind("--metrics-out", 0) == 0) {
      sink = &metrics_out;
      prefix_len = 13;
    } else if (arg.rfind("--trace-out", 0) == 0) {
      sink = &trace_out;
      prefix_len = 11;
    }
    if (sink != nullptr && arg.size() == prefix_len && i + 1 < argc) {
      *sink = argv[++i];
      continue;
    }
    if (sink != nullptr && arg.size() > prefix_len &&
        arg[prefix_len] == '=') {
      *sink = arg.substr(prefix_len + 1);
      continue;
    }
    rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  export_observability(metrics_out, trace_out);
  return 0;
}

}  // namespace spca

/// BENCHMARK_MAIN() with the --metrics-out / --trace-out flag pair.
#define SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY()                  \
  int main(int argc, char** argv) {                               \
    return ::spca::benchmark_main_with_observability(argc, argv); \
  }
