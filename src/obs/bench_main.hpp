// Drop-in replacement for BENCHMARK_MAIN() that adds the standard
// observability flag pair to google-benchmark binaries: the micro benches
// run as usual, then the global metrics registry and event trace are
// exported to --metrics-out / --trace-out if given.
//
// Two further flags serve the perf harness:
//   --threads N      configures the parallel layer's global pool before any
//                    benchmark runs (0 = hardware concurrency, 1 = serial).
//   --bench-json P   appends one JSONL record per benchmark run to P:
//                    {"suite","name","ns_per_op","threads"}. Append mode on
//                    purpose — the micro binaries share one BENCH_micro.json.
//
// Header-only on purpose: the obs library itself does not link against
// google-benchmark; this code compiles inside each micro-bench TU.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "par/thread_pool.hpp"

namespace spca {

namespace detail {

/// Console passthrough that additionally appends machine-readable JSONL
/// records (one per per-iteration run; aggregates and errored runs are
/// skipped) to the --bench-json file.
class JsonlCaptureReporter final : public benchmark::ConsoleReporter {
 public:
  JsonlCaptureReporter(std::string path, std::string suite)
      : path_(std::move(path)), suite_(std::move(suite)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) return;
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // GetAdjustedRealTime is per-iteration time in the run's time unit.
      const double per_iter_in_unit = run.GetAdjustedRealTime();
      const double unit_per_second =
          benchmark::GetTimeUnitMultiplier(run.time_unit);
      const double ns_per_op = per_iter_in_unit / unit_per_second * 1e9;
      std::fprintf(f,
                   "{\"suite\": \"%s\", \"name\": \"%s\", \"ns_per_op\": "
                   "%.3f, \"threads\": %zu}\n",
                   suite_.c_str(), run.benchmark_name().c_str(), ns_per_op,
                   global_threads());
    }
    std::fclose(f);
  }

 private:
  std::string path_;
  std::string suite_;
};

inline std::string basename_of(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "bench");
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace detail

/// Extracts --metrics-out/--trace-out/--threads/--bench-json from argv
/// (both --flag=value and --flag value forms), forwards the rest to
/// google-benchmark, runs the registered benchmarks, and exports the
/// observability state.
inline int benchmark_main_with_observability(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::string threads_arg;
  std::string bench_json;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string* sink = nullptr;
    std::size_t prefix_len = 0;
    if (arg.rfind("--metrics-out", 0) == 0) {
      sink = &metrics_out;
      prefix_len = 13;
    } else if (arg.rfind("--trace-out", 0) == 0) {
      sink = &trace_out;
      prefix_len = 11;
    } else if (arg.rfind("--bench-json", 0) == 0) {
      sink = &bench_json;
      prefix_len = 12;
    } else if (arg.rfind("--threads", 0) == 0) {
      sink = &threads_arg;
      prefix_len = 9;
    }
    if (sink != nullptr && arg.size() == prefix_len && i + 1 < argc) {
      *sink = argv[++i];
      continue;
    }
    if (sink != nullptr && arg.size() > prefix_len &&
        arg[prefix_len] == '=') {
      *sink = arg.substr(prefix_len + 1);
      continue;
    }
    rest.push_back(argv[i]);
  }
  if (!threads_arg.empty()) {
    set_global_threads(static_cast<std::size_t>(std::stoul(threads_arg)));
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  if (bench_json.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    detail::JsonlCaptureReporter reporter(bench_json,
                                          detail::basename_of(argv[0]));
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  export_observability(metrics_out, trace_out);
  return 0;
}

}  // namespace spca

/// BENCHMARK_MAIN() with the --metrics-out / --trace-out flag pair.
#define SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY()                  \
  int main(int argc, char** argv) {                               \
    return ::spca::benchmark_main_with_observability(argc, argv); \
  }
