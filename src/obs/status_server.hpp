// Embedded live-status endpoint: a deliberately tiny single-threaded
// HTTP/1.0 server the daemons poll from their existing wait loops, serving
//
//   GET /metrics.json  — MetricsRegistry::render_json()
//   GET /metrics       — Prometheus text exposition (render_prometheus())
//   GET /healthz       — 200/503 from the owner's health callback + JSON body
//   GET /spans         — SpanLog::global() as JSONL
//
// Everything is non-blocking: `poll()` sweeps accept/read/write once and
// returns immediately, so a daemon can call it every wait slice without
// ever stalling the detection protocol. Connections are short-lived
// (HTTP/1.0, connection: close) and bounded in number, size, and lifetime,
// so a slow or hostile scraper cannot pin memory or descriptors.
//
// obs sits just above common in the layering — net/ is far above it — so
// this server speaks raw POSIX sockets instead of reusing net/socket.hpp.
// Processes whose main thread blocks (spca_chaos, spca_replay) can instead
// run `serve_in_background()`, which drives poll() from a helper thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace spca {

struct StatusServerConfig {
  /// Bind address; loopback by default so telemetry is not exposed beyond
  /// the host unless explicitly requested.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see `port()`).
  int port = 0;
  /// 200 vs 503 for /healthz; defaults to always-healthy.
  std::function<bool()> healthy;
  /// JSON body for /healthz; defaults to {"healthy":<bool>}.
  std::function<std::string()> health_body;
  /// Request-head cap; a head that grows past this is answered 431.
  std::size_t max_request_bytes = 4096;
  /// Concurrent-connection cap; accepts beyond it are closed immediately.
  std::size_t max_connections = 32;
  /// Per-connection lifetime cap from accept to close.
  std::chrono::milliseconds connection_deadline{2000};
};

class StatusServer final {
 public:
  /// Binds and listens immediately; throws InputError if the address
  /// cannot be bound.
  explicit StatusServer(StatusServerConfig config);
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;
  ~StatusServer();

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// One non-blocking sweep: accept new connections, progress reads and
  /// writes, close finished/expired connections. Never blocks.
  void poll();

  /// Runs poll() on a helper thread every `slice` until destruction or
  /// `stop_background()`, for processes whose main thread blocks.
  void serve_in_background(
      std::chrono::milliseconds slice = std::chrono::milliseconds(20));
  void stop_background();

  /// Connections currently open (excludes the listener); for tests.
  [[nodiscard]] std::size_t open_connections() const noexcept {
    return connections_.size();
  }

 private:
  struct Connection {
    int fd = -1;
    std::string request;
    std::string response;
    std::size_t sent = 0;
    bool responded = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void accept_pending();
  /// Returns false when the connection should be closed.
  [[nodiscard]] bool progress(Connection& conn);
  void respond(Connection& conn);
  [[nodiscard]] std::string route(const std::string& method,
                                  const std::string& path, int& http_status);
  void close_connection(Connection& conn) noexcept;

  StatusServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<Connection> connections_;

  std::thread background_;
  std::atomic<bool> stop_{false};
};

}  // namespace spca
