#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

[[nodiscard]] double unix_now_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void append_escaped(std::ostringstream& oss, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\r':
        oss << "\\r";
        break;
      case '\t':
        oss << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          oss << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
              << std::setfill(' ');
        } else {
          oss << c;
        }
    }
  }
}

/// Dump reasons land in file names: keep [a-z0-9_-], map the rest to '_'.
[[nodiscard]] std::string sanitize_reason(const std::string& reason) {
  std::string out = reason.empty() ? std::string("manual") : reason;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out.substr(0, 48);
}

[[nodiscard]] std::string utc_stamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%dT%H%M%SZ", &tm);
  return buf;
}

}  // namespace

std::string to_json(const FlightEntry& entry) {
  std::ostringstream oss;
  oss << "{\"seq\":" << entry.seq << ",\"unix_s\":"
      << std::setprecision(std::numeric_limits<double>::max_digits10)
      << entry.unix_seconds << ",\"kind\":\"";
  append_escaped(oss, entry.kind);
  oss << "\",\"label\":\"";
  append_escaped(oss, entry.label);
  oss << "\",\"interval\":" << entry.interval;
  if (entry.kind == "metrics") {
    // The detail is itself the registry's JSON rendering; embed it as a
    // value so the dump stays one parseable object per line.
    oss << ",\"metrics\":" << entry.detail;
  } else {
    oss << ",\"detail\":\"";
    append_escaped(oss, entry.detail);
    oss << '"';
  }
  oss << '}';
  return oss.str();
}

void FlightRecorder::configure(std::string dump_dir, std::size_t capacity) {
  SPCA_EXPECTS(capacity >= 1);
  std::error_code ec;
  std::filesystem::create_directories(dump_dir, ec);
  if (ec) {
    log_warn("flight recorder: cannot create dump dir '", dump_dir,
             "': ", ec.message());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  dump_dir_ = std::move(dump_dir);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
  recorded_ = 0;
  enabled_.store(true, std::memory_order_release);
}

bool FlightRecorder::enabled() const {
  return enabled_.load(std::memory_order_acquire);
}

void FlightRecorder::note(std::string label, std::int64_t interval,
                          std::string detail) {
  if (!enabled()) return;
  FlightEntry entry;
  entry.unix_seconds = unix_now_seconds();
  entry.kind = "event";
  entry.label = std::move(label);
  entry.interval = interval;
  entry.detail = std::move(detail);
  const std::lock_guard<std::mutex> lock(mutex_);
  entry.seq = recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[recorded_ % capacity_] = std::move(entry);
  }
  ++recorded_;
}

void FlightRecorder::capture_metrics(std::string label, std::int64_t interval) {
  if (!enabled()) return;
  FlightEntry entry;
  entry.unix_seconds = unix_now_seconds();
  entry.kind = "metrics";
  entry.label = std::move(label);
  entry.interval = interval;
  entry.detail = MetricsRegistry::global().render_json();
  const std::lock_guard<std::mutex> lock(mutex_);
  entry.seq = recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[recorded_ % capacity_] = std::move(entry);
  }
  ++recorded_;
}

std::string FlightRecorder::dump(const std::string& reason) noexcept {
  try {
    if (!enabled()) return std::string();
    std::string dir;
    std::uint64_t dump_index = 0;
    std::vector<FlightEntry> entries;
    std::uint64_t lifetime = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      dir = dump_dir_;
      dump_index = dumps_++;
      lifetime = recorded_;
      entries.reserve(ring_.size());
      if (ring_.size() < capacity_) {
        entries = ring_;
      } else {
        const std::size_t oldest = recorded_ % capacity_;
        for (std::size_t i = 0; i < capacity_; ++i) {
          entries.push_back(ring_[(oldest + i) % capacity_]);
        }
      }
    }
    const std::string path = dir + "/flight-" + utc_stamp() + "-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(dump_index) + "-" +
                             sanitize_reason(reason) + ".jsonl";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn("flight recorder: cannot open '", path, "' for writing");
      return std::string();
    }
    std::ostringstream header;
    header << "{\"kind\":\"dump_header\",\"reason\":\"";
    append_escaped(header, reason);
    header << "\",\"unix_s\":"
           << std::setprecision(std::numeric_limits<double>::max_digits10)
           << unix_now_seconds() << ",\"pid\":" << ::getpid()
           << ",\"entries\":" << entries.size()
           << ",\"recorded\":" << lifetime << '}';
    out << header.str() << '\n';
    for (const FlightEntry& entry : entries) {
      out << to_json(entry) << '\n';
    }
    out.flush();
    if (!out) {
      log_warn("flight recorder: failed writing '", path, "'");
      return std::string();
    }
    MetricsRegistry::global().counter("spca.flight.dumps").inc();
    log_info("flight recorder: dumped ", entries.size(), " entries to ", path,
             " (reason: ", reason, ")");
    return path;
  } catch (...) {
    return std::string();
  }
}

void FlightRecorder::request_dump() noexcept {
  dump_requested_.store(true, std::memory_order_release);
}

std::string FlightRecorder::poll_dump_request() {
  if (!dump_requested_.exchange(false, std::memory_order_acq_rel)) {
    return std::string();
  }
  return dump("signal");
}

std::vector<FlightEntry> FlightRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<FlightEntry> out;
  out.reserve(capacity_);
  const std::size_t oldest = recorded_ % capacity_;
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(oldest + i) % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void FlightRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  dump_requested_.store(false, std::memory_order_release);
  dump_dir_.clear();
  ring_.clear();
  recorded_ = 0;
  dumps_ = 0;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

namespace {

void usr1_handler(int) { FlightRecorder::global().request_dump(); }

std::atomic<bool> fatal_dump_in_progress{false};

void fatal_handler(int signo) {
  // Last-gasp best effort: dump() allocates and locks, which is not
  // async-signal-safe — acceptable here because the process is about to
  // die anyway and the recursion guard stops a handler-within-handler
  // loop. Default disposition is restored first so the re-raise kills the
  // process with the original signal even if dump() wedges a second fault.
  std::signal(signo, SIG_DFL);
  if (!fatal_dump_in_progress.exchange(true)) {
    FlightRecorder::global().dump("fatal-signal-" + std::to_string(signo));
  }
  std::raise(signo);
}

}  // namespace

void install_flight_recorder_signals() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  struct sigaction usr1 {};
  usr1.sa_handler = usr1_handler;
  sigemptyset(&usr1.sa_mask);
  usr1.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &usr1, nullptr);
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    struct sigaction fatal {};
    fatal.sa_handler = fatal_handler;
    sigemptyset(&fatal.sa_mask);
    fatal.sa_flags = 0;
    sigaction(signo, &fatal, nullptr);
  }
}

}  // namespace spca
