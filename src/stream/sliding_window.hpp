// Exact sliding-window containers: the O(n)-space references that the
// streaming structures approximate, used by the Lakhina baseline detector
// and as ground truth in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Exact last-n scalar window with mean/variance queries.
class SlidingWindowStats final {
 public:
  explicit SlidingWindowStats(std::size_t window);

  /// Appends `x`; the oldest element is evicted when the window is full.
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool full() const noexcept {
    return values_.size() == window_;
  }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }

  [[nodiscard]] double mean() const;

  /// Exact sum of squared deviations from the window mean (the V of eq. 10),
  /// computed in two passes for numerical robustness.
  [[nodiscard]] double sum_squared_deviations() const;

  /// Window elements, oldest first.
  [[nodiscard]] const std::deque<double>& values() const noexcept {
    return values_;
  }

 private:
  std::size_t window_;
  std::deque<double> values_;
};

/// Exact last-n window of m-dimensional measurement rows: the X matrix of
/// Sec. III-B kept incrementally.
class SlidingWindowMatrix final {
 public:
  SlidingWindowMatrix(std::size_t window, std::size_t dimensions);

  /// Appends a measurement row (length `dimensions()`).
  void add_row(const Vector& row);

  [[nodiscard]] std::size_t count() const noexcept { return rows_.size(); }
  [[nodiscard]] bool full() const noexcept { return rows_.size() == window_; }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }

  /// Materializes the window as a (count x dimensions) matrix, oldest row
  /// first — the X handed to PCA.
  [[nodiscard]] Matrix to_matrix() const;

  /// Mean of each column over the window.
  [[nodiscard]] Vector column_means() const;

 private:
  std::size_t window_;
  std::size_t dims_;
  std::deque<Vector> rows_;
};

}  // namespace spca
