// Exponential histogram for basic counting over a sliding window.
//
// This is the Datar-Gionis-Indyk-Motwani (SODA'02) substrate that the
// paper's variance histogram generalizes: it maintains an epsilon-accurate
// count of events over the last `n` time steps in O((1/eps) log n) buckets.
// Included both as a reference implementation for tests (the VH inherits its
// bucket-list discipline) and as a useful primitive for volume counting.
#pragma once

#include <cstdint>
#include <deque>

namespace spca {

/// Approximate count of events within a sliding window of `window` steps.
class ExponentialHistogram final {
 public:
  /// `epsilon` bounds the relative error of `estimate()`; smaller epsilon
  /// means more buckets (ceil(1/epsilon) per size class).
  ExponentialHistogram(std::uint64_t window, double epsilon);

  /// Advances time to `t` (non-decreasing across calls) and records `count`
  /// events at that instant.
  void add(std::int64_t t, std::uint64_t count = 1);

  /// Advances time to `t` without recording events (expires old buckets).
  void advance(std::int64_t t);

  /// Estimated number of events in (t - window, t]: exact total of live
  /// buckets minus half of the straddling oldest bucket.
  [[nodiscard]] double estimate() const noexcept;

  /// Exact upper bound on the true count (all live buckets).
  [[nodiscard]] std::uint64_t upper_bound() const noexcept { return total_; }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

 private:
  struct Bucket {
    std::int64_t timestamp;  // most recent event in the bucket
    std::uint64_t size;      // number of events (a power of two)
  };

  void expire(std::int64_t t);
  void merge_overflow();

  std::uint64_t window_;
  double epsilon_;
  std::size_t max_per_size_;   // ceil(1/eps) + 1 buckets allowed per size
  std::int64_t now_ = 0;
  std::uint64_t total_ = 0;    // sum of live bucket sizes
  std::deque<Bucket> buckets_; // newest first
};

}  // namespace spca
