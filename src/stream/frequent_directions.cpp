#include "stream/frequent_directions.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/svd.hpp"

namespace spca {

FrequentDirections::FrequentDirections(std::size_t rows, std::size_t dim)
    : sketch_(rows, dim) {
  SPCA_EXPECTS(rows >= 2);
  SPCA_EXPECTS(dim >= 1);
}

void FrequentDirections::append(std::span<const double> row) {
  SPCA_EXPECTS(row.size() == sketch_.cols());
  if (next_row_ == sketch_.rows()) shrink();
  std::span<double> dest = sketch_.row_span(next_row_);
  std::copy(row.begin(), row.end(), dest.begin());
  ++next_row_;
  ++rows_absorbed_;
}

void FrequentDirections::scale(double factor) {
  SPCA_EXPECTS(factor >= 0.0 && factor <= 1.0);
  if (factor == 1.0) return;
  for (std::size_t r = 0; r < next_row_; ++r) {
    for (std::size_t c = 0; c < sketch_.cols(); ++c) {
      sketch_(r, c) *= factor;
    }
  }
  // The removed mass and deflation track squared mass of the *decayed*
  // stream, so they age at the same rate as the represented rows.
  removed_mass_ *= factor * factor;
  deflation_ *= factor * factor;
}

void FrequentDirections::shrink() {
  // B = U S V^T; replacing B with sqrt(max(S^2 - delta, 0)) V^T where delta
  // is the (l/2+1)-th squared singular value frees half the rows while
  // removing at most delta of covariance mass along any direction.
  const Svd s = svd(sketch_, /*want_left=*/false);
  const std::size_t half = sketch_.rows() / 2;
  const std::size_t kept = std::min(half, s.values.size());
  const double delta =
      half < s.values.size() ? s.values[half] * s.values[half] : 0.0;

  double before = 0.0;
  for (std::size_t j = 0; j < s.values.size(); ++j) {
    before += s.values[j] * s.values[j];
  }
  double after = 0.0;
  Matrix fresh(sketch_.rows(), sketch_.cols());
  for (std::size_t j = 0; j < kept; ++j) {
    const double sq = s.values[j] * s.values[j] - delta;
    if (sq <= 0.0) continue;
    const double scale = std::sqrt(sq);
    after += sq;
    for (std::size_t c = 0; c < sketch_.cols(); ++c) {
      fresh(j, c) = scale * s.right(c, j);
    }
  }
  sketch_ = std::move(fresh);
  next_row_ = kept;
  removed_mass_ += before - after;
  deflation_ += delta;
  ++shrinks_;
}

void FrequentDirections::save_state(ByteWriter& writer) const {
  writer.put(static_cast<std::uint64_t>(sketch_.rows()));
  writer.put(static_cast<std::uint64_t>(sketch_.cols()));
  writer.put(static_cast<std::uint64_t>(next_row_));
  writer.put(rows_absorbed_);
  writer.put(shrinks_);
  writer.put(removed_mass_);
  writer.put(deflation_);
  for (std::size_t r = 0; r < sketch_.rows(); ++r) {
    for (std::size_t c = 0; c < sketch_.cols(); ++c) {
      writer.put(sketch_(r, c));
    }
  }
}

FrequentDirections FrequentDirections::restore_state(ByteReader& reader) {
  const auto rows = reader.get<std::uint64_t>();
  const auto dim = reader.get<std::uint64_t>();
  const auto next_row = reader.get<std::uint64_t>();
  if (rows < 2 || dim < 1 || rows > (1u << 20) || dim > (1u << 20)) {
    throw ProtocolError("FrequentDirections: implausible sketch shape");
  }
  if (next_row > rows) {
    throw ProtocolError("FrequentDirections: active row count out of range");
  }
  FrequentDirections fd(static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(dim));
  fd.next_row_ = static_cast<std::size_t>(next_row);
  fd.rows_absorbed_ = reader.get<std::uint64_t>();
  fd.shrinks_ = reader.get<std::uint64_t>();
  fd.removed_mass_ = reader.get<double>();
  if (!std::isfinite(fd.removed_mass_) || fd.removed_mass_ < 0.0) {
    throw ProtocolError("FrequentDirections: invalid removed mass");
  }
  fd.deflation_ = reader.get<double>();
  if (!std::isfinite(fd.deflation_) || fd.deflation_ < 0.0) {
    throw ProtocolError("FrequentDirections: invalid deflation");
  }
  for (std::size_t r = 0; r < fd.sketch_.rows(); ++r) {
    for (std::size_t c = 0; c < fd.sketch_.cols(); ++c) {
      fd.sketch_(r, c) = reader.get<double>();
    }
  }
  return fd;
}

bool FrequentDirections::operator==(const FrequentDirections& other) const {
  if (sketch_.rows() != other.sketch_.rows() ||
      sketch_.cols() != other.sketch_.cols() ||
      next_row_ != other.next_row_ ||
      rows_absorbed_ != other.rows_absorbed_ || shrinks_ != other.shrinks_ ||
      removed_mass_ != other.removed_mass_ ||
      deflation_ != other.deflation_) {
    return false;
  }
  for (std::size_t r = 0; r < sketch_.rows(); ++r) {
    for (std::size_t c = 0; c < sketch_.cols(); ++c) {
      if (sketch_(r, c) != other.sketch_(r, c)) return false;
    }
  }
  return true;
}

}  // namespace spca
