// Frequent-Directions matrix sketch (Liberty 2013; Ghashami et al. 2016).
//
// Maintains an l x m row sketch B of a stream of m-dimensional rows such
// that 0 <= x^T(A^T A - B^T B)x <= 2 |A|_F^2 / l for every unit x — the
// deterministic matrix analogue of the Misra-Gries frequent-items summary.
// The NOC model backend feeds centered interval rows into it and refits
// from B alone, giving O(l m) memory independent of the window length and
// an O(l^2 m)-bounded shrink cost amortized over l/2 appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "linalg/matrix.hpp"

namespace spca {

/// Streaming Frequent-Directions sketch over rows of fixed dimension.
class FrequentDirections final {
 public:
  /// `rows` is the sketch size l (>= 2, even values use the full l/2 shrink
  /// headroom); `dim` is the row dimension m.
  FrequentDirections(std::size_t rows, std::size_t dim);

  /// Appends one row; shrinks when the sketch is full.
  void append(std::span<const double> row);

  /// Multiplies every active row by `factor` in [0, 1] (and the removed
  /// mass by `factor^2`): exponential forgetting, so B^T B tracks an
  /// exponentially weighted covariance instead of the whole stream.
  void scale(double factor);

  /// The l x m sketch matrix; rows at index >= active_rows() are zero.
  [[nodiscard]] const Matrix& sketch() const noexcept { return sketch_; }
  [[nodiscard]] std::size_t rows() const noexcept { return sketch_.rows(); }
  [[nodiscard]] std::size_t dim() const noexcept { return sketch_.cols(); }
  /// Rows currently carrying data (the next append writes here).
  [[nodiscard]] std::size_t active_rows() const noexcept { return next_row_; }

  /// Rows ever absorbed and shrink cycles performed.
  [[nodiscard]] std::uint64_t rows_absorbed() const noexcept {
    return rows_absorbed_;
  }
  [[nodiscard]] std::uint64_t shrinks() const noexcept { return shrinks_; }

  /// Squared Frobenius mass removed by shrinks so far: |A|_F^2 equals
  /// |B|_F^2 + removed_mass() exactly, which the Q-statistic tail estimate
  /// relies on.
  [[nodiscard]] double removed_mass() const noexcept { return removed_mass_; }

  /// Cumulative shrink deflation Delta = sum of the per-shrink delta_s. The
  /// FD guarantee sandwiches the true covariance as
  /// B^T B <= A^T A <= B^T B + Delta I, so Delta/2 added back to every
  /// squared singular value is the midpoint covariance estimate.
  [[nodiscard]] double deflation() const noexcept { return deflation_; }

  /// Checkpoint support: byte-exact state round trip.
  void save_state(ByteWriter& writer) const;
  [[nodiscard]] static FrequentDirections restore_state(ByteReader& reader);

  [[nodiscard]] bool operator==(const FrequentDirections& other) const;

 private:
  void shrink();

  Matrix sketch_;
  std::size_t next_row_ = 0;
  std::uint64_t rows_absorbed_ = 0;
  std::uint64_t shrinks_ = 0;
  double removed_mass_ = 0.0;
  double deflation_ = 0.0;
};

}  // namespace spca
