#include "stream/sliding_window.hpp"

#include "common/contracts.hpp"

namespace spca {

SlidingWindowStats::SlidingWindowStats(std::size_t window) : window_(window) {
  SPCA_EXPECTS(window >= 1);
}

void SlidingWindowStats::add(double x) {
  values_.push_back(x);
  if (values_.size() > window_) values_.pop_front();
}

double SlidingWindowStats::mean() const {
  SPCA_EXPECTS(!values_.empty());
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SlidingWindowStats::sum_squared_deviations() const {
  SPCA_EXPECTS(!values_.empty());
  const double m = mean();
  double sum = 0.0;
  for (const double v : values_) sum += (v - m) * (v - m);
  return sum;
}

SlidingWindowMatrix::SlidingWindowMatrix(std::size_t window,
                                         std::size_t dimensions)
    : window_(window), dims_(dimensions) {
  SPCA_EXPECTS(window >= 1);
  SPCA_EXPECTS(dimensions >= 1);
}

void SlidingWindowMatrix::add_row(const Vector& row) {
  SPCA_EXPECTS(row.size() == dims_);
  rows_.push_back(row);
  if (rows_.size() > window_) rows_.pop_front();
}

Matrix SlidingWindowMatrix::to_matrix() const {
  Matrix x(rows_.size(), dims_);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    x.set_row(i, rows_[i]);
  }
  return x;
}

Vector SlidingWindowMatrix::column_means() const {
  SPCA_EXPECTS(!rows_.empty());
  Vector mean(dims_);
  for (const auto& r : rows_) mean += r;
  mean /= static_cast<double>(rows_.size());
  return mean;
}

}  // namespace spca
