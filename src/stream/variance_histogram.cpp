#include "stream/variance_histogram.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace spca {

VhBucket merge_buckets(const VhBucket& a, const VhBucket& b) {
  VhBucket out = a;
  merge_into(out, b);
  return out;
}

void merge_into(VhBucket& a, const VhBucket& b) {
  SPCA_EXPECTS(a.payload.size() == b.payload.size());
  if (a.count == 0) {
    a = b;
    return;
  }
  if (b.count == 0) return;

  a.timestamp = std::min(a.timestamp, b.timestamp);  // the older one
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  a.count += b.count;  // eq. (11)
  const double dmean = a.mean - b.mean;
  a.variance =
      a.variance + b.variance + na * nb / (na + nb) * dmean * dmean;  // (13)
  a.mean = (na * a.mean + nb * b.mean) / (na + nb);                   // (12)
  for (std::size_t k = 0; k < a.payload.size(); ++k) {
    a.payload[k] += b.payload[k];  // eqs. (14), (15)
  }
}

VarianceHistogram::VarianceHistogram(std::uint64_t window, double epsilon,
                                     std::size_t payload_size)
    : window_(window), epsilon_(epsilon), payload_size_(payload_size) {
  SPCA_EXPECTS(window >= 2);
  SPCA_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
}

VarianceHistogram VarianceHistogram::from_state(std::uint64_t window,
                                                double epsilon,
                                                std::size_t payload_size,
                                                std::vector<VhBucket> buckets,
                                                std::int64_t now) {
  VarianceHistogram vh(window, epsilon, payload_size);
  std::int64_t previous = now + 1;
  for (const VhBucket& b : buckets) {
    SPCA_EXPECTS(b.timestamp < previous);
    SPCA_EXPECTS(b.count >= 1);
    SPCA_EXPECTS(b.payload.size() == payload_size);
    previous = b.timestamp;
  }
  vh.buckets_.assign(buckets.begin(), buckets.end());
  vh.now_ = now;
  vh.has_elements_ = !buckets.empty();
  return vh;
}

void VarianceHistogram::add(std::int64_t t, double x,
                            std::span<const double> payload) {
  SPCA_EXPECTS(!has_elements_ || t > now_);
  SPCA_EXPECTS(payload.size() == payload_size_);
  now_ = t;
  has_elements_ = true;

  // Step 1: drop the oldest bucket(s) whose time stamp left the window.
  expire(t);

  // Step 2: the new element becomes bucket B_1.
  VhBucket fresh;
  fresh.timestamp = t;
  fresh.count = 1;
  fresh.mean = x;
  fresh.variance = 0.0;
  if (!spare_payloads_.empty()) {
    fresh.payload = std::move(spare_payloads_.back());
    spare_payloads_.pop_back();
  }
  fresh.payload.assign(payload.begin(), payload.end());
  buckets_.push_front(std::move(fresh));

  // Step 3: traverse the list and merge qualified adjacent pairs.
  compact();
}

void VarianceHistogram::recycle(VhBucket& bucket) {
  // Bounded spare pool: enough to absorb the expire+merge churn of one add.
  if (spare_payloads_.size() < 8 && bucket.payload.capacity() > 0) {
    spare_payloads_.push_back(std::move(bucket.payload));
  }
}

void VarianceHistogram::expire(std::int64_t t) {
  while (!buckets_.empty() &&
         buckets_.back().timestamp <=
             t - static_cast<std::int64_t>(window_)) {
    recycle(buckets_.back());
    buckets_.pop_back();
  }
}

namespace {

/// Count/mean/variance triple: the part of a bucket the merge rules read.
/// Keeping the Fig. 3 traversal payload-free makes the per-element update
/// cost independent of the sketch length l — the O(l) payload merge is paid
/// only when a merge actually fires (amortized O(1) merges per element).
struct ScalarStats {
  double count = 0.0;
  double mean = 0.0;
  double variance = 0.0;
};

ScalarStats scalar_of(const VhBucket& b) noexcept {
  return {static_cast<double>(b.count), b.mean, b.variance};
}

ScalarStats scalar_merge(const ScalarStats& a, const ScalarStats& b) noexcept {
  if (a.count == 0.0) return b;
  if (b.count == 0.0) return a;
  ScalarStats out;
  out.count = a.count + b.count;
  out.mean = (a.count * a.mean + b.count * b.mean) / out.count;
  const double dmean = a.mean - b.mean;
  out.variance =
      a.variance + b.variance + a.count * b.count / out.count * dmean * dmean;
  return out;
}

}  // namespace

void VarianceHistogram::compact() {
  // Fig. 3, Step 3. `suffix` is B_B = union of buckets_[0 .. p-1] (the
  // newest p buckets); candidates for merging are buckets_[p] and
  // buckets_[p+1] (the paper's B_{p+1} and B_{p+2}).
  std::size_t p = 1;
  ScalarStats suffix = scalar_of(buckets_.front());
  while (p + 1 < buckets_.size()) {
    const ScalarStats candidate =
        scalar_merge(scalar_of(buckets_[p]), scalar_of(buckets_[p + 1]));
    // Rule 3: never let a merge candidate plus the suffix exceed n/2.
    if (candidate.count + suffix.count >
        static_cast<double>(window_ / 2)) {
      return;
    }
    const ScalarStats with_suffix = scalar_merge(candidate, suffix);
    const bool rule1 = with_suffix.variance - suffix.variance <=
                       (epsilon_ / 5.0) * suffix.variance;
    const bool rule2 =
        candidate.count <= (epsilon_ / 10.0) * suffix.count;
    if (rule1 && rule2) {
      merge_into(buckets_[p], buckets_[p + 1]);  // reuses the payload buffer
      recycle(buckets_[p + 1]);
      buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(p + 1));
      ++merges_;
    } else {
      suffix = scalar_merge(suffix, scalar_of(buckets_[p]));
      ++p;
    }
  }
}

VhBucket VarianceHistogram::aggregate() const {
  VhBucket all;
  aggregate_into(all);
  return all;
}

void VarianceHistogram::aggregate_into(VhBucket& all) const {
  // In-place accumulation: one payload buffer for the whole pass instead of
  // an O(l) allocation per bucket; the buffer itself is the caller's and is
  // only reallocated if its capacity is short.
  all.timestamp = 0;
  all.count = 0;
  all.mean = 0.0;
  all.variance = 0.0;
  all.payload.assign(payload_size_, 0.0);
  for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
    const VhBucket& b = *it;
    if (all.count == 0) {
      all.timestamp = b.timestamp;
      all.count = b.count;
      all.mean = b.mean;
      all.variance = b.variance;
    } else {
      const double na = static_cast<double>(all.count);
      const double nb = static_cast<double>(b.count);
      const double dmean = all.mean - b.mean;
      all.variance += b.variance + na * nb / (na + nb) * dmean * dmean;
      all.mean = (na * all.mean + nb * b.mean) / (na + nb);
      all.count += b.count;
      all.timestamp = std::min(all.timestamp, b.timestamp);
    }
    for (std::size_t k = 0; k < payload_size_; ++k) {
      all.payload[k] += b.payload[k];
    }
  }
}

double VarianceHistogram::variance_estimate() const {
  return aggregate().variance;
}

std::size_t VarianceHistogram::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& b : buckets_) {
    bytes += sizeof(VhBucket) + b.payload.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace spca
