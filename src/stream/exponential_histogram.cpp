#include "stream/exponential_histogram.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace spca {

ExponentialHistogram::ExponentialHistogram(std::uint64_t window,
                                           double epsilon)
    : window_(window), epsilon_(epsilon) {
  SPCA_EXPECTS(window >= 1);
  SPCA_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
  max_per_size_ =
      static_cast<std::size_t>(std::ceil(1.0 / epsilon)) + 1;
}

void ExponentialHistogram::advance(std::int64_t t) {
  SPCA_EXPECTS(t >= now_);
  now_ = t;
  expire(t);
}

void ExponentialHistogram::add(std::int64_t t, std::uint64_t count) {
  advance(t);
  for (std::uint64_t i = 0; i < count; ++i) {
    buckets_.push_front(Bucket{t, 1});
    ++total_;
    merge_overflow();
  }
}

void ExponentialHistogram::expire(std::int64_t t) {
  while (!buckets_.empty() &&
         buckets_.back().timestamp <=
             t - static_cast<std::int64_t>(window_)) {
    total_ -= buckets_.back().size;
    buckets_.pop_back();
  }
}

void ExponentialHistogram::merge_overflow() {
  // Walk size classes from the newest end; whenever a class exceeds its
  // allowance, merge its two oldest members into the next class.
  std::size_t begin = 0;
  while (begin < buckets_.size()) {
    const std::uint64_t size = buckets_[begin].size;
    std::size_t end = begin;
    while (end < buckets_.size() && buckets_[end].size == size) ++end;
    const std::size_t in_class = end - begin;
    if (in_class <= max_per_size_) {
      begin = end;
      continue;
    }
    // Merge the two oldest buckets of this class (indices end-1, end-2);
    // the merged bucket keeps the newer timestamp and doubled size.
    Bucket merged{buckets_[end - 2].timestamp, size * 2};
    buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(end - 1));
    buckets_[end - 2] = merged;
    begin = end - 2;  // re-examine the class the merged bucket joined
  }
}

double ExponentialHistogram::estimate() const noexcept {
  if (buckets_.empty()) return 0.0;
  // All but the oldest bucket are fully inside the window; the oldest bucket
  // straddles the boundary, so count half of it (the DGIM estimator).
  return static_cast<double>(total_) -
         static_cast<double>(buckets_.back().size) / 2.0;
}

}  // namespace spca
