// Variance histogram: epsilon-approximate variance over a sliding window.
//
// Implements the bucket-list algorithm of Zhang & Guan (PODS'07) exactly as
// restated in Fig. 3 of the paper, including the three merge rules
//   Rule 1: V_{A u B} - V_B <= (eps/5) V_B
//   Rule 2: n_A <= (eps/10) n_B
//   Rule 3: n_A + n_B <= n/2
// and the merge equations (11)-(15). Each bucket additionally carries an
// arbitrary *additive payload* vector, merged by element-wise addition; the
// sketch module uses it for the random-projection partial sums Z_pk and R_pk
// (eq. 14, 15) without this module depending on any random-number machinery.
//
// Guarantee (Lemma 1): (1 - eps) V <= V-hat <= V using O((1/eps) log n)
// buckets and O(1) amortized update time.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace spca {

/// One bucket of the variance histogram: summary statistics of a contiguous
/// subsequence of window elements (Sec. IV-B of the paper).
struct VhBucket {
  /// Time stamp of the *oldest* element summarized by the bucket; the bucket
  /// expires (and is dropped whole) once this leaves the window, which is
  /// what makes the estimate an underestimate.
  std::int64_t timestamp = 0;
  /// Number of elements summarized (n_pj).
  std::uint64_t count = 0;
  /// Mean of the summarized elements (mu_pj).
  double mean = 0.0;
  /// Sum of squared deviations from the bucket mean (V_pj, eq. 10 form).
  double variance = 0.0;
  /// Additive side sums (the sketch module stores Z_p1..Z_pl, R_p1..R_pl).
  std::vector<double> payload;
};

/// Merges two buckets with equations (11)-(15); payloads add element-wise.
[[nodiscard]] VhBucket merge_buckets(const VhBucket& a, const VhBucket& b);

/// In-place variant: merges `b` into `a` reusing `a`'s payload storage (the
/// per-merge allocation would otherwise run once per flow per compaction).
/// Performs the identical floating-point operations as `merge_buckets`.
void merge_into(VhBucket& a, const VhBucket& b);

/// The sliding-window variance histogram.
class VarianceHistogram final {
 public:
  /// `window` is the sliding-window length n (in time steps), `epsilon` the
  /// approximation parameter of Lemma 1, `payload_size` the number of
  /// additive side sums each element contributes.
  VarianceHistogram(std::uint64_t window, double epsilon,
                    std::size_t payload_size = 0);

  /// Reconstructs a histogram from previously exported state (see
  /// `buckets()` / `now()`): the checkpoint/restore path. `buckets` must be
  /// newest-first with strictly decreasing timestamps, all payloads of
  /// length `payload_size`; throws ContractViolation otherwise.
  [[nodiscard]] static VarianceHistogram from_state(
      std::uint64_t window, double epsilon, std::size_t payload_size,
      std::vector<VhBucket> buckets, std::int64_t now);

  /// Inserts element `x` observed at time `t` (strictly increasing across
  /// calls) with the element's payload contribution (length `payload_size`).
  void add(std::int64_t t, double x, std::span<const double> payload = {});

  /// Merge of all live buckets: the B_all of eq. (17), whose `variance` is
  /// the V-hat of Lemma 1.
  [[nodiscard]] VhBucket aggregate() const;

  /// Allocation-free variant for per-interval hot paths: writes the merge of
  /// all live buckets into `out`, reusing `out.payload`'s capacity.
  void aggregate_into(VhBucket& out) const;

  /// Estimated variance (sum of squared deviations) over the window.
  [[nodiscard]] double variance_estimate() const;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload_size_;
  }
  [[nodiscard]] std::int64_t now() const noexcept { return now_; }

  /// Lifetime count of bucket merges performed by the Rule 1-3 compaction;
  /// instrumentation reads the delta around `add` (the stream layer itself
  /// stays free of any metrics dependency).
  [[nodiscard]] std::uint64_t merge_count() const noexcept { return merges_; }

  /// Live buckets, newest first (exposed for tests and space accounting).
  [[nodiscard]] const std::deque<VhBucket>& buckets() const noexcept {
    return buckets_;
  }

  /// Bytes of summary state held (for the space-complexity bench).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  void expire(std::int64_t t);
  void compact();
  void recycle(VhBucket& bucket);

  std::uint64_t window_;
  double epsilon_;
  std::size_t payload_size_;
  std::int64_t now_ = 0;
  bool has_elements_ = false;
  std::uint64_t merges_ = 0;
  std::deque<VhBucket> buckets_;  // index 0 = newest (B_1j of the paper)
  // Payload buffers of expired/merged buckets, kept for reuse: the ingest
  // hot path runs one add() per flow per interval, and the O(l) payload
  // allocation per add would otherwise dominate it. Values are always fully
  // overwritten on reuse, so recycling cannot change any result.
  std::vector<std::vector<double>> spare_payloads_;
};

}  // namespace spca
