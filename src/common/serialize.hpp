// Little-endian byte serialization helpers shared by the wire-message codec
// (dist/message) and the detector checkpoint format (core/sketch_detector).
//
// Only trivially copyable scalar types are supported; layouts are explicit
// at every call site so the formats stay greppable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace spca {

/// Appends scalars and scalar runs to a growing byte buffer.
class ByteWriter final {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void put_all(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(values.size()));
    if (values.empty()) return;  // data() may be null; memcpy forbids that
    const std::size_t offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(T));
    std::memcpy(buffer_.data() + offset, values.data(),
                values.size() * sizeof(T));
  }

  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Reads scalars back; throws ProtocolError on truncation.
class ByteReader final {
 public:
  explicit ByteReader(const std::vector<std::byte>& buffer)
      : buffer_(buffer) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > buffer_.size()) {
      throw ProtocolError("ByteReader: truncated buffer");
    }
    T value;
    std::memcpy(&value, buffer_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> get_all() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = get<std::uint64_t>();
    // Divide instead of multiplying: `count * sizeof(T)` can wrap around for
    // a hostile length field, which would pass the bounds check and then
    // allocate/copy out of bounds.
    if (count > remaining() / sizeof(T)) {
      throw ProtocolError("ByteReader: truncated array");
    }
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), buffer_.data() + offset_, count * sizeof(T));
      offset_ += count * sizeof(T);
    }
    return values;
  }

  /// True once every byte has been consumed.
  [[nodiscard]] bool exhausted() const noexcept {
    return offset_ == buffer_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buffer_.size() - offset_;
  }

 private:
  const std::vector<std::byte>& buffer_;
  std::size_t offset_ = 0;
};

}  // namespace spca
