#include "common/contracts.hpp"

#include <sstream>

namespace spca::detail {

void contract_failure(const char* kind, const char* condition,
                      const char* file, int line) {
  std::ostringstream oss;
  oss << kind << " violated: `" << condition << "` at " << file << ':' << line;
  throw ContractViolation(oss.str());
}

}  // namespace spca::detail
