#include "common/crc32.hpp"

#include <array>

namespace spca {

namespace {

/// Table-driven CRC-32, table built once at static-init time.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_crc32_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace spca
