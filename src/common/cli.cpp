#include "common/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

CliFlags::CliFlags(std::string program_description)
    : description_(std::move(program_description)) {}

void CliFlags::define(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  SPCA_EXPECTS(!name.empty());
  for (const auto& f : flags_) {
    SPCA_EXPECTS(f.name != name);
  }
  flags_.push_back(Flag{name, default_value, default_value, help});
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw InputError("unexpected positional argument: '" + arg + "'");
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        throw InputError("flag --" + name + " is missing a value");
      }
      value = argv[++i];
    }
    find(name).value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return f;
  }
  throw InputError("unknown flag: --" + name);
}

CliFlags::Flag& CliFlags::find(const std::string& name) {
  return const_cast<Flag&>(std::as_const(*this).find(name));
}

std::string CliFlags::str(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliFlags::integer(const std::string& name) const {
  const std::string& v = find(name).value;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw InputError("flag --" + name + " expects an integer, got '" + v + "'");
  }
  return out;
}

double CliFlags::real(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw InputError("flag --" + name + " expects a number, got '" + v + "'");
  }
}

bool CliFlags::boolean(const std::string& name) const {
  const std::string& v = find(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InputError("flag --" + name + " expects a boolean, got '" + v + "'");
}

void define_threads_flag(CliFlags& flags) {
  flags.define("threads", "0",
               "execution lanes for the parallel layer (0 = hardware "
               "concurrency, 1 = serial)");
}

void define_transport_flags(CliFlags& flags) {
  flags.define("connect-attempts", "40",
               "max outbound connect attempts before giving up");
  flags.define("connect-timeout-ms", "2000",
               "timeout of a single connect attempt (milliseconds)");
  flags.define("backoff-initial-ms", "25",
               "initial connect retry backoff (milliseconds)");
  flags.define("backoff-max-ms", "2000",
               "connect retry backoff ceiling (milliseconds)");
  flags.define("io-timeout-ms", "15000",
               "read/write deadline on established connections "
               "(milliseconds)");
}

void define_observability_flags(CliFlags& flags) {
  flags.define("metrics-out", "",
               "write the metrics registry as JSON to this path on exit");
  flags.define("trace-out", "",
               "write the detection-event trace as JSON lines to this path "
               "on exit");
  flags.define("span-out", "",
               "write the per-stage interval span log as JSON lines to this "
               "path on exit");
  flags.define("flight-dir", "",
               "enable the crash flight recorder; dumps land in this "
               "directory on SIGUSR1, protocol errors, and fatal signals");
}

std::string CliFlags::usage() const {
  std::ostringstream oss;
  oss << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    oss << "  --" << f.name << " (default: "
        << (f.default_value.empty() ? "\"\"" : f.default_value) << ")\n      "
        << f.help << '\n';
  }
  return oss.str();
}

}  // namespace spca
