// Minimal leveled logger. Output goes to stderr so benches can keep stdout
// clean for result tables.
#pragma once

#include <sstream>
#include <string>

namespace spca {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);
}  // namespace detail

/// Logs `message` at `level` if it passes the global filter.
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace spca
