// Minimal leveled logger. Output goes to stderr so benches can keep stdout
// clean for result tables.
//
// Every line carries an ISO-8601 UTC timestamp and a level tag:
//
//   2026-08-05T12:34:56.789Z [INFO] message
//
// The initial minimum level can be overridden with the SPCA_LOG_LEVEL
// environment variable (debug | info | warn | error, case-insensitive);
// set_log_level() still wins afterwards. Per-interval instrumentation that
// would flood stderr should go through SPCA_LOG_EVERY_N.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace spca {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a level name ("debug", "INFO", "Warn", "error"); nullopt if the
/// name is unknown. Used for the SPCA_LOG_LEVEL environment override and
/// exposed for flag parsing.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

namespace detail {
void log_line(LogLevel level, const std::string& message);

/// ISO-8601 UTC timestamp with millisecond precision (exposed for tests).
[[nodiscard]] std::string iso8601_utc_now();
}  // namespace detail

/// Logs `message` at `level` if it passes the global filter.
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace spca

/// Logs only the 1st, (n+1)th, (2n+1)th ... execution of this statement
/// (per call site, thread-safe), so per-interval instrumentation cannot
/// flood stderr. `n` must be >= 1.
#define SPCA_LOG_EVERY_N(n, level, ...)                                      \
  do {                                                                       \
    static std::atomic<std::uint64_t> spca_log_every_n_counter{0};           \
    if (spca_log_every_n_counter.fetch_add(1, std::memory_order_relaxed) %   \
            static_cast<std::uint64_t>(n) ==                                 \
        0) {                                                                 \
      ::spca::log((level), __VA_ARGS__);                                     \
    }                                                                        \
  } while (0)
