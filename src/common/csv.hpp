// Minimal CSV writing/reading used by the benchmark harness and the trace
// reader/writer. Values are written unquoted; fields therefore must not
// contain commas or newlines (enforced by contract).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace spca {

/// Streams rows of a CSV table to a file. The header row is written on
/// construction; each call to `row` appends one data row.
class CsvWriter final {
 public:
  /// Opens `path` for writing and emits `header` as the first row.
  /// Throws InputError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; `fields.size()` must equal the header width.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  void row_numeric(const std::vector<double>& values);

  /// Number of data rows written so far (excluding the header).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Reads an entire CSV file into memory. Intended for small result files and
/// trace metadata, not multi-gigabyte inputs.
class CsvReader final {
 public:
  /// Parses `path`; the first row is treated as the header.
  /// Throws InputError on I/O failure or ragged rows.
  explicit CsvReader(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Column index for a header name; throws InputError if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Splits one CSV line on commas (no quoting support).
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Formats a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double value);

}  // namespace spca
