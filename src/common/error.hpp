// Error taxonomy for the spca library.
//
// Recoverable runtime failures (bad input files, numerical breakdown,
// protocol violations between simulated nodes) derive from spca::Error so
// applications can catch library failures distinctly from std exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace spca {

/// Base class of all recoverable spca runtime errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or unreadable external input (trace files, CSV, CLI flags).
class InputError final : public Error {
 public:
  using Error::Error;
};

/// A numerical routine failed to converge or encountered an invalid value.
class NumericalError final : public Error {
 public:
  using Error::Error;
};

/// A distributed-protocol invariant was broken (e.g. a sketch response for
/// an interval the NOC never requested, or a malformed wire frame).
class ProtocolError final : public Error {
 public:
  using Error::Error;
};

/// A socket-level transport failure: connect/accept failure, I/O timeout,
/// or a peer that vanished beyond the reconnect budget.
class TransportError final : public Error {
 public:
  using Error::Error;
};

}  // namespace spca
