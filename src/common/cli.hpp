// Tiny declarative command-line flag parser for examples and benches.
//
// Supported syntax: --name=value and --name value; `--help` prints usage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spca {

/// Collects flag definitions, parses argv, and exposes typed lookups.
class CliFlags final {
 public:
  explicit CliFlags(std::string program_description);

  /// Declares a flag with a default value and help text. Declaration order is
  /// preserved in `usage()`.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. Throws InputError on unknown flags or missing values.
  /// Returns false if `--help` was requested (usage already printed).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  [[nodiscard]] bool boolean(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
  };

  [[nodiscard]] const Flag& find(const std::string& name) const;
  Flag& find(const std::string& name);

  std::string description_;
  std::vector<Flag> flags_;
};

/// Defines the standard observability flags every bench, example, and
/// daemon shares: --metrics-out (JSON metrics report path), --trace-out
/// (JSON-lines detection-event trace path), --span-out (JSON-lines
/// per-stage interval span path), and --flight-dir (flight-recorder dump
/// directory), all defaulting to "" (off). obs/report.hpp's
/// configure_observability(flags) / export_observability(flags) consume
/// them.
void define_observability_flags(CliFlags& flags);

/// Defines the standard `--threads` flag (execution lanes for the parallel
/// layer; 0 = hardware concurrency, 1 = fully serial). par/thread_pool.hpp's
/// configure_threads_from_flag(flags) consumes it.
void define_threads_flag(CliFlags& flags);

/// Defines the transport tuning flags every socket daemon shares:
/// --connect-attempts, --connect-timeout-ms, --backoff-initial-ms,
/// --backoff-max-ms (outbound dial retry policy) and --io-timeout-ms
/// (read/write deadline on established connections). net/net_flags.hpp's
/// retry_policy_from_flags / io_timeout_from_flags consume them; chaos tests
/// use them to avoid hard-coded multi-second waits.
void define_transport_flags(CliFlags& flags);

}  // namespace spca
