// Lightweight contract checking in the spirit of GSL Expects/Ensures.
//
// Contract violations indicate programmer error (a broken precondition or
// postcondition), not recoverable runtime conditions, so they throw a
// dedicated exception type that callers are not expected to catch except in
// tests.
#pragma once

#include <stdexcept>
#include <string>

namespace spca {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation final : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line);
}  // namespace detail

}  // namespace spca

/// Precondition check: use at function entry to validate arguments/state.
#define SPCA_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::spca::detail::contract_failure("precondition", #cond, __FILE__,     \
                                       __LINE__);                           \
    }                                                                       \
  } while (false)

/// Postcondition check: use before returning to validate produced state.
#define SPCA_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::spca::detail::contract_failure("postcondition", #cond, __FILE__,    \
                                       __LINE__);                           \
    }                                                                       \
  } while (false)
