// Durable, CRC-guarded, versioned snapshot files — the persistence half of
// the fault-recovery subsystem (see DESIGN.md §11). The store is a plain
// mechanism (atomic write, scan, validate) and lives in common/ so the net
// daemons can use it; the policy of *what* to snapshot and when lives with
// the daemons and src/fault/.
//
// On-disk layout of one snapshot (little-endian):
//
//   u32 magic 'SPCK' | u32 version | u64 seq | u64 payload_size
//   | u32 crc (CRC-32 over the seq and payload_size fields + payload)
//   | payload
//
// Files are named `<name>.<seq>.ckpt` inside the store directory. Writes go
// to a temporary file first and are renamed into place, so a crash mid-write
// leaves at most a stray .tmp, never a half-written snapshot. load_latest()
// walks snapshots newest-first and falls back to an older one when the
// newest fails validation — a torn or bit-flipped file costs one checkpoint
// interval, not the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spca {

/// One validated snapshot read back from disk.
struct CheckpointSnapshot {
  /// Monotonic sequence number (for the daemons: the next interval to run).
  std::uint64_t seq = 0;
  /// The application blob (e.g. LocalMonitor::save_state output).
  std::vector<std::byte> payload;
  /// The file it came from.
  std::string path;
};

/// Manages the snapshot files of one named node inside a directory.
class CheckpointStore final {
 public:
  /// Creates `dir` (and parents) if missing. `name` distinguishes nodes
  /// sharing a directory (e.g. "monitor1", "noc"); `retain` bounds how many
  /// snapshots of this node are kept on disk (oldest pruned first, >= 1).
  CheckpointStore(std::string dir, std::string name, std::size_t retain = 3);

  /// Atomically writes a snapshot; returns its path. Prunes old snapshots
  /// beyond the retain limit. Throws TransportError on I/O failure.
  std::string write(std::uint64_t seq, const std::vector<std::byte>& payload);

  /// Newest snapshot that validates (magic, version, size, CRC); corrupt
  /// newer files are skipped with a warning. nullopt when none survives.
  [[nodiscard]] std::optional<CheckpointSnapshot> load_latest() const;

  /// Paths of this node's snapshot files, oldest first.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Reads and validates one snapshot file; throws ProtocolError on any
  /// corruption (bad magic/version, truncation, trailing bytes, CRC
  /// mismatch) and TransportError if the file cannot be read.
  [[nodiscard]] static CheckpointSnapshot read_snapshot(
      const std::string& path);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string dir_;
  std::string name_;
  std::size_t retain_;
};

}  // namespace spca
