// Monotonic wall-clock stopwatch for the benchmark harness.
#pragma once

#include <chrono>

namespace spca {

/// Measures elapsed time from construction or the last `reset()`.
class Stopwatch final {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

  [[nodiscard]] double microseconds() const noexcept {
    return seconds() * 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spca
