#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/contracts.hpp"

namespace spca {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SPCA_EXPECTS(!header_.empty());
}

void TablePrinter::row(std::vector<std::string> fields) {
  SPCA_EXPECTS(fields.size() == header_.size());
  rows_.push_back(std::move(fields));
}

void TablePrinter::row_numeric(const std::vector<double>& values,
                               int precision) {
  SPCA_EXPECTS(precision > 0 && precision <= 17);
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    fields.emplace_back(buf);
  }
  row(std::move(fields));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      for (std::size_t pad = r[c].size(); pad < width[c]; ++pad) os << ' ';
      os << r[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

}  // namespace spca
