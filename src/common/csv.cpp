#include "common/csv.hpp"

#include <charconv>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string format_double(double value) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  SPCA_ENSURES(n > 0 && static_cast<std::size_t>(n) < sizeof buf);
  return std::string(buf, static_cast<std::size_t>(n));
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  SPCA_EXPECTS(!header.empty());
  if (!out_) {
    throw InputError("CsvWriter: cannot open '" + path + "' for writing");
  }
  row(header);
  rows_ = 0;  // header is not a data row
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  SPCA_EXPECTS(fields.size() == width_);
  bool first = true;
  for (const auto& f : fields) {
    SPCA_EXPECTS(f.find_first_of(",\n\r") == std::string::npos);
    if (!first) out_ << ',';
    out_ << f;
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v));
  row(fields);
}

CsvReader::CsvReader(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InputError("CsvReader: cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw InputError("CsvReader: '" + path + "' is empty");
  }
  header_ = split_csv_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (fields.size() != header_.size()) {
      throw InputError("CsvReader: ragged row in '" + path + "'");
    }
    rows_.push_back(std::move(fields));
  }
}

std::size_t CsvReader::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw InputError("CsvReader: no column named '" + std::string(name) + "'");
}

}  // namespace spca
