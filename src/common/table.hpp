// Console table printer used by the benchmark harness to emit the rows and
// series that correspond to the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spca {

/// Accumulates rows and prints them with aligned, right-justified columns.
class TablePrinter final {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void row(std::vector<std::string> fields);

  /// Convenience: formats doubles with `precision` significant digits.
  void row_numeric(const std::vector<double>& values, int precision = 6);

  /// Writes the full table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spca
