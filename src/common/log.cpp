#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace spca {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace spca
