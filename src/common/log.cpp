#include "common/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

namespace spca {

namespace {

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel initial_level() noexcept {
  const char* env = std::getenv("SPCA_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace detail {

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

void log_line(LogLevel level, const std::string& message) {
  std::cerr << iso8601_utc_now() << " [" << level_name(level) << "] "
            << message << '\n';
}

}  // namespace detail

}  // namespace spca
