#include "common/checkpoint_store.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/contracts.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace spca {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4B435053;  // "SPCK"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4;

void put_raw(std::vector<std::byte>& out, const void* data, std::size_t n) {
  if (n == 0) return;  // an empty payload has a null data()
  const std::size_t offset = out.size();
  out.resize(offset + n);
  std::memcpy(out.data() + offset, data, n);
}

template <typename T>
T read_raw(const std::vector<std::byte>& buf, std::size_t offset) {
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  return value;
}

/// Parses the sequence number out of "<name>.<seq>.ckpt"; nullopt when the
/// filename does not belong to `name`.
std::optional<std::uint64_t> seq_of(const std::string& filename,
                                    const std::string& name) {
  const std::string prefix = name + ".";
  const std::string suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const char* first = filename.data() + prefix.size();
  const char* last = filename.data() + filename.size() - suffix.size();
  std::uint64_t seq = 0;
  const auto [ptr, ec] = std::from_chars(first, last, seq);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return seq;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::string name,
                                 std::size_t retain)
    : dir_(std::move(dir)), name_(std::move(name)), retain_(retain) {
  SPCA_EXPECTS(!dir_.empty());
  SPCA_EXPECTS(!name_.empty());
  SPCA_EXPECTS(retain_ >= 1);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw TransportError("checkpoint: cannot create directory " + dir_ + ": " +
                         ec.message());
  }
}

std::string CheckpointStore::write(std::uint64_t seq,
                                   const std::vector<std::byte>& payload) {
  std::vector<std::byte> file;
  file.reserve(kHeaderBytes + payload.size());
  put_raw(file, &kMagic, sizeof(kMagic));
  put_raw(file, &kVersion, sizeof(kVersion));
  put_raw(file, &seq, sizeof(seq));
  const std::uint64_t size = payload.size();
  put_raw(file, &size, sizeof(size));
  // The CRC covers everything the header promises (seq, size) plus the
  // payload, so a flip anywhere but the magic/version bytes is caught by it
  // and those two are checked verbatim.
  std::uint32_t crc = crc32_update(kCrc32Init, &seq, sizeof(seq));
  crc = crc32_update(crc, &size, sizeof(size));
  crc = crc32_finish(crc32_update(crc, payload.data(), payload.size()));
  put_raw(file, &crc, sizeof(crc));
  put_raw(file, payload.data(), payload.size());

  const fs::path final_path =
      fs::path(dir_) / (name_ + "." + std::to_string(seq) + ".ckpt");
  const fs::path tmp_path = fs::path(final_path.string() + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw TransportError("checkpoint: cannot open " + tmp_path.string());
    }
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) {
      throw TransportError("checkpoint: short write to " + tmp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    throw TransportError("checkpoint: cannot rename " + tmp_path.string() +
                         ": " + ec.message());
  }

  // Prune beyond the retain limit, oldest first.
  std::vector<std::string> snapshots = list();
  while (snapshots.size() > retain_) {
    fs::remove(snapshots.front(), ec);  // best effort
    snapshots.erase(snapshots.begin());
  }
  return final_path.string();
}

std::vector<std::string> CheckpointStore::list() const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    if (const auto seq = seq_of(filename, name_)) {
      found.emplace_back(*seq, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

CheckpointSnapshot CheckpointStore::read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw TransportError("checkpoint: cannot open " + path);
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  if (file_size < static_cast<std::streamsize>(kHeaderBytes)) {
    throw ProtocolError("checkpoint: truncated header in " + path);
  }
  std::vector<std::byte> file(static_cast<std::size_t>(file_size));
  in.read(reinterpret_cast<char*>(file.data()), file_size);
  if (!in) throw TransportError("checkpoint: cannot read " + path);

  if (read_raw<std::uint32_t>(file, 0) != kMagic) {
    throw ProtocolError("checkpoint: bad magic in " + path);
  }
  if (read_raw<std::uint32_t>(file, 4) != kVersion) {
    throw ProtocolError("checkpoint: unknown version in " + path);
  }
  const auto seq = read_raw<std::uint64_t>(file, 8);
  const auto size = read_raw<std::uint64_t>(file, 16);
  const auto expected_crc = read_raw<std::uint32_t>(file, 24);
  if (size != file.size() - kHeaderBytes) {
    throw ProtocolError("checkpoint: payload size mismatch in " + path);
  }
  std::uint32_t crc = crc32_update(kCrc32Init, &seq, sizeof(seq));
  crc = crc32_update(crc, &size, sizeof(size));
  crc = crc32_finish(
      crc32_update(crc, file.data() + kHeaderBytes, file.size() - kHeaderBytes));
  if (crc != expected_crc) {
    throw ProtocolError("checkpoint: crc mismatch in " + path);
  }

  CheckpointSnapshot snapshot;
  snapshot.seq = seq;
  snapshot.payload.assign(file.begin() + static_cast<std::ptrdiff_t>(
                                             kHeaderBytes),
                          file.end());
  snapshot.path = path;
  return snapshot;
}

std::optional<CheckpointSnapshot> CheckpointStore::load_latest() const {
  std::vector<std::string> snapshots = list();
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    try {
      return read_snapshot(*it);
    } catch (const Error& e) {
      log_warn("checkpoint: skipping ", *it, ": ", e.what());
    }
  }
  return std::nullopt;
}

}  // namespace spca
