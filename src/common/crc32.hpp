// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum shared
// by the wire frame codec and the checkpoint files. One implementation so a
// frame CRC and a snapshot CRC can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spca {

/// Initial/streaming state for an incremental CRC-32 computation.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `n` bytes into a running CRC state. Start from kCrc32Init, finish
/// with crc32_finish. Safe to call with n == 0 (data may then be null).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                         std::size_t n) noexcept;

/// Final xor of the streaming state.
[[nodiscard]] constexpr std::uint32_t crc32_finish(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range. crc32("123456789") == 0xCBF43926.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t n) noexcept {
  return crc32_finish(crc32_update(kCrc32Init, data, n));
}

}  // namespace spca
