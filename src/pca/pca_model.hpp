// The PCA subspace model of Sec. III-B/III-C, usable both for the exact
// Lakhina baseline (built from the full n x m window matrix Y) and for the
// paper's method (built from the l x m sketch matrix Z-hat).
//
// A model consists of the singular values (eta_j or lambda-hat_j), the
// principal components (right singular vectors, an orthonormal basis of
// R^m), the column means used to center new measurement vectors, and the
// effective sample count n used to convert singular values into per-component
// standard deviations (eq. 9).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace spca {

/// Fitted PCA model: basis, spectrum, and centering information.
class PcaModel final {
 public:
  PcaModel() = default;

  /// Fits from a raw (uncentered) n x m measurement matrix X: centers the
  /// columns and takes the SVD of Y (exact Lakhina-style PCA).
  [[nodiscard]] static PcaModel from_data(const Matrix& x);

  /// Reassembles a model from its parts (checkpoint restore, model
  /// backends). `components` must be m x m; its first `basis_cols` columns
  /// are genuine orthonormal principal directions matching
  /// `singular_values`, any trailing columns are zero padding from a
  /// truncated (rsvd/fd) fit. `basis_cols == 0` means all m columns are
  /// genuine (the full-decomposition case).
  [[nodiscard]] static PcaModel from_parts(Vector singular_values,
                                           Matrix components,
                                           Vector column_means,
                                           std::uint64_t sample_count,
                                           std::size_t basis_cols = 0);

  /// Fits from the centered Gram matrix G = Y^T Y (exactly what a streaming
  /// implementation maintains incrementally). The eigenvalues of G are the
  /// squared singular values of Y; tiny negative eigenvalues from rounding
  /// are clamped to zero. `warm_basis`, when non-null, must be the previous
  /// model's component matrix — consecutive sliding-window refits barely
  /// rotate the basis, so warm-starting the eigensolver cuts its sweep
  /// count (see eigen_symmetric_warm).
  [[nodiscard]] static PcaModel from_covariance(
      const Matrix& centered_gram, Vector column_means,
      std::uint64_t sample_count, const Matrix* warm_basis = nullptr);

  /// Fits from an l x m sketch matrix Z-hat (already centered by
  /// construction of eq. 17). `column_means` are the mu_all,j reported by
  /// the monitors and `sample_count` the window length n, needed by eq. (9)/
  /// (23) to scale the spectrum.
  [[nodiscard]] static PcaModel from_sketch(const Matrix& z_hat,
                                            Vector column_means,
                                            std::uint64_t sample_count);

  [[nodiscard]] bool fitted() const noexcept { return dims_ > 0; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return sample_count_;
  }

  /// Singular values in descending order (length m; for sketches with
  /// l < m the trailing values are zero).
  [[nodiscard]] const Vector& singular_values() const noexcept {
    return singular_values_;
  }

  /// Orthonormal principal components as columns of an m x m matrix. Only
  /// the first basis_cols() columns are guaranteed genuine; truncated
  /// backends zero-pad the rest.
  [[nodiscard]] const Matrix& components() const noexcept {
    return components_;
  }

  /// Number of genuine (orthonormal, spectrum-backed) leading columns in
  /// components(). Full decompositions report m; truncated backends report
  /// the recovered subspace width, and detection ranks must be clamped to
  /// it.
  [[nodiscard]] std::size_t basis_cols() const noexcept { return basis_cols_; }

  [[nodiscard]] const Vector& column_means() const noexcept { return means_; }

  /// Per-component standard deviation sigma_j = eta_j / sqrt(n-1) (eq. 9).
  [[nodiscard]] double component_std(std::size_t j) const;

  /// Centers a raw measurement vector: y* = x - mu (eq. 19's y_i*).
  [[nodiscard]] Vector center(const Vector& x) const;

  /// Squared-prediction-error distance of a raw measurement vector from the
  /// normal subspace spanned by the first `r` components:
  /// d = |(I - P P^T) y*|  computed as  sqrt(|y*|^2 - sum_{j<=r} (v_j^T y*)^2)
  /// (eqs. 5, 19, 21).
  [[nodiscard]] double anomaly_distance(const Vector& x, std::size_t r) const;

  /// Splits a centered vector into (normal, anomaly) components for
  /// diagnosis (eq. 4).
  struct Split {
    Vector normal;
    Vector anomaly;
  };
  [[nodiscard]] Split split(const Vector& x, std::size_t r) const;

 private:
  std::size_t dims_ = 0;
  std::size_t basis_cols_ = 0;
  std::uint64_t sample_count_ = 0;
  Vector singular_values_;
  Matrix components_;
  Vector means_;
};

/// Smallest r whose leading components capture at least `fraction` of the
/// total spectral energy (sum of squared singular values); the "90% energy"
/// rule of Sec. VI. Returns at least 1 (if any energy) and at most m.
[[nodiscard]] std::size_t select_rank_by_energy(const Vector& singular_values,
                                                double fraction);

/// Cattell's Scree test (the other heuristic Sec. IV-D names): walks the
/// spectrum of squared singular values looking for the "elbow" — the last
/// index whose drop to the next value still exceeds `knee_fraction` of the
/// largest drop. Components before the elbow form the normal subspace.
/// Returns r in [1, m].
[[nodiscard]] std::size_t select_rank_by_scree(const Vector& singular_values,
                                               double knee_fraction = 0.1);

/// The 3-sigma heuristic of Sec. IV-D (and Lakhina'04): examines the
/// projection of the fitted data onto each component in order; the first
/// component whose projection contains an element more than `k` standard
/// deviations from its mean starts the anomaly subspace. `data` is the
/// matrix the model was fitted on (Y or Z-hat). Returns r in [0, m].
[[nodiscard]] std::size_t select_rank_by_ksigma(const Matrix& data,
                                                const PcaModel& model,
                                                double k = 3.0);

}  // namespace spca
