#include "pca/q_statistic.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace spca {

double inverse_normal_cdf(double p) {
  SPCA_EXPECTS(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation with one Halley refinement step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against the true CDF for full precision.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

ResidualMoments residual_moments(const Vector& singular_values,
                                 std::size_t normal_rank,
                                 std::uint64_t sample_count) {
  SPCA_EXPECTS(normal_rank <= singular_values.size());
  SPCA_EXPECTS(sample_count >= 2);
  ResidualMoments m;
  const double denom = static_cast<double>(sample_count - 1);
  for (std::size_t j = normal_rank; j < singular_values.size(); ++j) {
    const double var = singular_values[j] * singular_values[j] / denom;
    m.phi1 += var;
    m.phi2 += var * var;
    m.phi3 += var * var * var;
  }
  return m;
}

double q_statistic_threshold_squared(const Vector& singular_values,
                                     std::size_t normal_rank,
                                     std::uint64_t sample_count,
                                     double alpha) {
  SPCA_EXPECTS(alpha > 0.0 && alpha < 1.0);
  const ResidualMoments m =
      residual_moments(singular_values, normal_rank, sample_count);
  if (m.phi1 <= 0.0 || m.phi2 <= 0.0) {
    // Degenerate residual spectrum: no normal fluctuation is expected in the
    // residual subspace, so any residual energy is an alarm.
    return 0.0;
  }
  const double c_alpha = inverse_normal_cdf(1.0 - alpha);
  const double h0 = 1.0 - 2.0 * m.phi1 * m.phi3 / (3.0 * m.phi2 * m.phi2);
  if (h0 == 0.0) return 0.0;
  const double bracket = c_alpha * std::sqrt(2.0 * m.phi2 * h0 * h0) / m.phi1 +
                         1.0 +
                         m.phi2 * h0 * (h0 - 1.0) / (m.phi1 * m.phi1);
  if (bracket <= 0.0) return 0.0;
  return m.phi1 * std::pow(bracket, 1.0 / h0);
}

double q_statistic_threshold(const Vector& singular_values,
                             std::size_t normal_rank,
                             std::uint64_t sample_count, double alpha) {
  return std::sqrt(q_statistic_threshold_squared(singular_values, normal_rank,
                                                 sample_count, alpha));
}

}  // namespace spca
