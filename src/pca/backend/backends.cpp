// The four ModelBackend implementations. They live behind the factory so
// call sites depend only on the interface; tests exercise them through
// make_model_backend with the kind they want.
#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/rand_range.hpp"
#include "linalg/svd.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "pca/backend/model_backend.hpp"
#include "rand/splitmix64.hpp"
#include "stream/frequent_directions.hpp"

namespace spca {

namespace {

Histogram& refit_seconds_metric() {
  static Histogram& h =
      MetricsRegistry::global().histogram("spca.pca.refit_seconds");
  return h;
}

Counter& backend_sweeps_metric() {
  static Counter& c =
      MetricsRegistry::global().counter("spca.pca.backend_sweeps");
  return c;
}

Counter& drift_restarts_metric() {
  static Counter& c =
      MetricsRegistry::global().counter("spca.pca.drift_restarts");
  return c;
}

Counter& fd_shrinks_metric() {
  static Counter& c = MetricsRegistry::global().counter("spca.pca.fd_shrinks");
  return c;
}

/// sqrt(max(lambda, 0)) for every eigenvalue: the eigenvalues of a centered
/// Gram matrix are squared singular values, with tiny negatives from
/// rounding clamped away.
Vector singular_from_eigen(const Vector& eigenvalues) {
  Vector out(eigenvalues.size());
  for (std::size_t j = 0; j < eigenvalues.size(); ++j) {
    out[j] = std::sqrt(std::max(eigenvalues[j], 0.0));
  }
  return out;
}

/// Assembles a full m-length spectrum and zero-padded m x m basis from a
/// truncated head of `head_values` / `head_basis` (m x d). The unseen tail
/// carries `tail_mass` of squared singular mass exactly (so phi_1 of the
/// Q-statistic is conserved), shaped as a geometric continuation of the
/// head's decay: backbone spectra fall smoothly across all m components,
/// and a flat tail at the average level badly underestimates phi_2/phi_3 —
/// which shrinks the Q threshold and floods the detector with false
/// alarms. The decay ratio comes from the last two head eigenvalues,
/// clamped away from 0 and 1; a degenerate head falls back to uniform.
PcaModel model_from_truncated(const Vector& head_values,
                              const Matrix& head_basis, Vector column_means,
                              std::uint64_t sample_count, double tail_mass) {
  const std::size_t m = head_basis.rows();
  const std::size_t d = head_basis.cols();
  SPCA_EXPECTS(d <= m && head_values.size() >= d);
  Vector values(m);
  for (std::size_t j = 0; j < d; ++j) {
    values[j] = head_values[j];
  }
  if (m > d && tail_mass > 0.0) {
    double ratio = 1.0;
    if (d >= 2 && head_values[d - 2] > 0.0 && head_values[d - 1] > 0.0) {
      const double last = head_values[d - 1] * head_values[d - 1];
      const double prev = head_values[d - 2] * head_values[d - 2];
      ratio = std::clamp(last / prev, 0.05, 0.95);
    }
    const std::size_t tail_len = m - d;
    double weight = 1.0;
    double weight_sum = 0.0;
    for (std::size_t j = 0; j < tail_len; ++j) {
      weight *= ratio;
      weight_sum += weight;
    }
    weight = 1.0;
    for (std::size_t j = 0; j < tail_len; ++j) {
      weight *= ratio;
      values[d + j] = std::sqrt(tail_mass * weight / weight_sum);
    }
  }
  Matrix components(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      components(i, j) = head_basis(i, j);
    }
  }
  return PcaModel::from_parts(std::move(values), std::move(components),
                              std::move(column_means), sample_count, d);
}

double trace(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, i);
  return sum;
}

// ---------------------------------------------------------------------------

/// (a) The accuracy reference: exactly the pre-backend code paths — cold
/// one-sided-Jacobi SVD of the sketch rows, cold two-sided Jacobi of the
/// Gram matrix.
class ExactBackend final : public ModelBackend {
 public:
  explicit ExactBackend(const ModelBackendConfig& config)
      : ModelBackend(config) {}

  PcaModel fit_rows(const Matrix& rows, Vector column_means,
                    std::uint64_t sample_count) override {
    const ScopedTimer timer(refit_seconds_metric());
    return PcaModel::from_sketch(rows, std::move(column_means), sample_count);
  }

  PcaModel fit_gram(const Matrix& centered_gram, Vector column_means,
                    std::uint64_t sample_count) override {
    const ScopedTimer timer(refit_seconds_metric());
    EigenSym e = eigen_symmetric(centered_gram);
    backend_sweeps_metric().inc(static_cast<std::uint64_t>(e.sweeps));
    return PcaModel::from_parts(singular_from_eigen(e.values),
                                std::move(e.vectors), std::move(column_means),
                                sample_count);
  }
};

// ---------------------------------------------------------------------------

/// (b) Warm-started Jacobi (the default): seeds each refit with the
/// previous basis, under a sweep budget with cold fallback, and drops the
/// basis entirely — a cold restart — when the subspace rotated more than
/// `drift_threshold` between consecutive refits (routing shifts, window
/// regime changes), since a badly stale basis makes the rotated problem
/// *harder* than a cold start.
class WarmBackend final : public ModelBackend {
 public:
  WarmBackend(const ModelBackendConfig& config, std::size_t dimensions)
      : ModelBackend(config), dims_(dimensions) {}

  PcaModel fit_rows(const Matrix& rows, Vector column_means,
                    std::uint64_t sample_count) override {
    // Row path goes through the O(l m^2) Gram product: the m x m eigen
    // problem is where the warm start pays, and ||Z||-scale symmetry makes
    // the eigenvalues exactly the squared singular values of Z.
    return fit_gram(gram(rows), std::move(column_means), sample_count);
  }

  PcaModel fit_gram(const Matrix& centered_gram, Vector column_means,
                    std::uint64_t sample_count) override {
    SPCA_EXPECTS(centered_gram.rows() == dims_);
    const ScopedTimer timer(refit_seconds_metric());
    EigenSym e =
        basis_.empty()
            ? eigen_symmetric(centered_gram)
            : eigen_symmetric_warm(centered_gram, basis_, /*max_sweeps=*/64,
                                   config_.warm_sweeps);
    backend_sweeps_metric().inc(static_cast<std::uint64_t>(e.sweeps));
    const double drift = basis_.empty() ? 0.0 : subspace_drift(e.vectors);
    if (drift > config_.drift_threshold) {
      // The subspace rotated hard; make the next refit cold instead of
      // warm-starting from a basis that no longer resembles the answer.
      basis_ = Matrix();
      drift_restarts_metric().inc();
    } else {
      basis_ = e.vectors;
    }
    return PcaModel::from_parts(singular_from_eigen(e.values),
                                std::move(e.vectors), std::move(column_means),
                                sample_count);
  }

  void save_state(ByteWriter& out) const override {
    out.put(static_cast<std::uint8_t>(basis_.empty() ? 0 : 1));
    if (basis_.empty()) return;
    std::vector<double> flat(dims_ * dims_);
    for (std::size_t i = 0; i < dims_; ++i) {
      for (std::size_t j = 0; j < dims_; ++j) {
        flat[i * dims_ + j] = basis_(i, j);
      }
    }
    out.put_all(flat);
  }

  void restore_state(ByteReader& in) override {
    if (in.get<std::uint8_t>() == 0) {
      basis_ = Matrix();
      return;
    }
    const std::vector<double> flat = in.get_all<double>();
    if (flat.size() != dims_ * dims_) {
      throw ProtocolError("warm backend: bad basis shape");
    }
    basis_ = Matrix(dims_, dims_);
    for (std::size_t i = 0; i < dims_; ++i) {
      for (std::size_t j = 0; j < dims_; ++j) {
        basis_(i, j) = flat[i * dims_ + j];
      }
    }
  }

 private:
  /// 1 - mean_j |<v_new_j, v_old_j>| over the top min(rank, m) axes: 0 when
  /// the leading eigenvectors line up (up to sign), 1 when orthogonal.
  [[nodiscard]] double subspace_drift(const Matrix& fresh) const {
    const std::size_t k = std::min(config_.rank, dims_);
    double aligned = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      double dot = 0.0;
      for (std::size_t i = 0; i < dims_; ++i) {
        dot += fresh(i, j) * basis_(i, j);
      }
      aligned += std::abs(dot);
    }
    return 1.0 - aligned / static_cast<double>(k);
  }

  std::size_t dims_;
  Matrix basis_;  // previous components; empty => next refit is cold
};

// ---------------------------------------------------------------------------

/// (c) Seeded randomized range finder: O(m^2 (k+p)) per refit. Each refit
/// draws a fresh Gaussian test matrix from (seed, refit counter) so no
/// adversarial subspace can hide from every draw, while the counter keeps
/// the trajectory bit-reproducible (and is checkpointed).
class RsvdBackend final : public ModelBackend {
 public:
  explicit RsvdBackend(const ModelBackendConfig& config)
      : ModelBackend(config) {}

  PcaModel fit_rows(const Matrix& rows, Vector column_means,
                    std::uint64_t sample_count) override {
    const ScopedTimer timer(refit_seconds_metric());
    const std::size_t m = rows.cols();
    Svd f = rand_svd_rows(rows, config_.rank, config_.oversample,
                          config_.power_iters, next_seed());
    const std::size_t d = f.right.cols();
    double total = 0.0;
    for (std::size_t i = 0; i < rows.rows(); ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        total += rows(i, j) * rows(i, j);
      }
    }
    double head = 0.0;
    for (std::size_t j = 0; j < d; ++j) head += f.values[j] * f.values[j];
    return model_from_truncated(f.values, f.right, std::move(column_means),
                                sample_count, std::max(total - head, 0.0));
  }

  PcaModel fit_gram(const Matrix& centered_gram, Vector column_means,
                    std::uint64_t sample_count) override {
    const ScopedTimer timer(refit_seconds_metric());
    EigenSym e = rand_eigen_top_k(centered_gram, config_.rank,
                                  config_.oversample, config_.power_iters,
                                  next_seed());
    backend_sweeps_metric().inc(static_cast<std::uint64_t>(e.sweeps));
    const Vector head_values = singular_from_eigen(e.values);
    double head = 0.0;
    for (std::size_t j = 0; j < head_values.size(); ++j) {
      head += head_values[j] * head_values[j];
    }
    // trace(G) = sum of all squared singular values, so the unseen tail
    // mass is exact even though its shape is approximated as uniform.
    const double tail = std::max(trace(centered_gram) - head, 0.0);
    return model_from_truncated(head_values, e.vectors,
                                std::move(column_means), sample_count, tail);
  }

  void save_state(ByteWriter& out) const override { out.put(refit_counter_); }

  void restore_state(ByteReader& in) override {
    refit_counter_ = in.get<std::uint64_t>();
  }

 private:
  [[nodiscard]] std::uint64_t next_seed() {
    return splitmix64_mix(config_.seed + refit_counter_++);
  }

  std::uint64_t refit_counter_ = 0;
};

// ---------------------------------------------------------------------------

/// (d) Frequent-Directions: absorbs every raw interval row into an l x m
/// deterministic sketch (centered against the running mean) and refits from
/// the sketch alone — O(l m) state independent of the window, O(l^2 m)
/// refit via the SVD of the transposed sketch. The removed shrink mass is
/// tracked so the residual tail estimate conserves total energy. With a
/// window W the sketch decays by sqrt(1 - 1/W) per row, so B^T B tracks an
/// exponentially weighted covariance with time constant W — the sketch
/// analogue of the other backends' sliding window (a hard window cannot be
/// maintained by an FD sketch, which has no way to subtract expired rows).
class FdBackend final : public ModelBackend {
 public:
  FdBackend(const ModelBackendConfig& config, std::size_t dimensions,
            std::uint64_t window)
      : ModelBackend(config),
        dims_(dimensions),
        window_(window),
        decay_(window >= 2
                   ? std::sqrt(1.0 - 1.0 / static_cast<double>(window))
                   : 1.0),
        fd_(std::max<std::size_t>(2, std::min(config.fd_rows, dimensions)),
            dimensions),
        mean_(dimensions) {}

  [[nodiscard]] bool wants_rows() const noexcept override { return true; }

  void absorb_row(std::span<const double> x) override {
    SPCA_EXPECTS(x.size() == dims_);
    ++rows_seen_;
    // Exponentially weighted mean with the same time constant as the
    // sketch: a plain running mean while filling the first window, 1/W
    // steps after (matching the windowed backends' centering).
    const double alpha = 1.0 / static_cast<double>(effective_rows());
    Vector centered(dims_);
    for (std::size_t j = 0; j < dims_; ++j) {
      mean_[j] += (x[j] - mean_[j]) * alpha;
      centered[j] = x[j] - mean_[j];
    }
    fd_.scale(decay_);
    fd_.append(centered.span());
  }

  PcaModel fit_rows(const Matrix& rows, Vector column_means,
                    std::uint64_t sample_count) override {
    (void)rows;  // the sketch state, not the presented rows, is the summary
    return fit(std::move(column_means), sample_count);
  }

  PcaModel fit_gram(const Matrix& centered_gram, Vector column_means,
                    std::uint64_t sample_count) override {
    (void)centered_gram;
    return fit(std::move(column_means), sample_count);
  }

  void save_state(ByteWriter& out) const override {
    fd_.save_state(out);
    out.put_all(mean_.data());
    out.put(rows_seen_);
  }

  void restore_state(ByteReader& in) override {
    FrequentDirections fd = FrequentDirections::restore_state(in);
    if (fd.dim() != dims_ || fd.rows() != fd_.rows()) {
      throw ProtocolError("fd backend: sketch shape mismatch");
    }
    fd_ = std::move(fd);
    Vector mean(in.get_all<double>());
    if (mean.size() != dims_) {
      throw ProtocolError("fd backend: bad mean accumulator");
    }
    mean_ = std::move(mean);
    rows_seen_ = in.get<std::uint64_t>();
    // Metrics are process-local, never checkpointed: don't re-count the
    // restored sketch's historical shrinks.
    reported_shrinks_ = fd_.shrinks();
  }

 private:
  PcaModel fit(Vector fallback_means, std::uint64_t fallback_n) {
    const ScopedTimer timer(refit_seconds_metric());
    fd_shrinks_metric().inc(fd_.shrinks() - reported_shrinks_);
    reported_shrinks_ = fd_.shrinks();

    // O(l^2 m): one-sided Jacobi on the l columns of B^T. The left factor
    // holds the right singular vectors of B — the principal axes.
    Svd f = svd(transpose(fd_.sketch()), /*want_left=*/true);
    const std::size_t d = std::min(fd_.rows(), dims_);
    Vector means = fallback_means;
    std::uint64_t n = fallback_n;
    if (rows_seen_ >= 2) {
      // The sketch was centered against the exponentially weighted mean, so
      // the model must center new observations the same way; the effective
      // sample count is the decay time constant once it is reached.
      means = mean_;
      n = effective_rows();
    }
    // Every shrink subtracts its delta from *all* retained directions, so
    // the sketch spectrum is deflated across the board, not just
    // truncated: B^T B <= A^T A <= B^T B + Delta I. The midpoint estimate
    // adds Delta/2 back onto every squared singular value — head and
    // unseen tail alike — which de-biases the residual moments the Q
    // threshold depends on (the truncated-tail reconstruction that rsvd
    // uses would leave the whole spectrum biased low here).
    const double compensation = fd_.deflation() / 2.0;
    Vector values(dims_);
    for (std::size_t j = 0; j < dims_; ++j) {
      const double sq = j < d ? f.values[j] * f.values[j] : 0.0;
      values[j] = std::sqrt(sq + compensation);
    }
    Matrix components(dims_, dims_);
    for (std::size_t i = 0; i < dims_; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        components(i, j) = f.left(i, j);
      }
    }
    return PcaModel::from_parts(std::move(values), std::move(components),
                                std::move(means), n, d);
  }

  /// Rows the decayed sketch effectively represents: the stream length
  /// until the window fills, then the window itself.
  [[nodiscard]] std::uint64_t effective_rows() const noexcept {
    return window_ >= 2 ? std::min(rows_seen_, window_) : rows_seen_;
  }

  std::size_t dims_;
  std::uint64_t window_;
  double decay_;  // sqrt(1 - 1/W) applied to the sketch before each append
  FrequentDirections fd_;
  Vector mean_;  // exponentially weighted mean of raw rows
  std::uint64_t rows_seen_ = 0;
  std::uint64_t reported_shrinks_ = 0;
};

}  // namespace

std::unique_ptr<ModelBackend> make_model_backend(
    const ModelBackendConfig& config, std::size_t dimensions,
    std::uint64_t window) {
  SPCA_EXPECTS(dimensions >= 1);
  switch (config.kind) {
    case ModelBackendKind::kExact:
      return std::make_unique<ExactBackend>(config);
    case ModelBackendKind::kWarm:
      return std::make_unique<WarmBackend>(config, dimensions);
    case ModelBackendKind::kRsvd:
      return std::make_unique<RsvdBackend>(config);
    case ModelBackendKind::kFd:
      return std::make_unique<FdBackend>(config, dimensions, window);
  }
  throw InputError("make_model_backend: unknown backend kind");
}

}  // namespace spca
