// Pluggable NOC model backends: strategies for turning window/covariance
// state into a fitted PcaModel.
//
// The refit is the NOC's dominant cost at scale (BM_EigenSymmetric/121 is
// ~21 ms per refit), and the Q-statistic residual only needs the top-k
// principal axes plus an accounting of the residual spectral mass. Four
// interchangeable strategies cover the cost/accuracy space:
//
//   exact  cold Jacobi / one-sided-Jacobi SVD — the accuracy reference
//   warm   warm-started Jacobi seeded by the previous basis, with a
//          drift-triggered cold restart (the default)
//   rsvd   seeded randomized range finder, O(m^2 (k+p)) per refit
//   fd     Frequent-Directions sketch fed incrementally as interval rows
//          arrive, O(l m) memory and O(l^2 m)-bounded refit
//
// Determinism rules: every backend is bit-reproducible across runs, thread
// counts, and checkpoint restore. rsvd derives its Gaussian test matrix
// from (seed, refit counter) via SplitMix64, and the counter is part of the
// checkpointed state; warm checkpoints its basis; fd checkpoints the whole
// sketch. Truncated backends (rsvd/fd) report the recovered subspace width
// through PcaModel::basis_cols() and estimate the residual spectrum tail
// from conserved total mass (trace / Frobenius norm), so thresholds stay
// finite; detection ranks must be clamped to basis_cols().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/serialize.hpp"
#include "linalg/matrix.hpp"
#include "pca/pca_model.hpp"

namespace spca {

/// The available model-fitting strategies. Values are stable: they are
/// serialized into SPCN/SPCA checkpoint blobs.
enum class ModelBackendKind : std::uint8_t {
  kExact = 0,
  kWarm = 1,
  kRsvd = 2,
  kFd = 3,
};

/// Parses "exact" | "warm" | "rsvd" | "fd"; throws InputError otherwise.
[[nodiscard]] ModelBackendKind parse_model_backend(std::string_view name);
[[nodiscard]] const char* to_string(ModelBackendKind kind);

/// Shared backend configuration; the flag plumbing only exposes `kind`, the
/// tuning knobs keep their defaults unless a test overrides them.
struct ModelBackendConfig {
  ModelBackendKind kind = ModelBackendKind::kWarm;
  /// warm: subspace-rotation drift (1 - mean |<v_new, v_old>|) over the top
  /// `rank` axes beyond which the next refit restarts cold.
  double drift_threshold = 0.25;
  /// warm: sweep budget of the warm-started inner solve before it falls
  /// back to the cold path (see eigen_symmetric_warm).
  int warm_sweeps = 8;
  /// rsvd/fd accuracy knobs: target subspace rank k, oversampling p, and
  /// power iterations q of the range finder; sketch rows l of fd.
  std::size_t rank = 12;
  std::size_t oversample = 8;
  int power_iters = 2;
  std::size_t fd_rows = 48;
  /// rsvd: base seed of the per-refit Gaussian test matrices.
  std::uint64_t seed = 42;
};

/// Serialization helpers shared by the SPCN/SPCA checkpoint codecs.
void write_backend_config(ByteWriter& out, const ModelBackendConfig& config);
[[nodiscard]] ModelBackendConfig read_backend_config(ByteReader& in);

/// One model-fitting strategy with whatever internal state it carries
/// between refits (warm basis, refit counter, FD sketch). Owned by a single
/// detector/NOC; not thread-safe.
class ModelBackend {
 public:
  virtual ~ModelBackend() = default;

  [[nodiscard]] ModelBackendKind kind() const noexcept { return config_.kind; }
  [[nodiscard]] const ModelBackendConfig& config() const noexcept {
    return config_;
  }

  /// Fits from an l x m row matrix (the sketch matrix Z-hat, already
  /// centered by construction). `column_means` and `sample_count` carry the
  /// window centering/scaling information exactly as PcaModel::from_sketch
  /// takes them.
  [[nodiscard]] virtual PcaModel fit_rows(const Matrix& rows,
                                          Vector column_means,
                                          std::uint64_t sample_count) = 0;

  /// Fits from an m x m centered Gram/covariance matrix (the Lakhina
  /// incremental path).
  [[nodiscard]] virtual PcaModel fit_gram(const Matrix& centered_gram,
                                          Vector column_means,
                                          std::uint64_t sample_count) = 0;

  /// True when the backend maintains per-interval state and must see every
  /// raw measurement row via absorb_row (fd only).
  [[nodiscard]] virtual bool wants_rows() const noexcept { return false; }

  /// Feeds one raw (uncentered) interval measurement vector; only called
  /// when wants_rows() is true.
  virtual void absorb_row(std::span<const double> x);

  /// Serializes/restores the backend's inter-refit state. The format is
  /// kind-specific; the caller frames it inside its own versioned blob and
  /// must only restore into a backend of the same kind and shape.
  virtual void save_state(ByteWriter& out) const;
  virtual void restore_state(ByteReader& in);

 protected:
  explicit ModelBackend(const ModelBackendConfig& config) : config_(config) {}

  ModelBackendConfig config_;
};

/// Builds the backend selected by `config.kind` for `dimensions`-flow data.
/// `window` is the owning detector's sliding-window length W: the fd
/// backend forgets exponentially at rate 1 - 1/W so its covariance tracks
/// an effective window of W rows like the other backends' models do
/// (0 = never forget, the pure whole-stream sketch).
[[nodiscard]] std::unique_ptr<ModelBackend> make_model_backend(
    const ModelBackendConfig& config, std::size_t dimensions,
    std::uint64_t window = 0);

}  // namespace spca
