#include "pca/backend/model_backend.hpp"

#include "common/error.hpp"

namespace spca {

ModelBackendKind parse_model_backend(std::string_view name) {
  if (name == "exact") return ModelBackendKind::kExact;
  if (name == "warm") return ModelBackendKind::kWarm;
  if (name == "rsvd") return ModelBackendKind::kRsvd;
  if (name == "fd") return ModelBackendKind::kFd;
  throw InputError("unknown model backend '" + std::string(name) +
                   "' (expected exact|warm|rsvd|fd)");
}

const char* to_string(ModelBackendKind kind) {
  switch (kind) {
    case ModelBackendKind::kExact:
      return "exact";
    case ModelBackendKind::kWarm:
      return "warm";
    case ModelBackendKind::kRsvd:
      return "rsvd";
    case ModelBackendKind::kFd:
      return "fd";
  }
  return "unknown";
}

void write_backend_config(ByteWriter& out, const ModelBackendConfig& config) {
  out.put(static_cast<std::uint8_t>(config.kind));
  out.put(config.drift_threshold);
  out.put(static_cast<std::int32_t>(config.warm_sweeps));
  out.put(static_cast<std::uint64_t>(config.rank));
  out.put(static_cast<std::uint64_t>(config.oversample));
  out.put(static_cast<std::int32_t>(config.power_iters));
  out.put(static_cast<std::uint64_t>(config.fd_rows));
  out.put(config.seed);
}

ModelBackendConfig read_backend_config(ByteReader& in) {
  ModelBackendConfig config;
  const auto kind = in.get<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(ModelBackendKind::kFd)) {
    throw ProtocolError("model backend config: unknown backend kind");
  }
  config.kind = static_cast<ModelBackendKind>(kind);
  config.drift_threshold = in.get<double>();
  config.warm_sweeps = in.get<std::int32_t>();
  config.rank = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.oversample = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.power_iters = in.get<std::int32_t>();
  config.fd_rows = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.seed = in.get<std::uint64_t>();
  if (config.warm_sweeps < 1 || config.rank == 0 || config.fd_rows < 2 ||
      config.power_iters < 0 || !(config.drift_threshold >= 0.0)) {
    throw ProtocolError("model backend config: implausible values");
  }
  return config;
}

void ModelBackend::absorb_row(std::span<const double> x) { (void)x; }

void ModelBackend::save_state(ByteWriter& out) const { (void)out; }

void ModelBackend::restore_state(ByteReader& in) { (void)in; }

}  // namespace spca
