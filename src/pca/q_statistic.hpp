// Q-statistic threshold of Jackson & Mudholkar (Technometrics 1979), the
// detection threshold of eqs. (6)-(9) and (22)-(23).
//
// Given the residual spectrum (singular values of the components beyond the
// normal subspace) and a false-alarm rate alpha, the threshold on the
// squared prediction error is
//
//   delta^2 = phi1 [ c_alpha sqrt(2 phi2 h0^2)/phi1 + 1
//                    + phi2 h0 (h0 - 1)/phi1^2 ]^{1/h0}
//
// with phi_k = sum_{j>r} sigma_j^{2k}, h0 = 1 - 2 phi1 phi3 / (3 phi2^2),
// and c_alpha the (1 - alpha) quantile of the standard normal distribution.
#pragma once

#include <cstdint>

#include "linalg/vector.hpp"

namespace spca {

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Precondition: 0 < p < 1.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Spectral moments phi_1..phi_3 of the residual subspace.
struct ResidualMoments {
  double phi1 = 0.0;
  double phi2 = 0.0;
  double phi3 = 0.0;
};

/// Computes phi_k = sum_{j>r} (eta_j^2 / (n-1))^k from the singular values
/// of the fitted matrix (eq. 8 with eq. 9, identically eq. 23).
[[nodiscard]] ResidualMoments residual_moments(const Vector& singular_values,
                                               std::size_t normal_rank,
                                               std::uint64_t sample_count);

/// The Q-statistic threshold on the *squared* prediction error at
/// false-alarm rate `alpha`. Returns 0 when the residual spectrum is empty
/// or numerically degenerate (then every nonzero residual is an alarm).
[[nodiscard]] double q_statistic_threshold_squared(
    const Vector& singular_values, std::size_t normal_rank,
    std::uint64_t sample_count, double alpha);

/// Threshold on the (unsquared) anomaly distance, i.e. sqrt of the above.
[[nodiscard]] double q_statistic_threshold(const Vector& singular_values,
                                           std::size_t normal_rank,
                                           std::uint64_t sample_count,
                                           double alpha);

}  // namespace spca
