#include "pca/pca_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/stats.hpp"
#include "linalg/svd.hpp"

namespace spca {

PcaModel PcaModel::from_data(const Matrix& x) {
  SPCA_EXPECTS(x.rows() >= 2 && x.cols() >= 1);
  PcaModel model;
  model.dims_ = x.cols();
  model.sample_count_ = x.rows();
  model.means_ = ::spca::column_means(x);
  const Matrix y = center_columns(x);
  Svd f = svd(y, /*want_left=*/false);
  model.singular_values_ = std::move(f.values);
  model.components_ = std::move(f.right);
  model.basis_cols_ = model.dims_;
  return model;
}

PcaModel PcaModel::from_parts(Vector singular_values, Matrix components,
                              Vector column_means, std::uint64_t sample_count,
                              std::size_t basis_cols) {
  SPCA_EXPECTS(components.rows() == components.cols());
  SPCA_EXPECTS(components.rows() == singular_values.size());
  SPCA_EXPECTS(components.rows() == column_means.size());
  SPCA_EXPECTS(sample_count >= 2);
  SPCA_EXPECTS(basis_cols <= components.cols());
  PcaModel model;
  model.dims_ = components.rows();
  model.sample_count_ = sample_count;
  model.singular_values_ = std::move(singular_values);
  model.components_ = std::move(components);
  model.means_ = std::move(column_means);
  model.basis_cols_ = basis_cols == 0 ? model.dims_ : basis_cols;
  return model;
}

PcaModel PcaModel::from_covariance(const Matrix& centered_gram,
                                   Vector column_means,
                                   std::uint64_t sample_count,
                                   const Matrix* warm_basis) {
  SPCA_EXPECTS(centered_gram.rows() == centered_gram.cols());
  SPCA_EXPECTS(centered_gram.rows() == column_means.size());
  SPCA_EXPECTS(sample_count >= 2);
  PcaModel model;
  model.dims_ = centered_gram.rows();
  model.sample_count_ = sample_count;
  model.means_ = std::move(column_means);
  EigenSym e = warm_basis != nullptr
                   ? eigen_symmetric_warm(centered_gram, *warm_basis)
                   : eigen_symmetric(centered_gram);
  model.singular_values_ = Vector(model.dims_);
  for (std::size_t j = 0; j < model.dims_; ++j) {
    model.singular_values_[j] = std::sqrt(std::max(e.values[j], 0.0));
  }
  model.components_ = std::move(e.vectors);
  model.basis_cols_ = model.dims_;
  return model;
}

PcaModel PcaModel::from_sketch(const Matrix& z_hat, Vector column_means,
                               std::uint64_t sample_count) {
  SPCA_EXPECTS(z_hat.cols() == column_means.size());
  SPCA_EXPECTS(sample_count >= 2);
  PcaModel model;
  model.dims_ = z_hat.cols();
  model.sample_count_ = sample_count;
  model.means_ = std::move(column_means);
  Svd f = svd(z_hat, /*want_left=*/false);
  model.singular_values_ = std::move(f.values);
  model.components_ = std::move(f.right);
  model.basis_cols_ = model.dims_;
  return model;
}

double PcaModel::component_std(std::size_t j) const {
  SPCA_EXPECTS(fitted() && j < dims_);
  return singular_values_[j] /
         std::sqrt(static_cast<double>(sample_count_ - 1));
}

Vector PcaModel::center(const Vector& x) const {
  SPCA_EXPECTS(fitted() && x.size() == dims_);
  Vector y = x;
  y -= means_;
  return y;
}

double PcaModel::anomaly_distance(const Vector& x, std::size_t r) const {
  SPCA_EXPECTS(fitted() && x.size() == dims_ && r <= dims_);
  const Vector y = center(x);
  double residual = norm_squared(y);
  for (std::size_t j = 0; j < r; ++j) {
    double proj = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) proj += components_(i, j) * y[i];
    residual -= proj * proj;
  }
  // Rounding can push the residual a hair below zero when y lies (almost)
  // entirely inside the normal subspace.
  return std::sqrt(std::max(residual, 0.0));
}

PcaModel::Split PcaModel::split(const Vector& x, std::size_t r) const {
  SPCA_EXPECTS(fitted() && x.size() == dims_ && r <= dims_);
  const Vector y = center(x);
  Vector normal(dims_);
  for (std::size_t j = 0; j < r; ++j) {
    double proj = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) proj += components_(i, j) * y[i];
    for (std::size_t i = 0; i < dims_; ++i) {
      normal[i] += proj * components_(i, j);
    }
  }
  Vector anomaly = y;
  anomaly -= normal;
  return {std::move(normal), std::move(anomaly)};
}

std::size_t select_rank_by_energy(const Vector& singular_values,
                                  double fraction) {
  SPCA_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  double total = 0.0;
  for (std::size_t j = 0; j < singular_values.size(); ++j) {
    total += singular_values[j] * singular_values[j];
  }
  if (total == 0.0) return 0;
  double cumulative = 0.0;
  for (std::size_t j = 0; j < singular_values.size(); ++j) {
    cumulative += singular_values[j] * singular_values[j];
    if (cumulative >= fraction * total) return j + 1;
  }
  return singular_values.size();
}

std::size_t select_rank_by_scree(const Vector& singular_values,
                                 double knee_fraction) {
  SPCA_EXPECTS(knee_fraction > 0.0 && knee_fraction <= 1.0);
  const std::size_t m = singular_values.size();
  if (m <= 1) return m;

  // Work on the eigenvalue (variance) scale, where the scree is defined.
  double largest_drop = 0.0;
  for (std::size_t j = 0; j + 1 < m; ++j) {
    const double drop = singular_values[j] * singular_values[j] -
                        singular_values[j + 1] * singular_values[j + 1];
    largest_drop = std::max(largest_drop, drop);
  }
  if (largest_drop <= 0.0) return 1;  // flat spectrum: no structure

  std::size_t elbow = 1;
  for (std::size_t j = 0; j + 1 < m; ++j) {
    const double drop = singular_values[j] * singular_values[j] -
                        singular_values[j + 1] * singular_values[j + 1];
    if (drop >= knee_fraction * largest_drop) {
      elbow = j + 1;
    }
  }
  return elbow;
}

std::size_t select_rank_by_ksigma(const Matrix& data, const PcaModel& model,
                                  double k) {
  SPCA_EXPECTS(model.fitted() && data.cols() == model.dimensions());
  SPCA_EXPECTS(k > 0.0);
  const std::size_t m = model.dimensions();
  const std::size_t n = data.rows();
  for (std::size_t j = 0; j < m; ++j) {
    // Projection of every fitted row onto component j.
    Vector proj(n);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      const auto row = data.row_span(i);
      for (std::size_t c = 0; c < m; ++c) {
        sum += row[c] * model.components()(c, j);
      }
      proj[i] = sum;
    }
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += proj[i];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      var += (proj[i] - mean) * (proj[i] - mean);
    }
    var /= static_cast<double>(n > 1 ? n - 1 : 1);
    const double sigma = std::sqrt(var);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(proj[i] - mean) > k * sigma) {
        return j;  // this and all later components form the anomaly subspace
      }
    }
  }
  return m;
}

}  // namespace spca
