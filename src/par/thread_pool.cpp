#include "par/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

thread_local bool t_pool_worker = false;

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

struct ThreadPool::Impl {
  struct Task {
    RawTask fn = nullptr;
    void* ctx = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  std::size_t lanes = 1;
  std::vector<std::thread> workers;
  std::deque<Task> queue;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;

  void worker_loop() {
    t_pool_worker = true;
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (queue.empty()) return;  // stop requested and drained
        task = queue.front();
        queue.pop_front();
      }
      task.fn(task.ctx, task.lo, task.hi);
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  impl_->lanes = resolve_threads(threads);
  impl_->workers.reserve(impl_->lanes - 1);
  for (std::size_t i = 0; i + 1 < impl_->lanes; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::size() const noexcept { return impl_->lanes; }

bool ThreadPool::on_worker_thread() noexcept { return t_pool_worker; }

std::size_t ThreadPool::plan_lanes(std::size_t begin, std::size_t end,
                                   std::size_t min_grain) const noexcept {
  if (end <= begin) return 0;
  if (t_pool_worker) return 1;  // nested section: run inline on this worker
  const std::size_t n = end - begin;
  std::size_t lanes = impl_->lanes;
  if (min_grain > 1) lanes = std::min(lanes, n / min_grain);
  return std::clamp<std::size_t>(lanes, 1, n);
}

namespace {

/// Shared state of one parallel_for call; lives on the caller's stack for
/// the (blocking) duration of the call.
struct ForContext {
  void (*body)(void*, std::size_t, std::size_t) = nullptr;
  void* ctx = nullptr;
  std::size_t begin = 0;
  std::size_t n = 0;
  std::size_t lanes = 0;
  std::vector<std::exception_ptr> errors;
  std::size_t pending = 0;  // guarded by mutex
  std::mutex mutex;
  std::condition_variable done;

  void run_chunk(std::size_t c) noexcept {
    const std::size_t lo = begin + c * n / lanes;
    const std::size_t hi = begin + (c + 1) * n / lanes;
    try {
      body(ctx, lo, hi);
    } catch (...) {
      errors[c] = std::current_exception();
    }
  }
};

}  // namespace

void ThreadPool::run_chunks(std::size_t begin, std::size_t end,
                            std::size_t lanes, RawTask body, void* ctx) {
  static Counter& tasks = MetricsRegistry::global().counter("spca.par.tasks");
  tasks.inc(lanes);

  ForContext context;
  context.body = body;
  context.ctx = ctx;
  context.begin = begin;
  context.n = end - begin;
  context.lanes = lanes;
  context.errors.resize(lanes);
  context.pending = lanes - 1;

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::size_t c = 1; c < lanes; ++c) {
      impl_->queue.push_back(Impl::Task{
          [](void* p, std::size_t c_index, std::size_t) {
            auto* fc = static_cast<ForContext*>(p);
            fc->run_chunk(c_index);
            // Notify while holding the mutex: the context lives on the
            // caller's stack, and the waiter may destroy it the moment it
            // can reacquire the lock and see pending == 0. Signaling after
            // unlock would race with that destruction.
            std::lock_guard<std::mutex> done_lock(fc->mutex);
            --fc->pending;
            fc->done.notify_one();
          },
          &context, c, 0});
    }
  }
  impl_->cv.notify_all();

  context.run_chunk(0);  // the caller is lane 0

  {
    std::unique_lock<std::mutex> lock(context.mutex);
    context.done.wait(lock, [&] { return context.pending == 0; });
  }
  for (std::exception_ptr& error : context.errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::post_raw(RawTask task, void* ctx) {
  if (impl_->workers.empty()) {
    task(ctx, 0, 0);  // no workers: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    SPCA_EXPECTS(!impl_->stop);
    impl_->queue.push_back(Impl::Task{task, ctx, 0, 0});
  }
  impl_->cv.notify_one();
}

namespace {

struct GlobalPoolState {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;
  std::size_t configured = 0;  // 0 = hardware concurrency
};

GlobalPoolState& global_state() {
  static GlobalPoolState state;
  return state;
}

void publish_pool_size(std::size_t lanes) {
  MetricsRegistry::global()
      .gauge("spca.par.pool_size")
      .set(static_cast<double>(lanes));
}

}  // namespace

ThreadPool& global_pool() {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(state.configured);
    publish_pool_size(state.pool->size());
  }
  return *state.pool;
}

void set_global_threads(std::size_t threads) {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.configured = threads;
  state.pool.reset();  // next global_pool() call rebuilds at the new size
  state.pool = std::make_unique<ThreadPool>(threads);
  publish_pool_size(state.pool->size());
}

std::size_t global_threads() { return global_pool().size(); }

std::size_t configure_threads_from_flag(const CliFlags& flags) {
  const std::int64_t requested = flags.integer("threads");
  SPCA_EXPECTS(requested >= 0);
  set_global_threads(static_cast<std::size_t>(requested));
  return global_threads();
}

}  // namespace spca
