// Fixed-size thread pool with deterministic static chunking.
//
// The design goal is *bit-identical* results at every thread count: work is
// split into contiguous chunks whose boundaries depend only on the range and
// the lane count — never on timing — and every parallelized call site either
// writes disjoint outputs per chunk or combines chunk results in chunk order.
// A pool of size 1 spawns no workers at all and runs everything inline, so
// `--threads 1` is exactly the serial code path.
//
// There is no work stealing on purpose: stealing reorders execution, which
// is harmless for disjoint writes but makes reasoning about determinism (and
// replaying TSan reports) harder, and the fan-outs in this codebase — per-flow
// sketch updates, per-column Householder updates — are regular enough that
// static chunking already balances within ~2x.
//
// Nesting: a `parallel_for` issued from inside a pool worker runs inline on
// that worker (no deadlock, same results). Blocking on a `submit` future from
// a pool worker is NOT supported and will deadlock.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

namespace spca {

class CliFlags;

/// Fixed-size pool of `size()` execution lanes: `size() - 1` worker threads
/// plus the calling thread, which always participates in `parallel_for`.
class ThreadPool final {
 public:
  /// `threads` = total lane count; 0 resolves to hardware_concurrency
  /// (at least 1). A pool of size 1 has no worker threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the caller).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Runs `body(lo, hi)` over contiguous chunks covering [begin, end) and
  /// blocks until every chunk finished. Chunk boundaries are the static
  /// split of the range into `lanes` pieces where
  ///   lanes = min(size(), (end - begin) / max(min_grain, 1), end - begin)
  /// clamped to at least 1 — a pure function of the arguments and the pool
  /// size, so the decomposition is deterministic. With one lane (or when
  /// called from a pool worker) the body runs inline as `body(begin, end)`.
  ///
  /// Exceptions thrown by chunk bodies are captured per chunk; after all
  /// chunks finish the exception of the lowest-indexed failing chunk is
  /// rethrown (again deterministic).
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t min_grain = 1) {
    const std::size_t lanes = plan_lanes(begin, end, min_grain);
    if (lanes <= 1) {
      if (end > begin) body(begin, end);
      return;
    }
    run_chunks(
        begin, end, lanes,
        [](void* ctx, std::size_t lo, std::size_t hi) {
          (*static_cast<std::remove_reference_t<Body>*>(ctx))(lo, hi);
        },
        &body);
  }

  /// Schedules a single task and returns its future. On a pool of size 1 the
  /// task runs inline before `submit` returns.
  template <typename F>
  [[nodiscard]] auto submit(F f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto* task = new std::packaged_task<R()>(std::move(f));
    std::future<R> future = task->get_future();
    post_raw(
        [](void* ctx, std::size_t, std::size_t) {
          auto* t = static_cast<std::packaged_task<R()>*>(ctx);
          (*t)();
          delete t;
        },
        task);
    return future;
  }

  /// True when the calling thread is one of this process's pool workers
  /// (any pool); used to run nested parallel sections inline.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  using RawTask = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  [[nodiscard]] std::size_t plan_lanes(std::size_t begin, std::size_t end,
                                       std::size_t min_grain) const noexcept;
  void run_chunks(std::size_t begin, std::size_t end, std::size_t lanes,
                  RawTask body, void* ctx);
  void post_raw(RawTask task, void* ctx);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide pool used by every parallelized hot path (linalg
/// kernels, monitor interval close, NOC assembly). Created on first use with
/// `set_global_threads`'s last value, or hardware_concurrency if never set.
[[nodiscard]] ThreadPool& global_pool();

/// Replaces the global pool with one of `threads` lanes (0 = hardware
/// concurrency). Must not be called while parallel work is in flight;
/// references previously returned by `global_pool()` are invalidated.
void set_global_threads(std::size_t threads);

/// Lane count of the current global pool (resolving it if needed).
[[nodiscard]] std::size_t global_threads();

/// Reads the standard `--threads` flag (see `define_threads_flag` in
/// common/cli), configures the global pool with it, and returns the resolved
/// lane count.
std::size_t configure_threads_from_flag(const CliFlags& flags);

}  // namespace spca
