#include "dist/aggregate.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spca {

std::vector<NodeId> region_node_ids(std::size_t regions) {
  std::vector<NodeId> ids;
  ids.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) ids.push_back(region_node_id(r));
  return ids;
}

namespace {

void check_partition(std::size_t monitors, std::size_t regions) {
  if (regions == 0 || regions > monitors) {
    throw InputError("hier: need 1 <= regions <= monitors");
  }
}

}  // namespace

std::size_t region_of_monitor(std::size_t monitors, std::size_t regions,
                              NodeId monitor) {
  check_partition(monitors, regions);
  if (monitor == kNocId || monitor > monitors) {
    throw InputError("hier: monitor id out of range");
  }
  // Region r owns monitors (r*k/R, (r+1)*k/R]; invert by scanning is O(R)
  // but R is tiny; closed form: the smallest r with (r+1)*k/R >= monitor.
  for (std::size_t r = 0; r < regions; ++r) {
    if (static_cast<std::size_t>(monitor) <= (r + 1) * monitors / regions) {
      return r;
    }
  }
  return regions - 1;  // unreachable: monitor <= k = R*k/R
}

std::vector<NodeId> region_monitor_ids(std::size_t monitors,
                                       std::size_t regions,
                                       std::size_t region) {
  check_partition(monitors, regions);
  if (region >= regions) throw InputError("hier: region index out of range");
  const std::size_t lo = region * monitors / regions;       // exclusive
  const std::size_t hi = (region + 1) * monitors / regions;  // inclusive
  std::vector<NodeId> ids;
  ids.reserve(hi - lo);
  for (std::size_t id = lo + 1; id <= hi; ++id) {
    ids.push_back(static_cast<NodeId>(id));
  }
  return ids;
}

Message merge_aggregate(std::vector<Message> parts, NodeId from, NodeId to) {
  if (parts.empty()) {
    throw ProtocolError("merge_aggregate: no messages to merge");
  }
  // Ascending sender id: the bit-stable merge order. Senders are distinct,
  // so the order is total and independent of arrival order.
  std::sort(parts.begin(), parts.end(),
            [](const Message& a, const Message& b) { return a.from < b.from; });
  const MessageType inner = parts.front().type;
  if (inner != MessageType::kVolumeReport &&
      inner != MessageType::kSketchResponse &&
      inner != MessageType::kScoreReport) {
    throw ProtocolError("merge_aggregate: unmergeable message type");
  }
  Message agg;
  agg.type = MessageType::kAggregate;
  agg.from = from;
  agg.to = to;
  agg.interval = parts.front().interval;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Message& part = parts[i];
    if (part.type != inner) {
      throw ProtocolError("merge_aggregate: mixed message types");
    }
    if (part.interval != agg.interval) {
      throw ProtocolError("merge_aggregate: mixed intervals");
    }
    if (i > 0 && part.from == parts[i - 1].from) {
      throw ProtocolError("merge_aggregate: duplicate sender");
    }
    if (part.ids.empty()) {
      throw ProtocolError("merge_aggregate: empty part");
    }
    agg.ids.insert(agg.ids.end(), part.ids.begin(), part.ids.end());
    agg.values.insert(agg.values.end(), part.values.begin(),
                      part.values.end());
  }
  return agg;
}

bool aggregate_shape_is(const Message& msg, MessageType inner,
                        std::size_t sketch_rows) noexcept {
  if (msg.type != MessageType::kAggregate || msg.ids.empty()) return false;
  const std::size_t per_flow = inner == MessageType::kVolumeReport ? 1
                               : inner == MessageType::kScoreReport
                                   ? 2
                                   : sketch_rows + 2;
  return msg.values.size() == msg.ids.size() * per_flow;
}

Message unwrap_aggregate(const Message& agg, MessageType inner,
                         std::size_t sketch_rows) {
  if (agg.type != MessageType::kAggregate) {
    throw ProtocolError("unwrap_aggregate: not an aggregate");
  }
  if (inner != MessageType::kVolumeReport &&
      inner != MessageType::kSketchResponse &&
      inner != MessageType::kScoreReport) {
    throw ProtocolError("unwrap_aggregate: invalid inner type");
  }
  if (!aggregate_shape_is(agg, inner, sketch_rows)) {
    throw ProtocolError("unwrap_aggregate: payload shape mismatch");
  }
  Message msg = agg;
  msg.type = inner;
  return msg;
}

}  // namespace spca
