// Facade running the full simulated deployment — k local monitors plus the
// NOC over a SimNetwork — behind the ordinary Detector interface, so the
// evaluation harness can compare it directly against the single-process
// SketchDetector (they must agree verdict-for-verdict given equal
// parameters; an integration test enforces this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "core/sketch_detector.hpp"
#include "detect/fusion.hpp"
#include "dist/local_monitor.hpp"
#include "dist/noc.hpp"
#include "dist/sim_network.hpp"

namespace spca {

/// The distributed deployment as a Detector.
class DistributedDetector final : public Detector {
 public:
  /// Flows are distributed round-robin over `num_monitors` monitors, which
  /// mirrors OD flows being observed at their origin routers.
  ///
  /// `noc_hosted_sketches` selects Theorem 1's low-resource deployment:
  /// monitors run only the Volume Counter, the NOC maintains every flow's
  /// histogram itself, and no sketch-pull messages are ever sent.
  ///
  /// `transport` overrides the message carrier (e.g. a loopback TcpBus);
  /// nullptr uses the built-in SimNetwork. The caller keeps ownership and
  /// must outlive the detector.
  DistributedDetector(std::size_t dimensions, std::size_t num_monitors,
                      const SketchDetectorConfig& config,
                      bool noc_hosted_sketches = false,
                      Transport* transport = nullptr);

  [[nodiscard]] bool noc_hosted_sketches() const noexcept {
    return noc_hosted_;
  }

  /// Feeds the network-wide measurement vector: each monitor ingests the
  /// volumes of its own flows (as raw FlowUpdate records), ends the
  /// interval, and the NOC runs the lazy protocol.
  Detection observe(std::int64_t t, const Vector& x) override;

  [[nodiscard]] std::string name() const override {
    return "sketch-pca-distributed";
  }

  [[nodiscard]] const NetworkStats& network_stats() const noexcept {
    return transport_->stats();
  }
  void reset_network_stats() noexcept { transport_->reset_stats(); }

  [[nodiscard]] const Noc& noc() const noexcept { return noc_; }
  [[nodiscard]] std::size_t num_monitors() const noexcept {
    return monitors_.size();
  }

  /// Total sketch-summary bytes across all monitors.
  [[nodiscard]] std::size_t monitor_memory_bytes() const noexcept;

  /// Turns on the ensemble detection plane: every monitor runs a first-line
  /// scorer and ships kScoreReports, and the NOC-side observe() fuses them
  /// with the sketch-PCA verdict. Must be called before the first observe;
  /// the sketch Detection returned by observe() is unchanged — the fused
  /// verdict is read through last_fused().
  void enable_fusion(const FusionConfig& fusion,
                     const FirstLineConfig& first_line = {});
  [[nodiscard]] bool fusion_enabled() const noexcept {
    return fusion_.has_value();
  }
  /// The fused verdict of the last observed interval (abstaining during
  /// warm-up); default-constructed before the first observe.
  [[nodiscard]] const FusedDecision& last_fused() const noexcept {
    return last_fused_;
  }

 private:
  std::size_t m_;
  SketchDetectorConfig config_;
  bool noc_hosted_ = false;
  SimNetwork network_;          // default carrier
  Transport* transport_ = nullptr;  // the active carrier (may be external)
  std::vector<std::unique_ptr<LocalMonitor>> monitors_;
  std::vector<NodeId> monitor_ids_;
  Noc noc_;
  std::optional<FusionEngine> fusion_;
  FusedDecision last_fused_;
  std::uint64_t observed_ = 0;
};

}  // namespace spca
