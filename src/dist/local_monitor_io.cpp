// Checkpoint format of a LocalMonitor (versioned, little-endian):
//
//   u32 magic 'SPCM' | u32 version
//   u32 id | u64 window | f64 epsilon | u64 sketch_rows | u8 counter_only
//   projection: u8 kind | u64 seed | f64 sparsity
//   u32[] flow ids
//   counter: f64[] unflushed buckets | u64 intervals_completed
//   per sketch (omitted when counter_only):
//     i64 now | u64 bucket_count
//     per bucket: i64 timestamp | u64 count | f64 mean | f64 variance
//                 | f64[] payload
//   u8 has_scorer | FirstLineScorer state when 1 (version 2; see
//                   detect/first_line.cpp for the scalar run)
//
// This is everything a monitor owns: a restore answers the next sketch
// request bit-identically to a monitor that never died. The surrounding
// file-level CRC/versioning lives in fault/checkpoint (CheckpointStore);
// this blob only has to be internally consistent.
#include <utility>

#include "common/serialize.hpp"
#include "dist/local_monitor.hpp"

namespace spca {

namespace {
constexpr std::uint32_t kMagic = 0x4D435053;  // "SPCM"
// v2 appended the first-line scorer section; v1 blobs (pre-ensemble) are
// rejected rather than silently restored with a cold scorer, which would
// break the bit-identical-restore guarantee for fusion deployments.
constexpr std::uint32_t kVersion = 2;
}  // namespace

std::vector<std::byte> LocalMonitor::save_state() const {
  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);

  out.put(id_);
  out.put(window_);
  out.put(epsilon_);
  out.put(static_cast<std::uint64_t>(sketch_rows_));
  out.put(static_cast<std::uint8_t>(counter_only_ ? 1 : 0));
  out.put(static_cast<std::uint8_t>(projection_.kind()));
  out.put(projection_.seed());
  out.put(projection_.sparsity());
  out.put_all(flows_);
  out.put_all(counter_.buckets());
  out.put(counter_.intervals_completed());

  for (const FlowSketch& sketch : sketches_) {
    const VarianceHistogram& vh = sketch.histogram();
    out.put(vh.now());
    out.put(static_cast<std::uint64_t>(vh.buckets().size()));
    for (const VhBucket& b : vh.buckets()) {
      out.put(b.timestamp);
      out.put(b.count);
      out.put(b.mean);
      out.put(b.variance);
      out.put_all(b.payload);
    }
  }
  out.put(static_cast<std::uint8_t>(scorer_ ? 1 : 0));
  if (scorer_) scorer_->save(out);
  return std::move(out).take();
}

LocalMonitor LocalMonitor::restore_state(const std::vector<std::byte>& blob) {
  ByteReader in(blob);
  if (in.get<std::uint32_t>() != kMagic) {
    throw ProtocolError("LocalMonitor::restore_state: bad magic");
  }
  if (in.get<std::uint32_t>() != kVersion) {
    throw ProtocolError("LocalMonitor::restore_state: unknown version");
  }

  const auto id = in.get<NodeId>();
  const auto window = in.get<std::uint64_t>();
  const auto epsilon = in.get<double>();
  const auto sketch_rows = static_cast<std::size_t>(in.get<std::uint64_t>());
  const bool counter_only = in.get<std::uint8_t>() != 0;
  const auto kind = static_cast<ProjectionKind>(in.get<std::uint8_t>());
  const auto seed = in.get<std::uint64_t>();
  const auto sparsity = in.get<double>();
  if (kind != ProjectionKind::kGaussian && kind != ProjectionKind::kTugOfWar &&
      kind != ProjectionKind::kSparse && kind != ProjectionKind::kVerySparse) {
    throw ProtocolError("LocalMonitor::restore_state: bad projection kind");
  }
  const ProjectionSource projection(kind, seed, sparsity);

  if (id == kNocId) {
    throw ProtocolError("LocalMonitor::restore_state: bad monitor id");
  }
  std::vector<FlowId> flows = in.get_all<FlowId>();
  if (flows.empty()) {
    throw ProtocolError("LocalMonitor::restore_state: no flows");
  }
  LocalMonitor monitor(id, std::move(flows), window, epsilon, sketch_rows,
                       projection, counter_only);

  std::vector<double> buckets = in.get_all<double>();
  if (buckets.size() != monitor.flows_.size()) {
    throw ProtocolError("LocalMonitor::restore_state: bad counter shape");
  }
  const auto intervals = in.get<std::uint64_t>();
  monitor.counter_ = VolumeCounter::from_state(std::move(buckets), intervals);

  if (!counter_only) {
    monitor.sketches_.clear();
    monitor.sketches_.reserve(monitor.flows_.size());
    for (std::size_t j = 0; j < monitor.flows_.size(); ++j) {
      const auto now = in.get<std::int64_t>();
      const auto bucket_count = in.get<std::uint64_t>();
      std::vector<VhBucket> vh_buckets;
      vh_buckets.reserve(bucket_count);
      for (std::uint64_t b = 0; b < bucket_count; ++b) {
        VhBucket bucket;
        bucket.timestamp = in.get<std::int64_t>();
        bucket.count = in.get<std::uint64_t>();
        bucket.mean = in.get<double>();
        bucket.variance = in.get<double>();
        bucket.payload = in.get_all<double>();
        vh_buckets.push_back(std::move(bucket));
      }
      monitor.sketches_.push_back(FlowSketch::from_state(
          window, epsilon, sketch_rows, projection, std::move(vh_buckets),
          now));
    }
  }
  if (in.get<std::uint8_t>() != 0) {
    monitor.scorer_ = FirstLineScorer::restore(in);
  }
  if (!in.exhausted()) {
    throw ProtocolError("LocalMonitor::restore_state: trailing bytes");
  }
  return monitor;
}

}  // namespace spca
