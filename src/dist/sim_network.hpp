// In-process simulated network: synchronous message delivery with honest
// wire accounting (messages are serialized on send and parsed on drain).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "dist/message.hpp"

namespace spca {

/// Cumulative traffic statistics of the simulation.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Per message type (indexed by MessageType value 1..4).
  std::array<std::uint64_t, 5> messages_by_type{};
  std::array<std::uint64_t, 5> bytes_by_type{};
};

/// Routes serialized messages between nodes and keeps delivery statistics.
class SimNetwork final {
 public:
  /// Serializes and enqueues `msg` for its destination.
  void send(const Message& msg);

  /// Delivers (parses and removes) every message queued for `node`, in
  /// send order.
  [[nodiscard]] std::vector<Message> drain(NodeId node);

  /// True if `node` has queued messages.
  [[nodiscard]] bool has_mail(NodeId node) const;

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetworkStats{}; }

 private:
  std::map<NodeId, std::vector<std::vector<std::byte>>> queues_;
  NetworkStats stats_;
};

}  // namespace spca
