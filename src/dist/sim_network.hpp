// In-process simulated network: synchronous message delivery with honest
// wire accounting (messages are serialized on send and parsed on drain).
#pragma once

#include <map>
#include <vector>

#include "dist/message.hpp"
#include "net/transport.hpp"

namespace spca {

/// Routes serialized messages between nodes and keeps delivery statistics.
class SimNetwork final : public Transport {
 public:
  /// Serializes and enqueues `msg` for its destination.
  void send(const Message& msg) override;

  /// Delivers (parses and removes) every message queued for `node`, in
  /// send order.
  [[nodiscard]] std::vector<Message> drain(NodeId node) override;

  /// Delivers only the queued messages of `type` for `node`, leaving the
  /// rest queued in order.
  [[nodiscard]] std::vector<Message> take(NodeId node,
                                          MessageType type) override;

  /// True if `node` has queued messages.
  [[nodiscard]] bool has_mail(NodeId node) const override;

  [[nodiscard]] const NetworkStats& stats() const noexcept override {
    return stats_;
  }
  void reset_stats() noexcept override { stats_ = NetworkStats{}; }

 private:
  std::map<NodeId, std::vector<std::vector<std::byte>>> queues_;
  NetworkStats stats_;
};

}  // namespace spca
