// Simulated Network Operation Center (Fig. 2, right half): assembles the
// network-wide measurement vector from monitor volume reports, maintains
// the sketch-PCA model, and runs the lazy detection protocol of Sec. IV-C:
//
//   d(y*) <= delta  -> no anomaly, keep the stale model (no communication)
//   d(y*) >  delta  -> pull fresh sketches, refit, re-check; alarm only if
//                      the fresh model still flags the vector.
//
// The class is transport-generic: the synchronous simulation drives it via
// `detect` (which pumps the in-process monitors inline), while the TCP NOC
// daemon drives the same state machine via the `assemble_volumes` /
// `ingest_sketch_response` / `refit` / `detect_with_pull` building blocks,
// supplying its own pull round-trip over the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "core/sketch_detector.hpp"
#include "dist/message.hpp"
#include "net/transport.hpp"
#include "pca/backend/model_backend.hpp"
#include "pca/pca_model.hpp"
#include "sketch/flow_sketch.hpp"

namespace spca {

/// NOC-side configuration.
struct NocConfig {
  /// Sliding-window length n (for threshold scaling, eq. 23).
  std::size_t window = 2016;
  /// Sketch length l (must match the monitors').
  std::size_t sketch_rows = 200;
  /// Q-statistic false-alarm rate.
  double alpha = 0.01;
  /// Normal-subspace selection.
  RankPolicy rank_policy = RankPolicy::fixed(6);
  /// Lazy mode on/off (off = refit every interval, the eager ablation).
  bool lazy = true;
  /// Theorem 1's alternative deployment: when monitors "only have limited
  /// computation resources or bandwidth, we can maintain the VH and compute
  /// the sketches at the NOC side" — the NOC builds FlowSketches from the
  /// volume reports itself and never issues sketch pulls. Costs the NOC
  /// O(m log n) time and O(m log^2 n) space; monitors need only the O(1)
  /// Volume Counter. Requires `epsilon` and `seed` below.
  bool host_sketches = false;
  /// VH epsilon for NOC-hosted sketches.
  double epsilon = 0.01;
  /// Projection parameters for NOC-hosted sketches.
  ProjectionKind projection = ProjectionKind::kGaussian;
  double sparsity = 3.0;
  std::uint64_t seed = 42;
  /// Model-fitting strategy (exact | warm | rsvd | fd) and its tuning knobs.
  ModelBackendConfig backend;
};

/// Derives the NOC-side configuration from the shared detector parameters
/// (used by DistributedDetector and the NOC daemon, so both deployments fit
/// the same model from the same flags).
[[nodiscard]] NocConfig noc_config_from(const SketchDetectorConfig& config,
                                        bool host_sketches);

/// The NOC node.
class Noc final {
 public:
  Noc(std::size_t num_flows, const NocConfig& config);

  /// Validates and assembles the volume reports of interval `t` into the
  /// network-wide measurement vector (feeding the NOC-hosted sketches in
  /// host_sketches mode). Every flow must be covered exactly once.
  [[nodiscard]] Vector assemble_volumes(std::int64_t t,
                                        const std::vector<Message>& reports);

  /// Drains queued volume reports for interval `t` and assembles them.
  [[nodiscard]] Vector collect_volumes(std::int64_t t, Transport& network);

  /// Requests sketches from all monitors (they must answer before
  /// `ingest_sketch_responses` is called).
  void request_sketches(std::int64_t t, const std::vector<NodeId>& monitors,
                        Transport& network);

  /// Stores one sketch response into the per-flow state (no refit).
  void ingest_sketch_response(const Message& msg);

  /// Ingests queued sketch responses and refits the PCA model.
  void ingest_sketch_responses(Transport& network);

  /// Recomputes the PCA model, rank, and threshold from the stored per-flow
  /// sketch state. Every flow must have reported at least once.
  void refit();

  /// host_sketches mode: refreshes the per-flow state from the NOC's own
  /// histograms and refits — the no-communication pull.
  void pull_hosted();

  /// Runs the lazy detection protocol for measurement `x` of interval `t`,
  /// with `pull` as the "fetch fresh sketches and refit" round-trip. The
  /// model is guaranteed fresh after `pull` returns. Alarms are sent to the
  /// operator console (kNocId) through `network` and consumed again via
  /// `take`, so concurrently queued protocol traffic is untouched.
  [[nodiscard]] Detection detect_with_pull(std::int64_t t, const Vector& x,
                                           const std::function<void()>& pull,
                                           Transport& network);

  /// Synchronous-simulation front end of `detect_with_pull`: the pull
  /// round-trip requests sketches, runs `pump_monitors` (the stand-in for
  /// the monitors' event loops), and ingests the responses.
  [[nodiscard]] Detection detect(std::int64_t t, const Vector& x,
                                 const std::vector<NodeId>& monitors,
                                 Transport& network,
                                 const std::function<void()>& pump_monitors);

  [[nodiscard]] const std::optional<PcaModel>& model() const noexcept {
    return model_;
  }
  [[nodiscard]] std::size_t num_flows() const noexcept { return m_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t sketch_pulls() const noexcept {
    return sketch_pulls_;
  }
  [[nodiscard]] std::uint64_t alarms_sent() const noexcept {
    return alarms_sent_;
  }

  /// The model-fitting strategy in use (for tests and checkpoint codecs).
  [[nodiscard]] const ModelBackend& backend() const noexcept {
    return *backend_;
  }

  /// Serializes the full NOC state — configuration, per-flow sketch state,
  /// hosted histograms, the fitted model, rank, and threshold — into a
  /// versioned blob (dist/noc_io.cpp). A restored NOC continues the lazy
  /// protocol bit-identically.
  [[nodiscard]] std::vector<std::byte> save_state() const;

  /// Rebuilds a NOC from `save_state` output; throws ProtocolError on a
  /// malformed or truncated blob. When `expected_backend` is set, a blob
  /// written under a different model backend is rejected as ProtocolError:
  /// backend state is not interchangeable, and silently refitting cold
  /// would break the bit-identical-restore guarantee.
  [[nodiscard]] static Noc restore_state(
      const std::vector<std::byte>& blob,
      std::optional<ModelBackendKind> expected_backend = std::nullopt);

 private:
  std::size_t m_;
  NocConfig config_;
  std::unique_ptr<ModelBackend> backend_;
  /// Last received sketch state per flow: mean, count, z-vector.
  struct FlowState {
    double mean = 0.0;
    std::uint64_t count = 0;
    std::vector<double> sketch;
    bool seen = false;
  };
  std::vector<FlowState> flow_state_;
  /// NOC-hosted sketches (Theorem 1 alternative mode), empty otherwise.
  std::vector<FlowSketch> hosted_sketches_;
  std::optional<PcaModel> model_;
  std::size_t rank_ = 1;
  double threshold_squared_ = 0.0;
  std::uint64_t sketch_pulls_ = 0;
  std::uint64_t alarms_sent_ = 0;
  /// Interval the NOC most recently worked on; labels the refit span,
  /// since refit() itself is interval-agnostic. Not checkpointed: it is
  /// telemetry only and must never influence the trajectory.
  std::int64_t last_interval_ = -1;
};

}  // namespace spca
