#include "dist/message.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace spca {

namespace {

// Header: type(1) + from(4) + to(4) + interval(8) + id_count(4) +
// value_count(4) = 25 bytes.
constexpr std::size_t kHeaderBytes = 25;

}  // namespace

std::size_t Message::wire_bytes() const noexcept {
  return kHeaderBytes + ids.size() * sizeof(std::uint32_t) +
         values.size() * sizeof(double);
}

std::vector<std::byte> serialize(const Message& msg) {
  ByteWriter out;
  out.put(static_cast<std::uint8_t>(msg.type));
  out.put(msg.from);
  out.put(msg.to);
  out.put(msg.interval);
  out.put(static_cast<std::uint32_t>(msg.ids.size()));
  out.put(static_cast<std::uint32_t>(msg.values.size()));
  for (const std::uint32_t id : msg.ids) out.put(id);
  for (const double v : msg.values) out.put(v);
  return std::move(out).take();
}

Message deserialize(const std::vector<std::byte>& buffer) {
  ByteReader in(buffer);
  Message msg;
  const auto type = in.get<std::uint8_t>();
  if (type < 1 || type > 6) {
    throw ProtocolError("deserialize: unknown message type");
  }
  msg.type = static_cast<MessageType>(type);
  msg.from = in.get<NodeId>();
  msg.to = in.get<NodeId>();
  msg.interval = in.get<std::int64_t>();
  const auto id_count = in.get<std::uint32_t>();
  const auto value_count = in.get<std::uint32_t>();
  // Validate the announced payload size against the bytes actually present
  // before reserving anything: a hostile length field must not drive a
  // multi-gigabyte allocation. The division form cannot overflow.
  const std::size_t rest = in.remaining();
  if (id_count > rest / sizeof(std::uint32_t) ||
      value_count > rest / sizeof(double) ||
      id_count * sizeof(std::uint32_t) + value_count * sizeof(double) !=
          rest) {
    throw ProtocolError("deserialize: payload length mismatch");
  }
  msg.ids.reserve(id_count);
  for (std::uint32_t i = 0; i < id_count; ++i) {
    msg.ids.push_back(in.get<std::uint32_t>());
  }
  msg.values.reserve(value_count);
  for (std::uint32_t i = 0; i < value_count; ++i) {
    msg.values.push_back(in.get<double>());
  }
  if (!in.exhausted()) {
    throw ProtocolError("deserialize: trailing bytes in message buffer");
  }
  return msg;
}

}  // namespace spca
