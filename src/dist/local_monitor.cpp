#include "dist/local_monitor.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "detect/score_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/span_log.hpp"
#include "par/thread_pool.hpp"

namespace spca {

LocalMonitor::LocalMonitor(NodeId id, std::vector<FlowId> flows,
                           std::uint64_t window, double epsilon,
                           std::size_t sketch_rows,
                           const ProjectionSource& projection,
                           bool counter_only)
    : id_(id),
      flows_(std::move(flows)),
      window_(window),
      epsilon_(epsilon),
      sketch_rows_(sketch_rows),
      projection_(projection),
      counter_only_(counter_only),
      counter_(static_cast<std::uint32_t>(flows_.size())) {
  SPCA_EXPECTS(id != kNocId);
  SPCA_EXPECTS(!flows_.empty());
  if (!counter_only_) {
    sketches_.reserve(flows_.size());
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      sketches_.emplace_back(window, epsilon, sketch_rows, projection);
    }
  }
}

void LocalMonitor::record(FlowId flow, std::uint32_t size_bytes) {
  const auto it = std::find(flows_.begin(), flows_.end(), flow);
  SPCA_EXPECTS(it != flows_.end());
  counter_.record(static_cast<FlowId>(it - flows_.begin()), size_bytes);
}

void LocalMonitor::ingest_volume(FlowId flow, double bytes) {
  const auto it = std::find(flows_.begin(), flows_.end(), flow);
  SPCA_EXPECTS(it != flows_.end());
  counter_.record_bytes(static_cast<FlowId>(it - flows_.begin()), bytes);
}

Vector LocalMonitor::flush_interval(std::int64_t t) {
  const Vector volumes = counter_.end_interval();
  // The per-flow O(l) updates and VH bucket merges are independent across
  // flows (each FlowSketch owns its histogram; the shared ProjectionSource
  // is stateless), so the Fig. 4 interval close fans out across the pool.
  // Static chunking keeps the result bit-identical to the serial loop.
  global_pool().parallel_for(0, sketches_.size(),
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) {
                                 sketches_[i].add(t, volumes[i]);
                               }
                             });
  // First-line scoring rides the same flush so end_interval, absorb_interval,
  // and the daemons' warm-rebuild replay all advance the scorer identically.
  if (scorer_) (void)scorer_->observe(volumes.span());
  return volumes;
}

void LocalMonitor::enable_first_line(const FirstLineConfig& config) {
  SPCA_EXPECTS(!scorer_);
  SPCA_EXPECTS(counter_.intervals_completed() == 0);
  scorer_.emplace(config);
}

void LocalMonitor::absorb_interval(std::int64_t t) { (void)flush_interval(t); }

void LocalMonitor::absorb_block(std::int64_t first, std::size_t count,
                                std::span<const double> volumes) {
  const std::size_t w = flows_.size();
  SPCA_EXPECTS(volumes.size() == count * w);
  if (count == 0) return;
  // The counter plays no part here (the pipeline aggregated the volumes
  // already), but its interval count must stay in step with the per-interval
  // path so checkpoints remain interchangeable.
  counter_.advance_intervals(count);
  if (!counter_only_) {
    // Per-flow streams are independent; each lane walks its flow's column
    // through the whole block with one batched sketch update. Static
    // chunking keeps the result bit-identical to the serial loop at any
    // thread count.
    global_pool().parallel_for(0, w, [&](std::size_t lo, std::size_t hi) {
      std::vector<SketchUpdate> batch(count);
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t r = 0; r < count; ++r) {
          batch[r].t = first + static_cast<std::int64_t>(r);
          batch[r].volume = volumes[r * w + i];
        }
        sketches_[i].add_batch(batch);
      }
    });
  }
  // The scorer is a serial per-interval stream: walk the block rows in
  // order so the state matches the per-interval path bit for bit.
  if (scorer_) {
    for (std::size_t r = 0; r < count; ++r) {
      (void)scorer_->observe(volumes.subspan(r * w, w));
    }
  }
}

void LocalMonitor::end_interval(std::int64_t t, Transport& network) {
  // Per-monitor interval-close latency: the O(w log n) Fig. 4 update of all
  // owned flows plus the volume report send.
  static Histogram& update_seconds =
      MetricsRegistry::global().histogram("spca.monitor.update_seconds");
  static Counter& intervals =
      MetricsRegistry::global().counter("spca.monitor.intervals");
  const ScopedTimer timer(update_seconds);
  intervals.inc();
  // One heartbeat a day at 5-minute intervals; debug level sees them all.
  SPCA_LOG_EVERY_N(288, LogLevel::kDebug, "monitor ", id_,
                   ": closing interval ", t);

  const std::string node = "monitor" + std::to_string(id_);
  Vector volumes;
  {
    const ScopedSpan span(node, kStageSketchClose, t);
    volumes = flush_interval(t);
  }
  const ScopedSpan span(node, kStageWireTx, t);
  Message report;
  report.type = MessageType::kVolumeReport;
  report.from = id_;
  report.to = upstream_;
  report.interval = t;
  report.ids = flows_;
  report.values.assign(volumes.begin(), volumes.end());
  last_report_ = report;
  network.send(report);
  if (scorer_) {
    static Counter& score_reports =
        MetricsRegistry::global().counter("spca.detect.score_reports");
    score_reports.inc();
    last_score_report_ =
        make_score_report(id_, upstream_, t, scorer_->last());
    network.send(last_score_report_);
  }
}

void LocalMonitor::resend_report(Transport& network) {
  if (last_report_.ids.empty()) return;  // nothing reported yet
  network.send(last_report_);
  if (!last_score_report_.ids.empty()) network.send(last_score_report_);
}

void LocalMonitor::handle_mail(Transport& network) {
  for (const Message& msg : network.drain(id_)) {
    handle_request(msg, network);
  }
}

void LocalMonitor::handle_request(const Message& msg, Transport& network) {
  if (msg.type != MessageType::kSketchRequest) {
    throw ProtocolError("LocalMonitor: unexpected message type");
  }
  if (counter_only_) {
    throw ProtocolError(
        "LocalMonitor: sketch request received by a counter-only monitor "
        "(the NOC must be configured with host_sketches)");
  }
  static Counter& responses =
      MetricsRegistry::global().counter("spca.monitor.sketch_responses");
  responses.inc();
  network.send(make_sketch_response(msg.interval));
}

Message LocalMonitor::make_sketch_response(std::int64_t interval) const {
  Message response;
  response.type = MessageType::kSketchResponse;
  response.from = id_;
  response.to = upstream_;
  response.interval = interval;
  response.ids = flows_;
  // Every flow owns a fixed-size block [mean, count, z_1..z_l] of the
  // payload, so emission parallelizes over flows with disjoint writes.
  const std::size_t block = sketch_rows_ + 2;
  response.values.resize(flows_.size() * block);
  global_pool().parallel_for(
      0, sketches_.size(), [&](std::size_t lo, std::size_t hi) {
        Vector z;
        for (std::size_t i = lo; i < hi; ++i) {
          double* out = response.values.data() + i * block;
          const FlowSketch::Report report = sketches_[i].report_into(z);
          out[0] = report.mean;
          out[1] = static_cast<double>(report.count);
          for (std::size_t k = 0; k < sketch_rows_; ++k) out[2 + k] = z[k];
        }
      });
  return response;
}

std::size_t LocalMonitor::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& s : sketches_) bytes += s.memory_bytes();
  return bytes;
}

}  // namespace spca
