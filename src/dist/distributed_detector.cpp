#include "dist/distributed_detector.hpp"

#include "common/contracts.hpp"
#include "obs/span_log.hpp"

namespace spca {

DistributedDetector::DistributedDetector(std::size_t dimensions,
                                         std::size_t num_monitors,
                                         const SketchDetectorConfig& config,
                                         bool noc_hosted_sketches,
                                         Transport* transport)
    : m_(dimensions),
      config_(config),
      noc_hosted_(noc_hosted_sketches),
      transport_(transport != nullptr ? transport : &network_),
      noc_(dimensions, noc_config_from(config, noc_hosted_sketches)) {
  SPCA_EXPECTS(dimensions >= 2);
  SPCA_EXPECTS(num_monitors >= 1 && num_monitors <= dimensions);

  const ProjectionSource source =
      config.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(config.seed, config.window)
          : ProjectionSource(config.projection, config.seed, config.sparsity);

  // Round-robin ownership: flow j belongs to monitor (j % k). With OD flows
  // laid out origin-major this spreads each origin's flows evenly, like
  // monitors placed at ingress routers.
  std::vector<std::vector<FlowId>> ownership(num_monitors);
  for (std::size_t j = 0; j < dimensions; ++j) {
    ownership[j % num_monitors].push_back(static_cast<FlowId>(j));
  }
  for (std::size_t k = 0; k < num_monitors; ++k) {
    const NodeId id = static_cast<NodeId>(k + 1);  // 0 is the NOC
    monitors_.push_back(std::make_unique<LocalMonitor>(
        id, ownership[k], config.window, config.epsilon, config.sketch_rows,
        source, /*counter_only=*/noc_hosted_sketches));
    monitor_ids_.push_back(id);
  }
}

void DistributedDetector::enable_fusion(const FusionConfig& fusion,
                                        const FirstLineConfig& first_line) {
  SPCA_EXPECTS(!fusion_ && observed_ == 0);
  fusion_.emplace(fusion);
  for (const auto& monitor : monitors_) {
    monitor->enable_first_line(first_line);
  }
}

Detection DistributedDetector::observe(std::int64_t t, const Vector& x) {
  SPCA_EXPECTS(x.size() == m_);
  // Monitors observe their flows' traffic and close the interval.
  for (const auto& monitor : monitors_) {
    {
      const ScopedSpan span("monitor" + std::to_string(monitor->id()),
                            kStageIngestAbsorb, t);
      for (const FlowId flow : monitor->flows()) {
        monitor->ingest_volume(flow, x[flow]);
      }
    }
    monitor->end_interval(t, *transport_);
  }
  // Score reports must come out before collect_volumes: the NOC's drain
  // would otherwise swallow them as unexpected volume traffic.
  std::vector<MonitorScore> scores;
  if (fusion_) {
    for (const Message& msg :
         transport_->take(kNocId, MessageType::kScoreReport)) {
      for (const MonitorScore& s : parse_score_report(msg)) {
        scores.push_back(s);
      }
    }
  }
  // The NOC assembles the network-wide measurement vector.
  const Vector assembled = noc_.collect_volumes(t, *transport_);
  ++observed_;
  if (observed_ < config_.window) {
    if (fusion_) last_fused_ = fusion_->fuse(t, Detection{}, scores);
    return Detection{};  // warm-up, matching SketchDetector
  }
  const auto pump = [this] {
    for (const auto& monitor : monitors_) monitor->handle_mail(*transport_);
  };
  const Detection det =
      noc_.detect(t, assembled, monitor_ids_, *transport_, pump);
  if (fusion_) last_fused_ = fusion_->fuse(t, det, scores);
  return det;
}

std::size_t DistributedDetector::monitor_memory_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& monitor : monitors_) bytes += monitor->memory_bytes();
  return bytes;
}

}  // namespace spca
