// Aggregation codec of the hierarchical deployment: a regional NOC merges
// the per-monitor messages of its shard (volume reports, sketch responses,
// or first-line score reports) into one kAggregate message, and the root
// NOC unwraps it back into the inner message type.
//
// The codec exists so the hierarchy is invisible to the detection protocol:
// merging is pure concatenation in ascending sender-id order, and the root's
// assembly/ingest paths are keyed by flow id, so a run through regional
// NOCs is bit-identical to the flat deployment by construction. The inner
// kind is never written on the wire — it is recovered from the payload
// shape (a volume report carries one value per id; a score report carries
// two; a sketch response carries a [mean, count, z_1..z_l] block per id,
// always >= 3 values since l >= 1), so the shapes can only coincide on an
// empty payload, which is rejected.
//
// Node-id spaces: the root NOC is 0, monitors are 1..k, and regional NOCs
// live at kRegionBase + region, so the spaces can never collide.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/message.hpp"

namespace spca {

/// First regional-NOC node id (monitors are far below: k <= num flows).
inline constexpr NodeId kRegionBase = 0x10000;

/// Node id of region `region` (0-based).
[[nodiscard]] constexpr NodeId region_node_id(std::size_t region) noexcept {
  return kRegionBase + static_cast<NodeId>(region);
}

/// True for ids in the regional-NOC space.
[[nodiscard]] constexpr bool is_region_node(NodeId id) noexcept {
  return id >= kRegionBase;
}

/// Inverse of region_node_id.
[[nodiscard]] constexpr std::size_t region_index(NodeId id) noexcept {
  return static_cast<std::size_t>(id - kRegionBase);
}

/// Node ids of an R-region hierarchy, in region order.
[[nodiscard]] std::vector<NodeId> region_node_ids(std::size_t regions);

/// Contiguous-block partition of monitors 1..k over R regions: region r
/// owns monitors [r*k/R + 1, (r+1)*k/R]. Requires 1 <= R <= k, so every
/// region owns at least one monitor.
[[nodiscard]] std::size_t region_of_monitor(std::size_t monitors,
                                            std::size_t regions,
                                            NodeId monitor);

/// The monitor ids of region `region` under the partition above, ascending.
[[nodiscard]] std::vector<NodeId> region_monitor_ids(std::size_t monitors,
                                                     std::size_t regions,
                                                     std::size_t region);

/// Merges same-type, same-interval per-monitor messages into one kAggregate
/// from `from` to `to`, concatenating ids and values in ascending sender-id
/// order — the bit-stable merge order, independent of arrival order. Parts
/// must be kVolumeReport, kSketchResponse, or kScoreReport, non-empty, and
/// from distinct senders; throws ProtocolError otherwise.
[[nodiscard]] Message merge_aggregate(std::vector<Message> parts, NodeId from,
                                      NodeId to);

/// True when `msg` is a kAggregate whose payload has the shape of `inner`
/// (kVolumeReport: one value per id; kScoreReport: two values per id;
/// kSketchResponse: sketch_rows + 2 values per id). Lets the root tell a
/// stale volume aggregate from a score or sketch aggregate while all three
/// ride the same message type.
[[nodiscard]] bool aggregate_shape_is(const Message& msg, MessageType inner,
                                      std::size_t sketch_rows) noexcept;

/// Validates `agg` against the expected inner type and returns the payload
/// re-typed as `inner` (from/to/interval preserved), so the root NOC feeds
/// it through the exact code path a flat deployment uses. Throws
/// ProtocolError on a type or shape mismatch.
[[nodiscard]] Message unwrap_aggregate(const Message& agg, MessageType inner,
                                       std::size_t sketch_rows);

}  // namespace spca
