// Simulated local monitor (Fig. 1 left): owns a subset of the OD flows,
// runs the full Fig. 4 pipeline — packet aggregation feeds a VolumeCounter;
// at interval end the volumes go into per-flow FlowSketches and a volume
// report goes to the NOC; sketch requests are answered from the histograms.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "detect/first_line.hpp"
#include "dist/message.hpp"
#include "linalg/vector.hpp"
#include "net/transport.hpp"
#include "rand/projection_source.hpp"
#include "sketch/flow_sketch.hpp"
#include "traffic/flow.hpp"
#include "traffic/volume_counter.hpp"

namespace spca {

/// One monitor process in the simulated deployment.
class LocalMonitor final {
 public:
  /// `flows` lists the global FlowIds this monitor observes; all monitors
  /// must construct their ProjectionSource from the same (kind, seed, s) so
  /// the NOC can stitch their sketch columns together.
  ///
  /// With `counter_only` (Theorem 1's low-resource deployment) the monitor
  /// maintains no sketches at all — only the O(1)-per-packet Volume
  /// Counter — and rejects sketch requests; the NOC must host the
  /// histograms itself (NocConfig::host_sketches).
  LocalMonitor(NodeId id, std::vector<FlowId> flows, std::uint64_t window,
               double epsilon, std::size_t sketch_rows,
               const ProjectionSource& projection, bool counter_only = false);

  /// Records one (FlowID, Size) observation of the current interval; flow
  /// must be owned by this monitor. O(1) per packet.
  void record(FlowId flow, std::uint32_t size_bytes);

  /// Records a pre-aggregated byte amount for an owned flow (interval-level
  /// replay of a trace; preserves fractional bytes).
  void ingest_volume(FlowId flow, double bytes);

  /// Ends interval `t`: flushes the volume counter into the sketches and
  /// sends the volume report to the NOC. O(w log n) for w owned flows.
  void end_interval(std::int64_t t, Transport& network);

  /// Ends interval `t` locally: flushes the counter into the sketches
  /// without sending anything. A restarted monitor daemon replays its trace
  /// through this to rebuild sketch state the NOC has already accounted
  /// for, so the post-reconnect trajectory continues bit-identically.
  void absorb_interval(std::int64_t t);

  /// Batched local absorption: replays `count` consecutive intervals
  /// [first, first + count) whose pre-aggregated volumes are given row-major
  /// (`volumes[i * flows().size() + j]` = interval first+i, owned flow j, in
  /// flows() order). The per-flow updates go through FlowSketch::add_batch,
  /// so the resulting state is bit-identical to calling ingest_volume +
  /// absorb_interval per interval — at every block size and thread count.
  /// Requires an empty (just-flushed) volume counter; this is the ingest
  /// pipeline's hot path.
  void absorb_block(std::int64_t first, std::size_t count,
                    std::span<const double> volumes);

  /// Re-sends the most recent volume report (no-op before the first
  /// end_interval). Used by the daemon after a NOC reconnect: a report in
  /// flight when the NOC went down died with the old connection, and the
  /// restarted NOC cannot advance until it arrives again. The NOC tolerates
  /// the duplicate copy that a racing original may also deliver. When the
  /// first-line scorer is on, the matching score report is re-sent too.
  void resend_report(Transport& network);

  /// Turns on the first-line scorer of the ensemble detection plane: every
  /// interval close scores the monitor's owned volumes (entropy + rate
  /// z-scores) and end_interval additionally ships a kScoreReport upstream.
  /// Must be called before the first interval; all monitors of a deployment
  /// must agree (the NOC waits for score reports from everyone or no one).
  void enable_first_line(const FirstLineConfig& config = {});
  [[nodiscard]] bool first_line_enabled() const noexcept {
    return scorer_.has_value();
  }
  /// The scorer state, when enabled (tests, fused local pipelines).
  [[nodiscard]] const FirstLineScorer* first_line() const noexcept {
    return scorer_ ? &*scorer_ : nullptr;
  }

  /// Handles queued requests (sketch pulls), sending responses.
  void handle_mail(Transport& network);

  /// Answers one sketch request (used by the daemon event loop, which
  /// receives its mail through the transport's inbox rather than drain()).
  void handle_request(const Message& msg, Transport& network);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<FlowId>& flows() const noexcept {
    return flows_;
  }

  /// Where volume reports and sketch responses go. Defaults to the root NOC
  /// (kNocId); the hierarchical deployment points it at the monitor's
  /// regional NOC instead. Deployment topology, not stream state: it is not
  /// checkpointed, and a restored monitor must be re-pointed by its daemon.
  void set_upstream(NodeId upstream) noexcept { upstream_ = upstream; }
  [[nodiscard]] NodeId upstream() const noexcept { return upstream_; }

  /// Summary-state bytes across the monitor's sketches (Theorem 1).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Serializes the full monitor state — configuration, unflushed volume
  /// buckets, and every sketch's VH buckets — into a versioned blob. A
  /// monitor restored from it answers sketch requests bit-identically to
  /// one that lived through the whole stream (dist/local_monitor_io.cpp).
  [[nodiscard]] std::vector<std::byte> save_state() const;

  /// Rebuilds a monitor from `save_state` output; throws ProtocolError on a
  /// malformed or truncated blob.
  [[nodiscard]] static LocalMonitor restore_state(
      const std::vector<std::byte>& blob);

 private:
  [[nodiscard]] Message make_sketch_response(std::int64_t interval) const;
  /// Flushes the counter into the sketches; returns the interval volumes.
  Vector flush_interval(std::int64_t t);

  NodeId id_;
  NodeId upstream_ = kNocId;
  std::vector<FlowId> flows_;
  std::uint64_t window_;
  double epsilon_;
  std::size_t sketch_rows_;
  ProjectionSource projection_;
  bool counter_only_;
  VolumeCounter counter_;
  std::vector<FlowSketch> sketches_;  // aligned with flows_; empty when
                                      // counter_only_
  std::optional<FirstLineScorer> scorer_;  // engaged by enable_first_line;
                                           // checkpointed (blob v2)
  Message last_report_;  // retained for resend_report; not checkpointed (a
                         // restarted monitor reports again naturally)
  Message last_score_report_;  // ditto, for the first-line score
};

}  // namespace spca
