// Checkpoint format of the Noc (versioned, little-endian):
//
//   u32 magic 'SPCN' | u32 version (2)
//   config: u64 window | u64 sketch_rows | f64 alpha
//           | u8 rank_kind | u64 fixed_rank | f64 energy_fraction
//           | f64 ksigma_k | f64 scree_knee
//           | u8 lazy | u8 host_sketches | f64 epsilon
//           | u8 projection_kind | f64 sparsity | u64 seed
//           | backend config (see write_backend_config: u8 kind
//             | f64 drift_threshold | i32 warm_sweeps | u64 rank
//             | u64 oversample | i32 power_iters | u64 fd_rows | u64 seed)
//   u64 m | u64 sketch_pulls | u64 alarms_sent
//   per flow (m times): f64 mean | u64 count | u8 seen | f64[] sketch
//   u64 hosted_count (0 or m); per hosted sketch:
//     i64 now | u64 bucket_count
//     per bucket: i64 timestamp | u64 count | f64 mean | f64 variance
//                 | f64[] payload
//   model: u8 fitted; if fitted: u64 sample_count | f64[] singular_values
//          | f64[] components (row-major m*m) | u64 basis_cols | f64[] means
//          | u64 rank | f64 threshold_squared
//   backend state (kind-specific, see ModelBackend::save_state)
//
// Version history: v1 had no backend config/state section and no
// basis_cols; v1 blobs are no longer readable (restore throws
// ProtocolError on the version word).
#include <utility>

#include "common/serialize.hpp"
#include "dist/noc.hpp"

namespace spca {

namespace {
constexpr std::uint32_t kMagic = 0x4E435053;  // "SPCN"
constexpr std::uint32_t kVersion = 2;
}  // namespace

std::vector<std::byte> Noc::save_state() const {
  ByteWriter out;
  out.put(kMagic);
  out.put(kVersion);

  out.put(static_cast<std::uint64_t>(config_.window));
  out.put(static_cast<std::uint64_t>(config_.sketch_rows));
  out.put(config_.alpha);
  out.put(static_cast<std::uint8_t>(config_.rank_policy.kind));
  out.put(static_cast<std::uint64_t>(config_.rank_policy.fixed_rank));
  out.put(config_.rank_policy.energy_fraction);
  out.put(config_.rank_policy.ksigma_k);
  out.put(config_.rank_policy.scree_knee);
  out.put(static_cast<std::uint8_t>(config_.lazy ? 1 : 0));
  out.put(static_cast<std::uint8_t>(config_.host_sketches ? 1 : 0));
  out.put(config_.epsilon);
  out.put(static_cast<std::uint8_t>(config_.projection));
  out.put(config_.sparsity);
  out.put(config_.seed);
  write_backend_config(out, config_.backend);

  out.put(static_cast<std::uint64_t>(m_));
  out.put(sketch_pulls_);
  out.put(alarms_sent_);

  for (const FlowState& state : flow_state_) {
    out.put(state.mean);
    out.put(state.count);
    out.put(static_cast<std::uint8_t>(state.seen ? 1 : 0));
    out.put_all(state.sketch);
  }

  out.put(static_cast<std::uint64_t>(hosted_sketches_.size()));
  for (const FlowSketch& sketch : hosted_sketches_) {
    const VarianceHistogram& vh = sketch.histogram();
    out.put(vh.now());
    out.put(static_cast<std::uint64_t>(vh.buckets().size()));
    for (const VhBucket& b : vh.buckets()) {
      out.put(b.timestamp);
      out.put(b.count);
      out.put(b.mean);
      out.put(b.variance);
      out.put_all(b.payload);
    }
  }

  out.put(static_cast<std::uint8_t>(model_.has_value() ? 1 : 0));
  if (model_.has_value()) {
    out.put(model_->sample_count());
    out.put_all(model_->singular_values().data());
    std::vector<double> components(m_ * m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        components[i * m_ + j] = model_->components()(i, j);
      }
    }
    out.put_all(components);
    out.put(static_cast<std::uint64_t>(model_->basis_cols()));
    out.put_all(model_->column_means().data());
    out.put(static_cast<std::uint64_t>(rank_));
    out.put(threshold_squared_);
  }
  backend_->save_state(out);
  return std::move(out).take();
}

Noc Noc::restore_state(const std::vector<std::byte>& blob,
                       std::optional<ModelBackendKind> expected_backend) {
  ByteReader in(blob);
  if (in.get<std::uint32_t>() != kMagic) {
    throw ProtocolError("Noc::restore_state: bad magic");
  }
  if (in.get<std::uint32_t>() != kVersion) {
    throw ProtocolError("Noc::restore_state: unknown version");
  }

  NocConfig config;
  config.window = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.sketch_rows = static_cast<std::size_t>(in.get<std::uint64_t>());
  config.alpha = in.get<double>();
  config.rank_policy.kind =
      static_cast<RankPolicy::Kind>(in.get<std::uint8_t>());
  config.rank_policy.fixed_rank =
      static_cast<std::size_t>(in.get<std::uint64_t>());
  config.rank_policy.energy_fraction = in.get<double>();
  config.rank_policy.ksigma_k = in.get<double>();
  config.rank_policy.scree_knee = in.get<double>();
  config.lazy = in.get<std::uint8_t>() != 0;
  config.host_sketches = in.get<std::uint8_t>() != 0;
  config.epsilon = in.get<double>();
  config.projection = static_cast<ProjectionKind>(in.get<std::uint8_t>());
  config.sparsity = in.get<double>();
  config.seed = in.get<std::uint64_t>();
  config.backend = read_backend_config(in);
  if (config.alpha <= 0.0 || config.alpha >= 1.0 || config.sketch_rows == 0) {
    throw ProtocolError("Noc::restore_state: bad config");
  }
  if (expected_backend && config.backend.kind != *expected_backend) {
    throw ProtocolError(
        std::string("Noc::restore_state: checkpoint written by the '") +
        to_string(config.backend.kind) + "' model backend, expected '" +
        to_string(*expected_backend) + "'");
  }

  const auto m = static_cast<std::size_t>(in.get<std::uint64_t>());
  if (m < 2) throw ProtocolError("Noc::restore_state: bad flow count");
  Noc noc(m, config);
  noc.sketch_pulls_ = in.get<std::uint64_t>();
  noc.alarms_sent_ = in.get<std::uint64_t>();

  for (FlowState& state : noc.flow_state_) {
    state.mean = in.get<double>();
    state.count = in.get<std::uint64_t>();
    state.seen = in.get<std::uint8_t>() != 0;
    state.sketch = in.get_all<double>();
    if (state.seen && state.sketch.size() != config.sketch_rows) {
      throw ProtocolError("Noc::restore_state: bad sketch shape");
    }
  }

  const auto hosted_count = in.get<std::uint64_t>();
  if (hosted_count != noc.hosted_sketches_.size()) {
    throw ProtocolError("Noc::restore_state: hosted sketch count mismatch");
  }
  if (hosted_count > 0) {
    const ProjectionSource source =
        config.projection == ProjectionKind::kVerySparse
            ? ProjectionSource::very_sparse(config.seed, config.window)
            : ProjectionSource(config.projection, config.seed,
                               config.sparsity);
    noc.hosted_sketches_.clear();
    for (std::uint64_t j = 0; j < hosted_count; ++j) {
      const auto now = in.get<std::int64_t>();
      const auto bucket_count = in.get<std::uint64_t>();
      std::vector<VhBucket> buckets;
      buckets.reserve(bucket_count);
      for (std::uint64_t b = 0; b < bucket_count; ++b) {
        VhBucket bucket;
        bucket.timestamp = in.get<std::int64_t>();
        bucket.count = in.get<std::uint64_t>();
        bucket.mean = in.get<double>();
        bucket.variance = in.get<double>();
        bucket.payload = in.get_all<double>();
        buckets.push_back(std::move(bucket));
      }
      noc.hosted_sketches_.push_back(FlowSketch::from_state(
          config.window, config.epsilon, config.sketch_rows, source,
          std::move(buckets), now));
    }
  }

  if (in.get<std::uint8_t>() != 0) {
    const auto sample_count = in.get<std::uint64_t>();
    Vector singular_values(in.get_all<double>());
    const std::vector<double> components_flat = in.get_all<double>();
    const auto basis_cols = static_cast<std::size_t>(in.get<std::uint64_t>());
    Vector means(in.get_all<double>());
    if (singular_values.size() != m || means.size() != m ||
        components_flat.size() != m * m || basis_cols > m) {
      throw ProtocolError("Noc::restore_state: bad model shape");
    }
    Matrix components(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        components(i, j) = components_flat[i * m + j];
      }
    }
    noc.model_ = PcaModel::from_parts(std::move(singular_values),
                                      std::move(components), std::move(means),
                                      sample_count, basis_cols);
    noc.rank_ = static_cast<std::size_t>(in.get<std::uint64_t>());
    noc.threshold_squared_ = in.get<double>();
  }
  noc.backend_->restore_state(in);
  if (!in.exhausted()) {
    throw ProtocolError("Noc::restore_state: trailing bytes");
  }
  return noc;
}

}  // namespace spca
