#include "dist/sim_network.hpp"

namespace spca {

void SimNetwork::send(const Message& msg) {
  std::vector<std::byte> wire = serialize(msg);
  account_send(stats_, msg, wire.size());
  queues_[msg.to].push_back(std::move(wire));
}

std::vector<Message> SimNetwork::drain(NodeId node) {
  std::vector<Message> out;
  auto it = queues_.find(node);
  if (it == queues_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& wire : it->second) {
    out.push_back(deserialize(wire));
  }
  it->second.clear();
  return out;
}

std::vector<Message> SimNetwork::take(NodeId node, MessageType type) {
  std::vector<Message> out;
  auto it = queues_.find(node);
  if (it == queues_.end()) return out;
  std::vector<std::vector<std::byte>> rest;
  rest.reserve(it->second.size());
  for (auto& wire : it->second) {
    // Byte 0 of the wire format is the message type; peeking avoids a full
    // parse of the messages that stay queued.
    if (!wire.empty() && static_cast<MessageType>(wire[0]) == type) {
      out.push_back(deserialize(wire));
    } else {
      rest.push_back(std::move(wire));
    }
  }
  it->second = std::move(rest);
  return out;
}

bool SimNetwork::has_mail(NodeId node) const {
  const auto it = queues_.find(node);
  return it != queues_.end() && !it->second.empty();
}

}  // namespace spca
