#include "dist/sim_network.hpp"

namespace spca {

void SimNetwork::send(const Message& msg) {
  std::vector<std::byte> wire = serialize(msg);
  ++stats_.messages;
  stats_.bytes += wire.size();
  const auto type_index = static_cast<std::size_t>(msg.type);
  ++stats_.messages_by_type[type_index];
  stats_.bytes_by_type[type_index] += wire.size();
  queues_[msg.to].push_back(std::move(wire));
}

std::vector<Message> SimNetwork::drain(NodeId node) {
  std::vector<Message> out;
  auto it = queues_.find(node);
  if (it == queues_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& wire : it->second) {
    out.push_back(deserialize(wire));
  }
  it->second.clear();
  return out;
}

bool SimNetwork::has_mail(NodeId node) const {
  const auto it = queues_.find(node);
  return it != queues_.end() && !it->second.empty();
}

}  // namespace spca
