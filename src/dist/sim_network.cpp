#include "dist/sim_network.hpp"

#include "obs/metrics.hpp"

namespace spca {

void SimNetwork::send(const Message& msg) {
  static Counter& messages =
      MetricsRegistry::global().counter("spca.net.messages");
  static Counter& bytes = MetricsRegistry::global().counter("spca.net.bytes");
  // Indexed by MessageType value; slot 0 is unused.
  static Counter* const bytes_by_type[5] = {
      nullptr,
      &MetricsRegistry::global().counter("spca.net.volume_report_bytes"),
      &MetricsRegistry::global().counter("spca.net.sketch_request_bytes"),
      &MetricsRegistry::global().counter("spca.net.sketch_response_bytes"),
      &MetricsRegistry::global().counter("spca.net.alarm_bytes"),
  };

  std::vector<std::byte> wire = serialize(msg);
  ++stats_.messages;
  stats_.bytes += wire.size();
  const auto type_index = static_cast<std::size_t>(msg.type);
  ++stats_.messages_by_type[type_index];
  stats_.bytes_by_type[type_index] += wire.size();
  messages.inc();
  bytes.inc(wire.size());
  if (type_index >= 1 && type_index <= 4) {
    bytes_by_type[type_index]->inc(wire.size());
  }
  queues_[msg.to].push_back(std::move(wire));
}

std::vector<Message> SimNetwork::drain(NodeId node) {
  std::vector<Message> out;
  auto it = queues_.find(node);
  if (it == queues_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& wire : it->second) {
    out.push_back(deserialize(wire));
  }
  it->second.clear();
  return out;
}

bool SimNetwork::has_mail(NodeId node) const {
  const auto it = queues_.find(node);
  return it != queues_.end() && !it->second.empty();
}

}  // namespace spca
