#include "dist/noc.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/span_log.hpp"
#include "par/thread_pool.hpp"
#include "pca/q_statistic.hpp"

namespace spca {

NocConfig noc_config_from(const SketchDetectorConfig& config,
                          bool host_sketches) {
  NocConfig noc;
  noc.window = config.window;
  noc.sketch_rows = config.sketch_rows;
  noc.alpha = config.alpha;
  noc.rank_policy = config.rank_policy;
  noc.lazy = config.lazy;
  noc.host_sketches = host_sketches;
  noc.epsilon = config.epsilon;
  noc.projection = config.projection;
  noc.sparsity = config.sparsity;
  noc.seed = config.seed;
  noc.backend = config.backend;
  return noc;
}

Noc::Noc(std::size_t num_flows, const NocConfig& config)
    : m_(num_flows),
      config_(config),
      backend_(make_model_backend(config.backend, num_flows, config.window)),
      flow_state_(num_flows) {
  SPCA_EXPECTS(num_flows >= 2);
  SPCA_EXPECTS(config.sketch_rows >= 1);
  SPCA_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0);
  if (config.host_sketches) {
    const ProjectionSource source =
        config.projection == ProjectionKind::kVerySparse
            ? ProjectionSource::very_sparse(config.seed, config.window)
            : ProjectionSource(config.projection, config.seed,
                               config.sparsity);
    hosted_sketches_.reserve(num_flows);
    for (std::size_t j = 0; j < num_flows; ++j) {
      hosted_sketches_.emplace_back(config.window, config.epsilon,
                                    config.sketch_rows, source);
    }
  }
}

Vector Noc::assemble_volumes(std::int64_t t,
                             const std::vector<Message>& reports) {
  last_interval_ = t;
  const ScopedSpan span("noc", kStageNocFeed, t);
  Vector x(m_);
  std::vector<bool> seen(m_, false);
  for (const Message& msg : reports) {
    if (msg.type != MessageType::kVolumeReport || msg.interval != t) {
      throw ProtocolError("Noc: unexpected message while collecting volumes");
    }
    if (msg.ids.size() != msg.values.size()) {
      throw ProtocolError("Noc: malformed volume report");
    }
    for (std::size_t i = 0; i < msg.ids.size(); ++i) {
      const std::uint32_t flow = msg.ids[i];
      if (flow >= m_ || seen[flow]) {
        throw ProtocolError("Noc: duplicate or out-of-range flow report");
      }
      seen[flow] = true;
      x[flow] = msg.values[i];
    }
  }
  if (!std::all_of(seen.begin(), seen.end(), [](bool b) { return b; })) {
    throw ProtocolError("Noc: missing volume reports for interval");
  }
  if (config_.host_sketches) {
    // Theorem 1 alternative mode: the NOC maintains the histograms itself,
    // fed straight from the volume reports. This is the NOC's O(m log n)
    // update; the per-flow histograms are independent, so it fans out.
    global_pool().parallel_for(0, m_, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        hosted_sketches_[j].add(t, x[j]);
      }
    });
  }
  // The fd backend sketches the measurement stream itself, so it must see
  // every assembled network-wide row as it arrives.
  if (backend_->wants_rows()) backend_->absorb_row(x.span());
  return x;
}

Vector Noc::collect_volumes(std::int64_t t, Transport& network) {
  return assemble_volumes(t, network.drain(kNocId));
}

void Noc::request_sketches(std::int64_t t,
                           const std::vector<NodeId>& monitors,
                           Transport& network) {
  for (const NodeId monitor : monitors) {
    Message request;
    request.type = MessageType::kSketchRequest;
    request.from = kNocId;
    request.to = monitor;
    request.interval = t;
    network.send(request);
  }
  ++sketch_pulls_;
}

void Noc::ingest_sketch_response(const Message& msg) {
  if (msg.type != MessageType::kSketchResponse) {
    throw ProtocolError("Noc: expected sketch responses");
  }
  const std::size_t block = config_.sketch_rows + 2;
  if (msg.values.size() != msg.ids.size() * block) {
    throw ProtocolError("Noc: malformed sketch response");
  }
  for (std::size_t i = 0; i < msg.ids.size(); ++i) {
    const std::uint32_t flow = msg.ids[i];
    if (flow >= m_) throw ProtocolError("Noc: sketch for unknown flow");
    FlowState& state = flow_state_[flow];
    const double* base = msg.values.data() + i * block;
    state.mean = base[0];
    state.count = static_cast<std::uint64_t>(base[1]);
    state.sketch.assign(base + 2, base + block);
    state.seen = true;
  }
}

void Noc::ingest_sketch_responses(Transport& network) {
  for (const Message& msg : network.drain(kNocId)) {
    ingest_sketch_response(msg);
  }
  refit();
}

void Noc::refit() {
  // The NOC-side O(m^2 l) PCA step of Theorem 1: SVD of the assembled
  // sketch matrix plus rank selection and threshold computation.
  static Histogram& refit_seconds =
      MetricsRegistry::global().histogram("spca.noc.refit_seconds");
  static Counter& refits = MetricsRegistry::global().counter("spca.noc.refits");
  const ScopedTimer timer(refit_seconds);
  const ScopedSpan span("noc", kStageRefit, last_interval_);
  refits.inc();

  Matrix z(config_.sketch_rows, m_);
  Vector means(m_);
  std::uint64_t n_eff = 2;
  for (std::size_t j = 0; j < m_; ++j) {
    const FlowState& state = flow_state_[j];
    if (!state.seen) {
      throw ProtocolError("Noc: refit before all sketches arrived");
    }
    means[j] = state.mean;
    n_eff = std::max(n_eff, state.count);
  }
  // Sketch-matrix assembly: flow j owns column j of Z-hat, so the column
  // scatter fans out across the pool with disjoint writes.
  global_pool().parallel_for(
      0, m_,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const FlowState& state = flow_state_[j];
          for (std::size_t k = 0; k < config_.sketch_rows; ++k) {
            z(k, j) = state.sketch[k];
          }
        }
      },
      /*min_grain=*/64);
  model_ = backend_->fit_rows(z, means, n_eff);
  // Truncated backends (rsvd/fd) only recover basis_cols genuine axes; the
  // normal subspace cannot extend past them.
  rank_ = std::min(config_.rank_policy.select(*model_, z),
                   std::max<std::size_t>(model_->basis_cols(), 1));
  threshold_squared_ = q_statistic_threshold_squared(
      model_->singular_values(), rank_, n_eff, config_.alpha);
}

void Noc::pull_hosted() {
  SPCA_EXPECTS(config_.host_sketches);
  // No communication: read the NOC's own histograms. Each flow's state
  // comes from its own FlowSketch, so the read fans out across flows
  // (one aggregate pass per flow via report_into).
  global_pool().parallel_for(0, m_, [&](std::size_t lo, std::size_t hi) {
    Vector z;
    for (std::size_t j = lo; j < hi; ++j) {
      FlowState& state = flow_state_[j];
      const FlowSketch::Report report = hosted_sketches_[j].report_into(z);
      state.mean = report.mean;
      state.count = report.count;
      state.sketch.assign(z.begin(), z.end());
      state.seen = true;
    }
  });
  ++sketch_pulls_;  // counts model recomputations in this mode
  refit();
}

Detection Noc::detect_with_pull(std::int64_t t, const Vector& x,
                                const std::function<void()>& pull,
                                Transport& network) {
  static Histogram& detect_seconds =
      MetricsRegistry::global().histogram("spca.noc.detect_seconds");
  static Histogram& pull_seconds =
      MetricsRegistry::global().histogram("spca.noc.pull_round_trip_seconds");
  static Counter& pulls =
      MetricsRegistry::global().counter("spca.noc.sketch_pulls");
  static Counter& stale_passes =
      MetricsRegistry::global().counter("spca.noc.stale_passes");
  static Counter& lazy_pulls =
      MetricsRegistry::global().counter("spca.noc.lazy_pulls");
  static Counter& false_refreshes =
      MetricsRegistry::global().counter("spca.noc.false_refreshes");
  static Counter& alarms = MetricsRegistry::global().counter("spca.noc.alarms");

  SPCA_EXPECTS(x.size() == m_);
  last_interval_ = t;
  const ScopedTimer detect_timer(detect_seconds);
  const ScopedSpan decision_span("noc", kStageDecision, t);
  const auto timed_pull = [&] {
    const ScopedTimer pull_timer(pull_seconds);
    pulls.inc();
    pull();
  };

  Detection det;
  if (!model_ || !config_.lazy) {
    timed_pull();
    det.model_refreshed = true;
  }

  det.ready = true;
  double distance = model_->anomaly_distance(x, rank_);
  bool alarm = distance * distance > threshold_squared_;
  if (alarm && config_.lazy && !det.model_refreshed) {
    log_debug("noc: stale model flagged interval ", t,
              ", pulling fresh sketches");
    timed_pull();
    det.model_refreshed = true;
    lazy_pulls.inc();
    distance = model_->anomaly_distance(x, rank_);
    alarm = distance * distance > threshold_squared_;
    if (!alarm) {
      false_refreshes.inc();
      log_debug("noc: interval ", t, " cleared by the refreshed model");
    }
  } else if (config_.lazy && !det.model_refreshed) {
    stale_passes.inc();
  }
  det.distance = distance;
  det.threshold = std::sqrt(threshold_squared_);
  det.alarm = alarm;
  det.normal_rank = rank_;

  if (alarm) {
    Message alert;
    alert.type = MessageType::kAlarm;
    alert.from = kNocId;
    alert.to = kNocId;  // operator console; stays local at the NOC
    alert.interval = t;
    network.send(alert);
    // Consume only the console alarm: a drain here would also swallow any
    // protocol traffic a concurrent transport has already delivered.
    (void)network.take(kNocId, MessageType::kAlarm);
    ++alarms_sent_;
    alarms.inc();
  }
  EventTrace::global().record({"noc", t, distance * distance,
                               threshold_squared_, rank_, det.model_refreshed,
                               alarm});
  return det;
}

Detection Noc::detect(std::int64_t t, const Vector& x,
                      const std::vector<NodeId>& monitors, Transport& network,
                      const std::function<void()>& pump_monitors) {
  const auto pull = [&] {
    if (config_.host_sketches) {
      pull_hosted();
      return;
    }
    request_sketches(t, monitors, network);
    pump_monitors();
    ingest_sketch_responses(network);
  };
  return detect_with_pull(t, x, pull, network);
}

}  // namespace spca
