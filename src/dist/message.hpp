// Wire messages of the simulated distributed deployment (Fig. 1 / Fig. 2).
//
// Messages are actually serialized to bytes and parsed back on delivery, so
// the communication-cost numbers reported by the benches reflect a real
// encoding, not struct sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spca {

/// Identifies a node in the simulation; the NOC is node 0.
using NodeId = std::uint32_t;
inline constexpr NodeId kNocId = 0;

/// Protocol message types.
enum class MessageType : std::uint8_t {
  /// Monitor -> NOC: per-interval traffic volumes of the monitor's flows.
  kVolumeReport = 1,
  /// NOC -> monitor: request for current sketches (lazy pull, Sec. IV-C).
  kSketchRequest = 2,
  /// Monitor -> NOC: sketch vectors, means, and counts of its flows.
  kSketchResponse = 3,
  /// NOC -> operator: anomaly alarm for an interval.
  kAlarm = 4,
  /// Regional NOC -> root NOC: merged per-monitor payloads of one region
  /// (volume reports, sketch responses, or first-line score reports),
  /// concatenated in sorted monitor id order. The inner kind is recovered
  /// from the payload shape (see dist/aggregate.hpp).
  kAggregate = 5,
  /// Monitor -> NOC: first-line anomaly scores of the ensemble detection
  /// plane, sent at interval close alongside the volume report. ids holds
  /// the reporting monitor ids; each id owns two values
  /// [entropy_z, rate_z] (see detect/score_codec.hpp).
  kScoreReport = 6,
};

/// A protocol message: typed header plus id and value payloads.
struct Message {
  MessageType type = MessageType::kVolumeReport;
  NodeId from = 0;
  NodeId to = 0;
  std::int64_t interval = 0;
  /// Flow ids the values refer to (layout depends on `type`).
  std::vector<std::uint32_t> ids;
  /// Numeric payload (volumes, or per-flow [mean, count, z_1..z_l] blocks).
  std::vector<double> values;

  /// Serialized size in bytes.
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
};

/// Encodes to a flat little-endian byte buffer.
[[nodiscard]] std::vector<std::byte> serialize(const Message& msg);

/// Parses a buffer produced by `serialize`; throws ProtocolError on a
/// malformed buffer.
[[nodiscard]] Message deserialize(const std::vector<std::byte>& buffer);

}  // namespace spca
