#include "hier/hier_scenario.hpp"

#include <memory>
#include <optional>

#include "common/contracts.hpp"
#include "detect/fusion.hpp"
#include "detect/score_codec.hpp"
#include "dist/local_monitor.hpp"
#include "dist/noc.hpp"
#include "dist/sim_network.hpp"
#include "hier/regional_noc.hpp"

namespace spca {

HierWireAccounting hier_wire_accounting(const NetworkStats& stats) {
  const auto type_slot = [&](MessageType type) {
    return static_cast<std::size_t>(type);
  };
  HierWireAccounting acc;
  const std::size_t report = type_slot(MessageType::kVolumeReport);
  const std::size_t score = type_slot(MessageType::kScoreReport);
  const std::size_t response = type_slot(MessageType::kSketchResponse);
  const std::size_t request = type_slot(MessageType::kSketchRequest);
  const std::size_t aggregate = type_slot(MessageType::kAggregate);
  acc.monitor_to_region_bytes = stats.bytes_by_type[report] +
                                stats.bytes_by_type[score] +
                                stats.bytes_by_type[response];
  acc.monitor_to_region_messages = stats.messages_by_type[report] +
                                   stats.messages_by_type[score] +
                                   stats.messages_by_type[response];
  acc.region_to_root_bytes = stats.bytes_by_type[aggregate];
  acc.region_to_root_messages = stats.messages_by_type[aggregate];
  acc.request_bytes = stats.bytes_by_type[request];
  acc.request_messages = stats.messages_by_type[request];
  return acc;
}

ScenarioRun run_hier_scenario_sim(const NetScenario& scenario,
                                  std::size_t regions,
                                  Transport* transport) {
  const std::size_t m = scenario.trace.num_flows();
  const std::size_t k = scenario.config.monitors;
  const SketchDetectorConfig& config = scenario.detector;
  SPCA_EXPECTS(regions >= 1 && regions <= k);

  SimNetwork sim;
  Transport& bus = transport != nullptr ? *transport : sim;

  // Monitors: exactly DistributedDetector's construction (same ownership,
  // same projection source), re-pointed at their regional NOC.
  const ProjectionSource source =
      config.projection == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(config.seed, config.window)
          : ProjectionSource(config.projection, config.seed, config.sparsity);
  std::vector<std::vector<FlowId>> ownership(k);
  for (std::size_t j = 0; j < m; ++j) {
    ownership[j % k].push_back(static_cast<FlowId>(j));
  }
  std::vector<std::unique_ptr<LocalMonitor>> monitors;
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    monitors.push_back(std::make_unique<LocalMonitor>(
        id, ownership[i], config.window, config.epsilon, config.sketch_rows,
        source, /*counter_only=*/false));
    monitors.back()->set_upstream(
        region_node_id(region_of_monitor(k, regions, id)));
  }

  // Ensemble fusion mirrors the flat reference: monitors score first-line
  // signals at interval close, the root fuses them with the sketch verdict.
  std::optional<FusionEngine> fusion;
  if (scenario.config.fusion != "off") {
    FusionConfig fusion_config;
    fusion_config.rule = parse_fusion_rule(scenario.config.fusion);
    fusion.emplace(fusion_config);
    for (const auto& monitor : monitors) monitor->enable_first_line();
  }

  // The middle tier.
  std::vector<RegionalNoc> tier;
  tier.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    tier.emplace_back(r, region_monitor_ids(k, regions, r),
                      config.sketch_rows);
  }
  const std::vector<NodeId> region_ids = region_node_ids(regions);

  Noc noc(m, noc_config_from(config, /*host_sketches=*/false));
  const std::size_t rows = config.sketch_rows;

  ScenarioRun run;
  for (std::size_t interval = 0; interval < scenario.config.intervals;
       ++interval) {
    const auto t = static_cast<std::int64_t>(interval);
    const Vector& x_true = scenario.trace.row(interval);

    // Monitors close the interval; reports go to their regional NOC.
    for (const auto& monitor : monitors) {
      for (const FlowId flow : monitor->flows()) {
        monitor->ingest_volume(flow, x_true[flow]);
      }
      monitor->end_interval(t, bus);
    }
    // Each region merges its shard and forwards one aggregate per payload
    // kind (volumes, and first-line scores when fusion is on) to the root.
    for (RegionalNoc& region : tier) {
      region.pump(bus);
      SPCA_ENSURES(region.reports_ready() == t);
      bus.send(region.take_merged_reports(kNocId));
      if (fusion) {
        SPCA_ENSURES(region.scores_ready() == t);
        bus.send(region.take_merged_scores(kNocId));
      }
    }
    // The root splits the aggregates by payload shape and unwraps them
    // through the flat assembly path. Regions arrive in ascending order and
    // each merge is sorted by monitor id, so the concatenated score list is
    // in ascending monitor order — the flat reference's order.
    std::vector<Message> reports;
    reports.reserve(regions);
    std::vector<MonitorScore> scores;
    for (const Message& agg : bus.take(kNocId, MessageType::kAggregate)) {
      if (fusion && aggregate_shape_is(agg, MessageType::kScoreReport, rows)) {
        const auto part = parse_score_report(
            unwrap_aggregate(agg, MessageType::kScoreReport, rows));
        scores.insert(scores.end(), part.begin(), part.end());
        continue;
      }
      reports.push_back(
          unwrap_aggregate(agg, MessageType::kVolumeReport, rows));
    }
    const Vector x = noc.assemble_volumes(t, reports);

    if (interval + 1 < config.window) {  // warm-up, matching the flat run
      if (fusion) (void)fusion->fuse(t, Detection{}, scores);
      continue;
    }

    const auto pull = [&] {
      noc.request_sketches(t, region_ids, bus);
      for (RegionalNoc& region : tier) {
        region.pump(bus);
        const auto request = region.take_sketch_request();
        SPCA_ENSURES(request == t);
        region.forward_sketch_request(*request, bus);
      }
      for (const auto& monitor : monitors) monitor->handle_mail(bus);
      for (RegionalNoc& region : tier) {
        region.pump(bus);
        SPCA_ENSURES(region.responses_ready() == t);
        bus.send(region.take_merged_responses(kNocId));
      }
      for (const Message& agg : bus.take(kNocId, MessageType::kAggregate)) {
        noc.ingest_sketch_response(
            unwrap_aggregate(agg, MessageType::kSketchResponse, rows));
      }
      noc.refit();
    };
    const Detection det = noc.detect_with_pull(t, x, pull, bus);
    run.distances.push_back(det.distance);
    if (det.alarm) run.alarm_intervals.push_back(t);
    if (fusion) {
      const FusedDecision fused = fusion->fuse(t, det, scores);
      run.fused_statistics.push_back(fused.statistic);
      if (fused.alarm) run.fused_alarm_intervals.push_back(t);
    }
  }
  run.stats = bus.stats();
  return run;
}

}  // namespace spca
