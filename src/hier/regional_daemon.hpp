// Regional NOC daemon: wraps a RegionalNoc in a TCP event loop. Listens for
// its shard of monitor daemons, dials the root NOC, and per interval
// forwards ONE merged aggregate per phase upstream while relaying sketch
// requests and kAdvance frames downstream — the middle tier of the
// hierarchical deployment, invisible to the detection trajectory.
//
// Restart story: the node holds no sketch or model state, so its durable
// snapshot is only a small identity + progress blob (region, shard, next
// interval). After a restart the shard's monitors re-send their current
// interval on reconnect, the merge is reproduced bit-identically, and the
// root deduplicates whatever a racing first copy also delivered. A request
// lost with the old connection is re-issued by the root when the new
// incarnation dials in.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/scenario.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"

namespace spca {

/// Regional daemon configuration.
struct RegionalDaemonConfig {
  NetScenarioConfig scenario;
  /// Total regions of the hierarchy and this daemon's region index.
  std::size_t regions = 2;
  std::size_t region = 0;
  /// Listen endpoint for the shard's monitors (port 0 = ephemeral).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Root NOC endpoint to dial.
  std::string root_host = "127.0.0.1";
  std::uint16_t root_port = 0;
  RetryPolicy retry;
  std::chrono::milliseconds io_timeout{15000};
  /// How long to wait with no progress (missing monitor or silent root)
  /// before giving up on the run.
  std::chrono::milliseconds interval_deadline{60000};
  /// Durable snapshot directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Snapshot cadence in intervals (0 = shutdown snapshot only).
  std::int64_t checkpoint_every = 0;
  /// Write a snapshot at shutdown. Chaos tests disable this to model a
  /// crash kill that only leaves periodic snapshots; the next incarnation
  /// then starts from a stale interval and catches up from its monitors'
  /// re-sends (the node has no sketch state to lose).
  bool final_checkpoint = true;
  /// Stop after relaying the advance past intervals < last_interval
  /// (-1 = run the whole scenario). The chaos harness uses this to kill a
  /// regional incarnation cleanly mid-run.
  std::int64_t last_interval = -1;
  /// Fault-injection hook: wraps the transport for Message-level traffic.
  std::function<std::unique_ptr<Transport>(Transport&)> wrap_transport;
  /// Live status endpoint (obs/status_server.hpp); -1 disables, 0 binds an
  /// ephemeral port (reported via on_status_port).
  int status_port = -1;
  std::string status_host = "127.0.0.1";
  std::function<void(int)> on_status_port;
};

/// What a finished run did.
struct RegionalDaemonResult {
  /// First interval not yet fully relayed (== scenario end on success).
  std::int64_t next_interval = 0;
  /// Merges performed (both phases).
  std::uint64_t merges = 0;
  /// Connection re-establishments observed by the transport.
  std::uint64_t reconnects = 0;
  /// Send-side wire accounting of this node.
  NetworkStats stats;
  /// True when progress resumed from a checkpoint snapshot.
  bool restored_from_checkpoint = false;
};

/// The regional process body (also runnable on a thread in tests).
class RegionalDaemon final {
 public:
  explicit RegionalDaemon(RegionalDaemonConfig config);
  ~RegionalDaemon();

  /// Binds the listener and dials the root; must precede run().
  void start();

  /// The bound listen port (valid after start()).
  [[nodiscard]] std::uint16_t bound_port() const noexcept;

  /// Runs to completion (or until request_stop()); returns the summary.
  /// Throws TransportError when nothing makes progress past the deadline.
  RegionalDaemonResult run();

  /// Asks a running daemon to wind down at the next poll slice.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  RegionalDaemonConfig config_;
  TcpTransport transport_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

/// Encodes/decodes the regional progress snapshot ('SPCR' blob): hierarchy
/// identity (regions, region, shard) plus the next interval. Exposed for
/// tests; decode throws ProtocolError on a malformed blob.
[[nodiscard]] std::vector<std::byte> encode_region_snapshot(
    std::size_t regions, std::size_t region,
    const std::vector<NodeId>& monitors, std::int64_t next_interval);
struct RegionSnapshot {
  std::size_t regions = 0;
  std::size_t region = 0;
  std::vector<NodeId> monitors;
  std::int64_t next_interval = 0;
};
[[nodiscard]] RegionSnapshot decode_region_snapshot(
    const std::vector<std::byte>& blob);

}  // namespace spca
