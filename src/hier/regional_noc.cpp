#include "hier/regional_noc.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace spca {

namespace {

Counter& merges_counter() {
  static Counter& c = MetricsRegistry::global().counter("spca.hier.merges");
  return c;
}

Counter& aggregates_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("spca.hier.aggregates_tx");
  return c;
}

Counter& forwards_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("spca.hier.requests_forwarded");
  return c;
}

}  // namespace

RegionalNoc::RegionalNoc(std::size_t region, std::vector<NodeId> monitors,
                         std::size_t sketch_rows)
    : region_(region),
      monitors_(std::move(monitors)),
      sketch_rows_(sketch_rows) {
  SPCA_EXPECTS(!monitors_.empty());
  std::sort(monitors_.begin(), monitors_.end());
  SPCA_EXPECTS(std::adjacent_find(monitors_.begin(), monitors_.end()) ==
               monitors_.end());
  SPCA_EXPECTS(monitors_.front() != kNocId && !is_region_node(monitors_.back()));
}

void RegionalNoc::pump(Transport& bus) {
  for (Message& msg : bus.drain(id())) {
    switch (msg.type) {
      case MessageType::kVolumeReport:
      case MessageType::kScoreReport:
      case MessageType::kSketchResponse: {
        if (!std::binary_search(monitors_.begin(), monitors_.end(),
                                msg.from)) {
          throw ProtocolError("RegionalNoc: message from outside the shard");
        }
        const std::size_t per_flow =
            msg.type == MessageType::kVolumeReport  ? 1
            : msg.type == MessageType::kScoreReport ? 2
                                                    : sketch_rows_ + 2;
        if (msg.ids.empty() ||
            msg.values.size() != msg.ids.size() * per_flow) {
          throw ProtocolError("RegionalNoc: malformed payload shape");
        }
        auto& store = msg.type == MessageType::kVolumeReport  ? reports_
                      : msg.type == MessageType::kScoreReport ? scores_
                                                              : responses_;
        store[msg.from] = std::move(msg);
        break;
      }
      case MessageType::kSketchRequest:
        requests_.push_back(msg.interval);
        break;
      default:
        throw ProtocolError("RegionalNoc: unexpected message type");
    }
  }
}

std::optional<std::int64_t> RegionalNoc::ready(
    const std::map<NodeId, Message>& store) const {
  if (store.size() < monitors_.size()) return std::nullopt;
  const std::int64_t t = store.begin()->second.interval;
  for (const auto& [id, msg] : store) {
    if (msg.interval != t) return std::nullopt;
  }
  return t;
}

Message RegionalNoc::take_merged(std::map<NodeId, Message>& store,
                                 NodeId to) {
  SPCA_EXPECTS(ready(store).has_value());
  std::vector<Message> parts;
  parts.reserve(store.size());
  for (auto& [id, msg] : store) parts.push_back(std::move(msg));
  store.clear();
  ++merges_;
  merges_counter().inc();
  aggregates_counter().inc();
  return merge_aggregate(std::move(parts), id(), to);
}

std::optional<std::int64_t> RegionalNoc::reports_ready() const {
  return ready(reports_);
}

Message RegionalNoc::take_merged_reports(NodeId to) {
  return take_merged(reports_, to);
}

std::optional<std::int64_t> RegionalNoc::scores_ready() const {
  return ready(scores_);
}

Message RegionalNoc::take_merged_scores(NodeId to) {
  return take_merged(scores_, to);
}

std::optional<std::int64_t> RegionalNoc::take_sketch_request() {
  if (requests_.empty()) return std::nullopt;
  const std::int64_t t = requests_.front();
  requests_.pop_front();
  return t;
}

void RegionalNoc::forward_sketch_request(std::int64_t t, Transport& bus) {
  for (const NodeId monitor : monitors_) {
    Message request;
    request.type = MessageType::kSketchRequest;
    request.from = id();
    request.to = monitor;
    request.interval = t;
    bus.send(request);
    forwards_counter().inc();
  }
}

std::optional<std::int64_t> RegionalNoc::responses_ready() const {
  return ready(responses_);
}

Message RegionalNoc::take_merged_responses(NodeId to) {
  return take_merged(responses_, to);
}

}  // namespace spca
