#include "hier/regional_daemon.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "common/checkpoint_store.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "hier/regional_noc.hpp"
#include "net/frame.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/status_server.hpp"

namespace spca {

namespace {

constexpr std::chrono::milliseconds kWaitSlice{100};

constexpr std::uint32_t kRegionSnapshotMagic = 0x53504352;  // 'SPCR'
constexpr std::uint32_t kRegionSnapshotVersion = 1;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::vector<std::byte>& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xff));
  }
}

struct Reader {
  const std::vector<std::byte>& blob;
  std::size_t pos = 0;
  std::uint32_t u32() {
    if (pos + 4 > blob.size()) {
      throw ProtocolError("region snapshot: truncated");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(blob[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::int64_t i64() {
    if (pos + 8 > blob.size()) {
      throw ProtocolError("region snapshot: truncated");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return static_cast<std::int64_t>(v);
  }
};

}  // namespace

std::vector<std::byte> encode_region_snapshot(
    std::size_t regions, std::size_t region,
    const std::vector<NodeId>& monitors, std::int64_t next_interval) {
  std::vector<std::byte> out;
  put_u32(out, kRegionSnapshotMagic);
  put_u32(out, kRegionSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(regions));
  put_u32(out, static_cast<std::uint32_t>(region));
  put_u32(out, static_cast<std::uint32_t>(monitors.size()));
  for (const NodeId id : monitors) put_u32(out, id);
  put_i64(out, next_interval);
  return out;
}

RegionSnapshot decode_region_snapshot(const std::vector<std::byte>& blob) {
  Reader r{blob};
  if (r.u32() != kRegionSnapshotMagic) {
    throw ProtocolError("region snapshot: bad magic");
  }
  if (r.u32() != kRegionSnapshotVersion) {
    throw ProtocolError("region snapshot: unsupported version");
  }
  RegionSnapshot snap;
  snap.regions = r.u32();
  snap.region = r.u32();
  const std::uint32_t count = r.u32();
  snap.monitors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) snap.monitors.push_back(r.u32());
  snap.next_interval = r.i64();
  if (r.pos != blob.size()) {
    throw ProtocolError("region snapshot: trailing bytes");
  }
  return snap;
}

namespace {

TcpTransportConfig region_tcp_config(const RegionalDaemonConfig& config) {
  TcpTransportConfig tcp;
  tcp.node_id = region_node_id(config.region);
  tcp.listen_host = config.listen_host;
  tcp.listen_port = config.listen_port;
  tcp.peers.push_back({kNocId, config.root_host, config.root_port});
  tcp.retry = config.retry;
  tcp.io_timeout = config.io_timeout;
  return tcp;
}

}  // namespace

RegionalDaemon::RegionalDaemon(RegionalDaemonConfig config)
    : config_(std::move(config)), transport_(region_tcp_config(config_)) {}

RegionalDaemon::~RegionalDaemon() { transport_.stop(); }

void RegionalDaemon::start() {
  SPCA_EXPECTS(!started_);
  SPCA_EXPECTS(config_.region < config_.regions);
  SPCA_EXPECTS(config_.regions >= 1 &&
               config_.regions <= config_.scenario.monitors);
  started_ = true;
  transport_.start();
  log_info("regiond ", config_.region, ": listening on ", config_.listen_host,
           ":", bound_port(), ", root at ", config_.root_host, ":",
           config_.root_port);
}

std::uint16_t RegionalDaemon::bound_port() const noexcept {
  return transport_.listen_port();
}

RegionalDaemonResult RegionalDaemon::run() {
  SPCA_EXPECTS(started_);
  SPCA_EXPECTS(config_.checkpoint_every >= 0);
  const std::vector<NodeId> shard = region_monitor_ids(
      config_.scenario.monitors, config_.regions, config_.region);
  RegionalNoc region(config_.region, shard, config_.scenario.sketch_rows);

  std::optional<CheckpointStore> store;
  if (!config_.checkpoint_dir.empty()) {
    store.emplace(config_.checkpoint_dir,
                  "region" + std::to_string(config_.region));
  }

  RegionalDaemonResult result;
  std::int64_t t = 0;  // next interval whose advance we have not relayed
  if (store) {
    if (auto snap = store->load_latest()) {
      try {
        const RegionSnapshot decoded = decode_region_snapshot(snap->payload);
        if (decoded.regions != config_.regions ||
            decoded.region != config_.region || decoded.monitors != shard) {
          throw ProtocolError("snapshot belongs to a different hierarchy");
        }
        t = decoded.next_interval;
        result.restored_from_checkpoint = true;
        log_info("regiond ", config_.region, ": restored interval ", t,
                 " from ", snap->path);
      } catch (const Error& e) {
        log_warn("regiond ", config_.region, ": ignoring snapshot ",
                 snap->path, ": ", e.what());
      }
    }
  }

  std::unique_ptr<Transport> wrapped;
  if (config_.wrap_transport) wrapped = config_.wrap_transport(transport_);
  Transport& bus = wrapped ? *wrapped : static_cast<Transport&>(transport_);

  // Live status endpoint, polled from this loop's wait slices.
  std::atomic<std::int64_t> current_interval{t};
  std::optional<StatusServer> status;
  if (config_.status_port >= 0) {
    StatusServerConfig scfg;
    scfg.host = config_.status_host;
    scfg.port = config_.status_port;
    scfg.healthy = [this] { return !stop_.load(std::memory_order_relaxed); };
    scfg.health_body = [this, &current_interval, &result] {
      std::ostringstream oss;
      oss << "{\"healthy\":"
          << (stop_.load(std::memory_order_relaxed) ? "false" : "true")
          << ",\"role\":\"region\",\"region\":" << config_.region
          << ",\"monitors\":" << region_monitor_ids(config_.scenario.monitors,
                                                    config_.regions,
                                                    config_.region)
                                     .size()
          << ",\"interval\":"
          << current_interval.load(std::memory_order_relaxed)
          << ",\"reconnects\":" << transport_.reconnects()
          << ",\"restored_from_checkpoint\":"
          << (result.restored_from_checkpoint ? "true" : "false") << "}\n";
      return oss.str();
    };
    status.emplace(std::move(scfg));
    if (config_.on_status_port) config_.on_status_port(status->port());
    log_info("regiond ", config_.region, ": status endpoint on ",
             config_.status_host, ":", status->port());
  }
  const auto poll_telemetry = [&] {
    if (status) status->poll();
    (void)FlightRecorder::global().poll_dump_request();
  };

  const auto intervals = static_cast<std::int64_t>(config_.scenario.intervals);
  const std::int64_t end = config_.last_interval >= 0
                               ? std::min(intervals, config_.last_interval)
                               : intervals;
  SPCA_EXPECTS(t <= intervals);
  const auto checkpoint = [&](bool force) {
    if (!store) return;
    if (!force && (config_.checkpoint_every <= 0 ||
                   t % config_.checkpoint_every != 0)) {
      return;
    }
    store->write(static_cast<std::uint64_t>(t),
                 encode_region_snapshot(config_.regions, config_.region,
                                        shard, t));
  };

  // Event-driven relay loop. Each pass drains whatever arrived and acts on
  // it; the deadline clock resets on any progress. Aggregates for intervals
  // the root has already seen (stale duplicates after a monitor reconnect)
  // are merged and dropped, never re-sent.
  std::int64_t reports_forwarded_through = t - 1;
  std::int64_t scores_forwarded_through = t - 1;
  auto waited = std::chrono::milliseconds(0);
  while (t < end && !stop_.load(std::memory_order_relaxed)) {
    current_interval.store(t, std::memory_order_relaxed);
    poll_telemetry();
    bool progressed = false;

    region.pump(bus);

    // Advances end intervals; relay them first so the shard never stalls.
    while (auto control = transport_.poll_control()) {
      if (control->type != FrameType::kAdvance) continue;
      const std::int64_t advanced = decode_interval_payload(control->payload);
      for (const NodeId monitor : region.monitors()) {
        transport_.send_control(monitor, FrameType::kAdvance,
                                control->payload);
      }
      progressed = true;
      if (advanced >= t) {
        t = advanced + 1;
        current_interval.store(t, std::memory_order_relaxed);
        FlightRecorder::global().capture_metrics(
            "region" + std::to_string(config_.region) + "_interval",
            advanced);
        checkpoint(/*force=*/false);
      }
    }

    while (auto request = region.take_sketch_request()) {
      region.forward_sketch_request(*request, bus);
      progressed = true;
    }

    if (region.responses_ready().has_value()) {
      bus.send(region.take_merged_responses(kNocId));
      progressed = true;
    }

    if (const auto ready = region.reports_ready()) {
      Message merged = region.take_merged_reports(kNocId);
      if (*ready > reports_forwarded_through) {
        reports_forwarded_through = *ready;
        bus.send(merged);
      }
      progressed = true;
    }

    if (const auto ready = region.scores_ready()) {
      Message merged = region.take_merged_scores(kNocId);
      if (*ready > scores_forwarded_through) {
        scores_forwarded_through = *ready;
        bus.send(merged);
      }
      progressed = true;
    }

    if (progressed) {
      waited = std::chrono::milliseconds(0);
      continue;
    }
    if (!transport_.wait_for_activity(kWaitSlice)) {
      waited += kWaitSlice;
      if (waited >= config_.interval_deadline) {
        throw TransportError("regiond: no progress within the deadline");
      }
    }
  }

  if (config_.final_checkpoint) checkpoint(/*force=*/true);
  result.next_interval = t;
  result.merges = region.merges();
  result.reconnects = transport_.reconnects();
  result.stats = transport_.stats();
  log_info("regiond ", config_.region, ": finished through interval ", t,
           ", ", region.merges(), " merges, ", transport_.reconnects(),
           " reconnects");
  return result;
}

}  // namespace spca
