// Hierarchical deployment scenario: the same deterministic world as
// net/scenario.hpp, re-routed through a tier of regional NOCs.
//
// Monitors 1..k are split into R contiguous shards (dist/aggregate.hpp);
// each shard reports to its regional NOC, which merges the shard's messages
// into one kAggregate per phase and forwards it to the root. Because the
// merge order is bit-stable (sorted monitor id) and the root's assembly is
// keyed by flow id, the hierarchical trajectory is bit-identical to the
// flat run_scenario_reference — the property the sim runner below exists to
// let tests and the --check-against-sim daemons assert.
#pragma once

#include <cstddef>

#include "net/scenario.hpp"

namespace spca {

/// Per-level wire accounting of a hierarchical run, derived from the shared
/// bus statistics: in the 2-level tree, volume reports and sketch responses
/// travel only monitor -> region, aggregates only region -> root, and
/// sketch requests fan root -> region -> monitor.
struct HierWireAccounting {
  /// Monitor -> regional NOC payload bytes (reports + responses).
  std::uint64_t monitor_to_region_bytes = 0;
  std::uint64_t monitor_to_region_messages = 0;
  /// Regional NOC -> root payload bytes (aggregates).
  std::uint64_t region_to_root_bytes = 0;
  std::uint64_t region_to_root_messages = 0;
  /// Downstream sketch-request fan-out (root -> region -> monitor).
  std::uint64_t request_bytes = 0;
  std::uint64_t request_messages = 0;
};

/// Splits `stats` of a hierarchical run into per-level totals.
[[nodiscard]] HierWireAccounting hier_wire_accounting(
    const NetworkStats& stats);

/// Runs the scenario single-process over a synchronous transport (SimNetwork
/// by default) with `regions` regional NOCs between the monitors and the
/// root, and returns the trajectory. Requires 1 <= regions <= monitors.
[[nodiscard]] ScenarioRun run_hier_scenario_sim(const NetScenario& scenario,
                                                std::size_t regions,
                                                Transport* transport =
                                                    nullptr);

}  // namespace spca
