// Regional NOC node (the middle tier of the hierarchical deployment): owns
// a shard of monitors, collects their per-interval messages, and forwards
// ONE merged kAggregate per phase up to the root NOC. Downstream it fans
// root sketch requests out to its monitors and relays kAdvance.
//
// The node holds no sketch or model state — merging is pure concatenation
// in sorted monitor id order (dist/aggregate.hpp) — which is what makes a
// regional NOC cheap to restart: its monitors re-send their current
// interval on reconnect and the merge is reproduced bit-identically.
//
// The class is transport-generic: the synchronous hierarchy simulation
// (hier/hier_scenario.hpp) and the TCP regional daemon
// (hier/regional_daemon.hpp) drive the same collection state machine.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "dist/aggregate.hpp"
#include "dist/message.hpp"
#include "net/transport.hpp"

namespace spca {

/// One regional NOC.
class RegionalNoc final {
 public:
  /// `monitors` is this region's monitor shard (any order; stored sorted).
  RegionalNoc(std::size_t region, std::vector<NodeId> monitors,
              std::size_t sketch_rows);

  [[nodiscard]] NodeId id() const noexcept { return region_node_id(region_); }
  [[nodiscard]] std::size_t region() const noexcept { return region_; }
  [[nodiscard]] const std::vector<NodeId>& monitors() const noexcept {
    return monitors_;
  }

  /// Drains this node's mailbox: volume reports, first-line score reports,
  /// and sketch responses from the shard are stored keyed by sender
  /// (last-wins — a reconnecting monitor re-sends an identical copy), root
  /// sketch requests are queued for take_sketch_request(). Messages from
  /// outside the shard or of an unexpected type throw ProtocolError.
  void pump(Transport& bus);

  /// Interval whose volume reports are complete: every monitor of the shard
  /// has reported and all reports agree on the interval (the kAdvance
  /// lock-step makes mixed intervals transient).
  [[nodiscard]] std::optional<std::int64_t> reports_ready() const;

  /// Merges and clears the collected volume reports into one kAggregate to
  /// `to`. Requires reports_ready().
  [[nodiscard]] Message take_merged_reports(NodeId to);

  /// Interval whose first-line score reports are complete (same rule as
  /// reports). Scores only arrive when the deployment runs with ensemble
  /// fusion enabled, so callers gate on the scenario's fusion setting.
  [[nodiscard]] std::optional<std::int64_t> scores_ready() const;

  /// Merges and clears the collected score reports into one kAggregate to
  /// `to`. Requires scores_ready().
  [[nodiscard]] Message take_merged_scores(NodeId to);

  /// Pops the oldest pending sketch-request interval, if any.
  [[nodiscard]] std::optional<std::int64_t> take_sketch_request();

  /// Fans a sketch request for interval `t` out to every monitor of the
  /// shard.
  void forward_sketch_request(std::int64_t t, Transport& bus);

  /// Interval whose sketch responses are complete (same rule as reports).
  [[nodiscard]] std::optional<std::int64_t> responses_ready() const;

  /// Merges and clears the collected sketch responses into one kAggregate
  /// to `to`. Requires responses_ready().
  [[nodiscard]] Message take_merged_responses(NodeId to);

  /// Merges performed by this node (both phases).
  [[nodiscard]] std::uint64_t merges() const noexcept { return merges_; }

 private:
  [[nodiscard]] std::optional<std::int64_t> ready(
      const std::map<NodeId, Message>& store) const;
  [[nodiscard]] Message take_merged(std::map<NodeId, Message>& store,
                                    NodeId to);

  std::size_t region_;
  std::vector<NodeId> monitors_;  // sorted ascending
  std::size_t sketch_rows_;
  std::map<NodeId, Message> reports_;
  std::map<NodeId, Message> scores_;
  std::map<NodeId, Message> responses_;
  std::deque<std::int64_t> requests_;
  std::uint64_t merges_ = 0;
};

}  // namespace spca
