// NOC daemon binary: listens for spca_monitord processes, runs the
// deployment scenario to completion, and prints the trajectory summary.
//
// A loopback deployment (1 NOC + 2 monitors, all on 127.0.0.1):
//
//   ./spca_nocd --port=47000 --monitors=2 &
//   ./spca_monitord --port=47000 --monitor-id=1 &
//   ./spca_monitord --port=47000 --monitor-id=2
//
// With --check-against-sim the daemon additionally replays the same
// scenario over the in-process SimNetwork and exits non-zero unless the TCP
// run produced bit-identical distances and alarms — the CI loopback gate.
#include <csignal>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "net/net_flags.hpp"
#include "net/noc_daemon.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"

namespace {

spca::NocDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags("spca_nocd: NOC daemon of the TCP deployment");
  flags.define("listen", "127.0.0.1", "listen address (numeric IPv4)");
  flags.define("port", "47000", "listen port (0 = ephemeral)");
  flags.define("interval-deadline-ms", "60000",
               "max wait for a missing monitor per interval");
  flags.define("regions", "0",
               "regional NOCs between the monitors and this root (0 = flat "
               "deployment; >0 expects spca_regiond children)");
  flags.define("check-against-sim", "false",
               "verify the trajectory against a SimNetwork replay");
  flags.define("checkpoint-dir", "",
               "durable snapshot directory (empty = no checkpointing; with "
               "a valid snapshot the daemon resumes mid-scenario)");
  flags.define("checkpoint-every", "8",
               "periodic snapshot cadence in intervals (0 = shutdown "
               "snapshot only)");
  flags.define("status-port", "-1",
               "serve /metrics, /metrics.json, /healthz, /spans on this "
               "port while running (-1 = off, 0 = ephemeral)");
  flags.define("status-host", "127.0.0.1",
               "bind address of the status endpoint");
  define_transport_flags(flags);
  define_scenario_flags(flags);
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    configure_observability(flags);

    NocDaemonConfig config;
    config.scenario = scenario_from_flags(flags);
    config.listen_host = flags.str("listen");
    config.listen_port = static_cast<std::uint16_t>(flags.integer("port"));
    config.regions = static_cast<std::size_t>(flags.integer("regions"));
    config.interval_deadline =
        std::chrono::milliseconds(flags.integer("interval-deadline-ms"));
    config.io_timeout = io_timeout_from_flags(flags);
    config.checkpoint_dir = flags.str("checkpoint-dir");
    config.checkpoint_every = flags.integer("checkpoint-every");
    config.status_port = static_cast<int>(flags.integer("status-port"));
    config.status_host = flags.str("status-host");
    NocDaemon daemon(config);
    g_daemon = &daemon;
    (void)std::signal(SIGTERM, handle_signal);
    (void)std::signal(SIGINT, handle_signal);

    daemon.start();
    const ScenarioRun run = daemon.run();
    std::cout << "nocd: " << run.distances.size() << " detections, "
              << run.alarm_intervals.size() << " alarms, "
              << run.stats.bytes << " bytes sent, " << daemon.reconnects()
              << " reconnects\n";
    for (const std::int64_t t : run.alarm_intervals) {
      std::cout << "alarm interval " << t << "\n";
    }
    for (const std::int64_t t : run.fused_alarm_intervals) {
      std::cout << "fused alarm interval " << t << "\n";
    }
    export_observability(flags);

    if (flags.boolean("check-against-sim")) {
      const NetScenario scenario = build_scenario(config.scenario);
      const ScenarioRun reference = run_scenario_reference(scenario);
      if (run.alarm_intervals != reference.alarm_intervals ||
          run.distances != reference.distances ||
          run.fused_alarm_intervals != reference.fused_alarm_intervals ||
          run.fused_statistics != reference.fused_statistics) {
        std::cerr << "spca_nocd: TCP trajectory diverged from the "
                     "SimNetwork reference ("
                  << run.alarm_intervals.size() << " vs "
                  << reference.alarm_intervals.size() << " alarms, "
                  << run.fused_alarm_intervals.size() << " vs "
                  << reference.fused_alarm_intervals.size()
                  << " fused alarms)\n";
        return 2;
      }
      std::cout << "nocd: trajectory is bit-identical to the SimNetwork "
                   "reference\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "spca_nocd: " << e.what() << "\n";
    FlightRecorder::global().note("fatal_error", -1, e.what());
    (void)FlightRecorder::global().dump("error");
    return 1;
  }
}
