// Replay driver: pushes a flow-record stream through the full ingest
// pipeline (reader thread -> SPSC ring -> batched monitor absorption) and
// reports the sustained records/s, optionally asserting along the way that
// the trajectory is bit-identical to the pre-aggregated path.
//
// When the record file is missing (or --rewrite-records is set) the driver
// first materializes it from the deterministic scenario trace, split into
// --records-per-cell sub-records per (interval, flow) cell — the NetFlow-
// style operating regime where per-record work must stay O(1).
//
// Exit codes: 0 success, 1 usage/runtime error, 2 parity check failed,
// 3 sustained rate below --min-rate.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>
#include <vector>

#include "common/cli.hpp"
#include "ingest/record_file.hpp"
#include "ingest/replay.hpp"
#include "net/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "spca_replay: line-rate flow-record replay through one local monitor");
  flags.define("records", "replay.spcr",
               "record file to stream (created from the scenario trace when "
               "missing)");
  flags.define("format", "binary",
               "export format when creating the file: binary|csv");
  flags.define("records-per-cell", "1",
               "sub-records per (interval, flow) cell on export");
  flags.define("rewrite-records", "false",
               "re-export the record file even when it exists");
  flags.define("ring-batches", "64",
               "SPSC ring capacity in record batches");
  flags.define("interval-block", "8", "intervals per batched monitor flush");
  flags.define("repeat", "1", "minimum passes over the record file");
  flags.define("min-seconds", "0",
               "keep re-streaming until this much wall time elapsed");
  flags.define("check", "volumes", "parity checking: off|volumes|full");
  flags.define("check-every", "64",
               "full-state comparison cadence in intervals (check=full)");
  flags.define("min-rate", "0",
               "fail (exit 3) when sustained records/s ends up below this");
  flags.define("status-port", "-1",
               "serve /metrics, /metrics.json, /healthz, /spans on this "
               "port while the replay runs (-1 = off, 0 = ephemeral)");
  define_scenario_flags(flags);
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    configure_observability(flags);
    // The replay's main thread is busy streaming records, so the status
    // endpoint (when requested) polls from a helper thread.
    std::optional<StatusServer> status;
    if (flags.integer("status-port") >= 0) {
      StatusServerConfig scfg;
      scfg.port = static_cast<int>(flags.integer("status-port"));
      status.emplace(std::move(scfg));
      status->serve_in_background();
      std::cout << "spca_replay: status endpoint on 127.0.0.1:"
                << status->port() << "\n";
    }
    const NetScenario scenario = build_scenario(scenario_from_flags(flags));

    const std::string records = flags.str("records");
    if (flags.boolean("rewrite-records") ||
        !std::filesystem::exists(records)) {
      RecordExportOptions options;
      options.format = record_format_from_string(flags.str("format"));
      options.records_per_cell =
          static_cast<std::uint32_t>(flags.integer("records-per-cell"));
      export_records(scenario.trace, records, options);
      std::cout << "spca_replay: wrote " << records << " ("
                << scenario.trace.num_intervals() << " intervals x "
                << scenario.trace.num_flows() << " flows x "
                << options.records_per_cell << " records/cell)\n";
    }

    // Monitor shape comes from the record file; sketch parameters from the
    // shared scenario, exactly as a deployed monitor would configure itself.
    RecordFileHeader header;
    {
      RecordFileReader probe(records);
      header = probe.header();
    }
    const SketchDetectorConfig& det = scenario.detector;
    const ProjectionSource source =
        det.projection == ProjectionKind::kVerySparse
            ? ProjectionSource::very_sparse(det.seed, det.window)
            : ProjectionSource(det.projection, det.seed, det.sparsity);
    std::vector<FlowId> flows(header.num_flows);
    for (std::uint32_t j = 0; j < header.num_flows; ++j) flows[j] = j;
    LocalMonitor monitor(1, flows, det.window, det.epsilon, det.sketch_rows,
                         source);

    ReplayConfig config;
    config.record_path = records;
    config.ring_batches =
        static_cast<std::size_t>(flags.integer("ring-batches"));
    config.interval_block =
        static_cast<std::size_t>(flags.integer("interval-block"));
    config.repeat = static_cast<std::uint32_t>(flags.integer("repeat"));
    config.min_seconds = flags.real("min-seconds");
    config.check = replay_check_from_string(flags.str("check"));
    config.check_every = flags.integer("check-every");

    const ReplayStats stats = replay_records(monitor, config);
    std::printf(
        "spca_replay: %llu records in %.2f s -> %.0f records/s\n"
        "spca_replay: %llu batches, %llu intervals, %llu passes, "
        "%llu producer blocks\n",
        static_cast<unsigned long long>(stats.records), stats.seconds,
        stats.records_per_sec,
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.intervals),
        static_cast<unsigned long long>(stats.passes),
        static_cast<unsigned long long>(stats.producer_blocks));
    export_observability(flags);

    if (!stats.parity_ok) {
      std::cerr << "spca_replay: parity FAILED: " << stats.parity_error
                << "\n";
      FlightRecorder::global().note("parity_failure", -1, stats.parity_error);
      (void)FlightRecorder::global().dump("parity");
      return 2;
    }
    if (config.check != ReplayCheck::kOff) {
      std::cout << "spca_replay: parity OK (check=" << flags.str("check")
                << ")\n";
    }
    const double min_rate = flags.real("min-rate");
    if (min_rate > 0.0 && stats.records_per_sec < min_rate) {
      std::cerr << "spca_replay: sustained rate " << stats.records_per_sec
                << " records/s is below --min-rate " << min_rate << "\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "spca_replay: " << e.what() << "\n";
    FlightRecorder::global().note("fatal_error", -1, e.what());
    (void)FlightRecorder::global().dump("error");
    return 1;
  }
}
