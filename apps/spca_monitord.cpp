// Monitor daemon binary: dials the NOC (with retry/backoff, so it can be
// started before spca_nocd is up), replays its share of the scenario trace,
// and answers the NOC's sketch pulls. See spca_nocd.cpp for a full loopback
// deployment example.
//
// Restart story: with --checkpoint-dir the daemon snapshots its sketch
// state durably (every --checkpoint-every intervals and at shutdown —
// SIGTERM writes a final snapshot before exiting) and a restarted daemon
// resumes from the newest valid snapshot instead of replaying the trace.
// Without snapshots, --first-interval=<t> rebuilds the state locally and
// rejoins the running deployment at interval t.
#include <csignal>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "dist/aggregate.hpp"
#include "net/monitor_daemon.hpp"
#include "net/net_flags.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"

namespace {

spca::MonitorDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags("spca_monitord: monitor daemon of the TCP deployment");
  flags.define("connect", "127.0.0.1", "upstream address (numeric IPv4)");
  flags.define("port", "47000", "upstream port");
  flags.define("monitor-id", "1", "this monitor's node id (1..monitors)");
  flags.define("upstream-region", "-1",
               "region index of the spca_regiond this monitor reports to "
               "(-1 = flat deployment, dial the root NOC directly)");
  flags.define("first-interval", "-1",
               "first interval to report; earlier ones come from the "
               "checkpoint and/or local absorption (-1 = resume from the "
               "newest checkpoint when present, else 0)");
  flags.define("last-interval", "-1",
               "one-past-last interval to report (-1 = scenario end)");
  flags.define("ingest-records", "",
               "stream interval volumes from this flow-record file (binary "
               "or CSV) instead of the synthetic scenario trace");
  flags.define("checkpoint-dir", "",
               "durable snapshot directory (empty = no checkpointing)");
  flags.define("checkpoint-every", "8",
               "periodic snapshot cadence in intervals (0 = shutdown "
               "snapshot only)");
  flags.define("status-port", "-1",
               "serve /metrics, /metrics.json, /healthz, /spans on this "
               "port while running (-1 = off, 0 = ephemeral)");
  flags.define("status-host", "127.0.0.1",
               "bind address of the status endpoint");
  define_transport_flags(flags);
  define_scenario_flags(flags);
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    configure_observability(flags);

    MonitorDaemonConfig config;
    config.scenario = scenario_from_flags(flags);
    config.monitor_id = static_cast<NodeId>(flags.integer("monitor-id"));
    config.noc_host = flags.str("connect");
    config.noc_port = static_cast<std::uint16_t>(flags.integer("port"));
    const std::int64_t upstream_region = flags.integer("upstream-region");
    if (upstream_region >= 0) {
      config.upstream_id =
          region_node_id(static_cast<std::size_t>(upstream_region));
    }
    config.first_interval = flags.integer("first-interval");
    config.last_interval = flags.integer("last-interval");
    config.ingest_records = flags.str("ingest-records");
    config.checkpoint_dir = flags.str("checkpoint-dir");
    config.checkpoint_every = flags.integer("checkpoint-every");
    config.retry = retry_policy_from_flags(flags);
    config.io_timeout = io_timeout_from_flags(flags);
    config.status_port = static_cast<int>(flags.integer("status-port"));
    config.status_host = flags.str("status-host");
    MonitorDaemon daemon(config);
    g_daemon = &daemon;
    (void)std::signal(SIGTERM, handle_signal);
    (void)std::signal(SIGINT, handle_signal);

    const MonitorDaemonResult result = daemon.run();
    std::cout << "monitord " << config.monitor_id << ": "
              << result.intervals_reported << " intervals, "
              << result.stats.bytes << " bytes sent, " << result.reconnects
              << " reconnects\n";
    if (result.restored_from_checkpoint) {
      std::cout << "monitord " << config.monitor_id
                << ": restored from checkpoint, absorbed "
                << result.intervals_absorbed << " tail intervals, joined at "
                << result.start_interval << "\n";
    }
    if (!result.final_checkpoint_path.empty()) {
      std::cout << "monitord " << config.monitor_id << ": final checkpoint "
                << result.final_checkpoint_path << "\n";
    }
    export_observability(flags);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "spca_monitord: " << e.what() << "\n";
    FlightRecorder::global().note("fatal_error", -1, e.what());
    (void)FlightRecorder::global().dump("error");
    return 1;
  }
}
