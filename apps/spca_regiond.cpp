// Regional NOC daemon binary: the middle tier of the hierarchical
// deployment. Listens for its shard of spca_monitord processes, dials the
// root spca_nocd, and relays merged aggregates up / sketch requests and
// advances down.
//
// A 2-level loopback deployment (1 root + 2 regions + 4 monitors):
//
//   ./spca_nocd --port=47000 --monitors=4 --regions=2 &
//   ./spca_regiond --port=47100 --root-port=47000 --monitors=4 \
//       --regions=2 --region=0 &
//   ./spca_regiond --port=47101 --root-port=47000 --monitors=4 \
//       --regions=2 --region=1 &
//   ./spca_monitord --port=47100 --monitor-id=1 --upstream-region=0 \
//       --monitors=4 &
//   ...monitors 2 (region 0), 3 and 4 (region 1) alike.
//
// The root's trajectory is bit-identical to the flat deployment and to the
// SimNetwork reference (assert with spca_nocd --check-against-sim).
#include <csignal>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "hier/regional_daemon.hpp"
#include "net/net_flags.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"

namespace {

spca::RegionalDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags("spca_regiond: regional NOC daemon of the hierarchy");
  flags.define("listen", "127.0.0.1", "listen address (numeric IPv4)");
  flags.define("port", "47100", "listen port for the shard (0 = ephemeral)");
  flags.define("root", "127.0.0.1", "root NOC address (numeric IPv4)");
  flags.define("root-port", "47000", "root NOC port");
  flags.define("regions", "2", "total regions of the hierarchy");
  flags.define("region", "0", "this daemon's region index (0-based)");
  flags.define("interval-deadline-ms", "60000",
               "max wait with no progress before giving up");
  flags.define("checkpoint-dir", "",
               "durable snapshot directory (empty = no checkpointing)");
  flags.define("checkpoint-every", "8",
               "periodic snapshot cadence in intervals (0 = shutdown "
               "snapshot only)");
  flags.define("status-port", "-1",
               "serve /metrics, /metrics.json, /healthz, /spans on this "
               "port while running (-1 = off, 0 = ephemeral)");
  flags.define("status-host", "127.0.0.1",
               "bind address of the status endpoint");
  define_transport_flags(flags);
  define_scenario_flags(flags);
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    configure_observability(flags);

    RegionalDaemonConfig config;
    config.scenario = scenario_from_flags(flags);
    config.regions = static_cast<std::size_t>(flags.integer("regions"));
    config.region = static_cast<std::size_t>(flags.integer("region"));
    config.listen_host = flags.str("listen");
    config.listen_port = static_cast<std::uint16_t>(flags.integer("port"));
    config.root_host = flags.str("root");
    config.root_port = static_cast<std::uint16_t>(flags.integer("root-port"));
    config.interval_deadline =
        std::chrono::milliseconds(flags.integer("interval-deadline-ms"));
    config.checkpoint_dir = flags.str("checkpoint-dir");
    config.checkpoint_every = flags.integer("checkpoint-every");
    config.retry = retry_policy_from_flags(flags);
    config.io_timeout = io_timeout_from_flags(flags);
    config.status_port = static_cast<int>(flags.integer("status-port"));
    config.status_host = flags.str("status-host");
    RegionalDaemon daemon(config);
    g_daemon = &daemon;
    (void)std::signal(SIGTERM, handle_signal);
    (void)std::signal(SIGINT, handle_signal);

    daemon.start();
    const RegionalDaemonResult result = daemon.run();
    std::cout << "regiond " << config.region << ": relayed through interval "
              << result.next_interval << ", " << result.merges << " merges, "
              << result.stats.bytes << " bytes sent, " << result.reconnects
              << " reconnects\n";
    if (result.restored_from_checkpoint) {
      std::cout << "regiond " << config.region
                << ": restored from checkpoint\n";
    }
    export_observability(flags);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "spca_regiond: " << e.what() << "\n";
    FlightRecorder::global().note("fatal_error", -1, e.what());
    (void)FlightRecorder::global().dump("error");
    return 1;
  }
}
