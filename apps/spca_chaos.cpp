// Chaos harness binary: runs a deployment through a scripted fault schedule
// and exits non-zero unless the faulted trajectory is bit-identical to the
// fault-free SimNetwork reference — the CI gate of the fault-recovery
// subsystem (DESIGN.md §11).
//
//   # message faults only, single process:
//   ./spca_chaos --faults=drop=0.2,dup=0.1,reorder=0.2,corrupt=0.1,seed=3
//
//   # real TCP daemons, with a monitor killed at interval 18 and restarted
//   # from its durable checkpoint:
//   ./spca_chaos --mode=tcp --checkpoint-dir=/tmp/spca-ckpt
//       --faults=drop=0.05,kill=1@18,reset=2@9,seed=3
//
//   # 2-level hierarchy with regional NOC 0 killed mid-run and restarted
//   # from its SPCR snapshot:
//   ./spca_chaos --mode=tcp --regions=2 --monitors=4
//       --checkpoint-dir=/tmp/spca-ckpt --faults=kill=r0@18,seed=3
#include <iostream>
#include <optional>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "fault/chaos.hpp"
#include "net/net_flags.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "obs/status_server.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags("spca_chaos: fault-injection harness with a bit-exact "
                 "trajectory gate");
  flags.define("mode", "sim",
               "sim = FaultyTransport over the in-process SimNetwork; tcp = "
               "real daemons on loopback TCP (enables kill/reset events)");
  flags.define("faults", "",
               "fault schedule: drop=P,dup=P,reorder=P,corrupt=P,"
               "kill=NODE@T,reset=NODE@T,seed=N (P in [0,0.9]; kill/reset "
               "repeatable; empty = no faults)");
  flags.define("regions", "0",
               "regional NOCs between the monitors and the root (tcp mode; "
               "0 = flat; enables kill=r<idx>@T events)");
  flags.define("checkpoint-dir", "",
               "durable snapshot directory for the monitors (tcp mode; "
               "required when kills are scheduled)");
  flags.define("checkpoint-every", "6",
               "periodic snapshot cadence in intervals (tcp mode)");
  flags.define("crash-kills", "false",
               "kills skip the shutdown snapshot (as SIGKILL would), so the "
               "restart restores a periodic snapshot and absorbs the tail");
  flags.define("interval-deadline-ms", "60000",
               "NOC-side max wait for a missing monitor per interval");
  flags.define("status-port", "-1",
               "serve /metrics, /metrics.json, /healthz, /spans on this "
               "port while the schedule runs (-1 = off, 0 = ephemeral)");
  define_transport_flags(flags);
  define_scenario_flags(flags);
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    configure_observability(flags);
    // The harness's main thread blocks inside run_chaos, so the status
    // endpoint (when requested) polls from a helper thread instead of a
    // daemon wait loop.
    std::optional<StatusServer> status;
    if (flags.integer("status-port") >= 0) {
      StatusServerConfig scfg;
      scfg.port = static_cast<int>(flags.integer("status-port"));
      status.emplace(std::move(scfg));
      status->serve_in_background();
      std::cout << "chaos: status endpoint on 127.0.0.1:" << status->port()
                << "\n";
    }

    ChaosConfig config;
    config.scenario = scenario_from_flags(flags);
    config.faults = parse_fault_spec(flags.str("faults"));
    const std::string mode = flags.str("mode");
    if (mode != "sim" && mode != "tcp") {
      throw InputError("--mode must be 'sim' or 'tcp', got '" + mode + "'");
    }
    config.tcp = mode == "tcp";
    config.regions = static_cast<std::size_t>(flags.integer("regions"));
    config.checkpoint_dir = flags.str("checkpoint-dir");
    config.checkpoint_every = flags.integer("checkpoint-every");
    config.crash_kills = flags.boolean("crash-kills");
    config.interval_deadline =
        std::chrono::milliseconds(flags.integer("interval-deadline-ms"));
    config.retry = retry_policy_from_flags(flags);
    config.io_timeout = io_timeout_from_flags(flags);

    std::cout << "chaos: mode=" << mode << " schedule "
              << to_string(config.faults) << "\n";
    const ChaosResult result = run_chaos(config);
    std::cout << "chaos: injected " << result.faults.drops << " drops, "
              << result.faults.corruptions << " corruptions, "
              << result.faults.duplicates << " dups, "
              << result.faults.reorders << " reorders ("
              << result.faults.retransmits << " retransmits, "
              << result.faults.deduplicated << " deduplicated), "
              << result.kills << " kills, " << result.resets << " resets, "
              << result.monitor_reconnects << " monitor reconnects\n";
    export_observability(flags);
    if (!result.match) {
      std::cerr << "spca_chaos: trajectory DIVERGED from the fault-free "
                   "reference ("
                << result.run.alarm_intervals.size() << " vs "
                << result.reference.alarm_intervals.size() << " alarms, "
                << result.run.distances.size() << " vs "
                << result.reference.distances.size() << " detections)\n";
      FlightRecorder::global().note("divergence");
      (void)FlightRecorder::global().dump("divergence");
      return 2;
    }
    if (result.kills > 0 && !result.restored_from_checkpoint) {
      std::cerr << "spca_chaos: a restarted monitor fell back to a full "
                   "rebuild instead of restoring its checkpoint\n";
      return 3;
    }
    std::cout << "chaos: trajectory is bit-identical to the fault-free "
                 "reference\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "spca_chaos: " << e.what() << "\n";
    FlightRecorder::global().note("fatal_error", -1, e.what());
    (void)FlightRecorder::global().dump("error");
    return 1;
  }
}
