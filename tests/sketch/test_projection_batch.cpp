// Bit-identity of the batched tug-of-war projection kernel: the AVX2 path,
// the scalar fallback, and FlowSketch::add_batch must all reproduce the
// serial per-update path exactly — not approximately — at every size.
#include "sketch/projection_batch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rand/projection_prf.hpp"
#include "sketch/flow_sketch.hpp"

namespace spca {
namespace {

/// Restores the kernel dispatch override on scope exit.
class ScopedForceScalar final {
 public:
  explicit ScopedForceScalar(bool force) {
    force_scalar_projection_kernel(force);
  }
  ~ScopedForceScalar() { force_scalar_projection_kernel(false); }
};

std::vector<double> reference_payload(const ProjectionSource& projection,
                                      std::int64_t t, double volume,
                                      std::size_t l) {
  std::vector<double> payload(2 * l);
  for (std::size_t k = 0; k < l; ++k) {
    const double r = projection.value(t, k);
    payload[k] = volume * r;
    payload[l + k] = r;
  }
  return payload;
}

TEST(ProjectionBatch, TowPayloadMatchesProjectionSource) {
  const ProjectionSource projection(ProjectionKind::kTugOfWar, 1234);
  for (const std::size_t l : {1u, 7u, 64u, 4096u}) {
    for (const std::int64_t t : {0, 1, 17, 100000}) {
      const double volume = 3.75 * static_cast<double>(t + 1);
      std::vector<double> payload(2 * l);
      fill_tow_payload(projection.seed(), t, volume, l, payload.data());
      const std::vector<double> want =
          reference_payload(projection, t, volume, l);
      ASSERT_EQ(0, std::memcmp(payload.data(), want.data(),
                               payload.size() * sizeof(double)))
          << "l=" << l << " t=" << t;
    }
  }
}

TEST(ProjectionBatch, ScalarAndAvx2KernelsAgreeBitwise) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "host has no AVX2";
  const std::uint64_t seed = 99;
  for (const std::size_t l : {1u, 3u, 4u, 7u, 8u, 64u, 4096u}) {
    std::vector<double> simd(2 * l);
    std::vector<double> scalar(2 * l);
    {
      ScopedForceScalar off(false);
      ASSERT_TRUE(projection_kernel_uses_avx2());
      fill_tow_payload(seed, 42, 1e9 + 0.625, l, simd.data());
    }
    {
      ScopedForceScalar on(true);
      ASSERT_FALSE(projection_kernel_uses_avx2());
      fill_tow_payload(seed, 42, 1e9 + 0.625, l, scalar.data());
    }
    ASSERT_EQ(0, std::memcmp(simd.data(), scalar.data(),
                             simd.size() * sizeof(double)))
        << "l=" << l;
  }
}

/// Deep equality of two sketches: identical bucket lists (all statistics and
/// payload words compared bitwise) and identical reported outputs.
void expect_sketches_identical(const FlowSketch& a, const FlowSketch& b) {
  const auto& ha = a.histogram();
  const auto& hb = b.histogram();
  ASSERT_EQ(ha.bucket_count(), hb.bucket_count());
  ASSERT_EQ(ha.now(), hb.now());
  for (std::size_t i = 0; i < ha.bucket_count(); ++i) {
    const VhBucket& x = ha.buckets()[i];
    const VhBucket& y = hb.buckets()[i];
    ASSERT_EQ(x.timestamp, y.timestamp);
    ASSERT_EQ(x.count, y.count);
    ASSERT_EQ(0, std::memcmp(&x.mean, &y.mean, sizeof x.mean));
    ASSERT_EQ(0, std::memcmp(&x.variance, &y.variance, sizeof x.variance));
    ASSERT_EQ(x.payload.size(), y.payload.size());
    ASSERT_EQ(0, std::memcmp(x.payload.data(), y.payload.data(),
                             x.payload.size() * sizeof(double)));
  }
  const Vector za = a.sketch();
  const Vector zb = b.sketch();
  ASSERT_EQ(za.size(), zb.size());
  for (std::size_t k = 0; k < za.size(); ++k) {
    const double xa = za[k];
    const double xb = zb[k];
    ASSERT_EQ(0, std::memcmp(&xa, &xb, sizeof(double)));
  }
}

/// Streams `total` updates into one sketch via serial add() and another via
/// add_batch() chunks of `batch`, asserting identical state afterwards.
void check_add_batch(ProjectionKind kind, std::size_t batch,
                     std::size_t total) {
  const ProjectionSource projection =
      kind == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(7, 256)
          : ProjectionSource(kind, 7);
  FlowSketch serial(/*window=*/256, /*epsilon=*/0.05, /*sketch_rows=*/16,
                    projection);
  FlowSketch batched(256, 0.05, 16, projection);

  std::vector<SketchUpdate> updates(total);
  for (std::size_t i = 0; i < total; ++i) {
    updates[i].t = static_cast<std::int64_t>(i);
    // Irregular volumes (including exact zeros) to vary the bucket merges.
    updates[i].volume =
        (i % 11 == 0) ? 0.0 : 1000.0 + 13.25 * static_cast<double>(i % 97);
  }
  for (const SketchUpdate& u : updates) serial.add(u.t, u.volume);
  for (std::size_t lo = 0; lo < total; lo += batch) {
    const std::size_t n = std::min(batch, total - lo);
    batched.add_batch(std::span<const SketchUpdate>(updates.data() + lo, n));
  }
  expect_sketches_identical(serial, batched);
}

TEST(ProjectionBatch, AddBatchBitIdenticalAtEveryBatchSize) {
  for (const std::size_t batch : {1u, 7u, 64u, 4096u}) {
    for (const ProjectionKind kind :
         {ProjectionKind::kTugOfWar, ProjectionKind::kGaussian,
          ProjectionKind::kSparse, ProjectionKind::kVerySparse}) {
      check_add_batch(kind, batch, 4500);
    }
  }
}

TEST(ProjectionBatch, AddBatchBitIdenticalWithAvx2ForcedOff) {
  ScopedForceScalar forced(true);
  for (const std::size_t batch : {1u, 7u, 64u, 4096u}) {
    check_add_batch(ProjectionKind::kTugOfWar, batch, 4500);
  }
}

TEST(ProjectionBatch, PrfFactorsThroughBase) {
  // The hoisted (seed, t) prefix must compose to the full PRF — the property
  // both kernels rely on to amortize per-update hashing.
  for (const std::uint64_t seed : {0ull, 7ull, 0xffffffffffffffffull}) {
    for (const std::int64_t t : {0, 5, 1 << 20}) {
      const std::uint64_t base = projection_prf_base(seed, t);
      for (const std::size_t k : {0u, 1u, 63u, 4095u}) {
        ASSERT_EQ(projection_prf(seed, t, k, 0),
                  projection_prf_finish(base, k, 0));
      }
    }
  }
}

}  // namespace
}  // namespace spca
