#include "sketch/flow_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/random_projection.hpp"

namespace spca {
namespace {

TEST(FlowSketch, EmptySketchIsZero) {
  const ProjectionSource proj(ProjectionKind::kGaussian, 1);
  const FlowSketch sketch(32, 0.1, 4, proj);
  const Vector z = sketch.sketch();
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(z[k], 0.0);
  EXPECT_EQ(sketch.count(), 0u);
}

TEST(FlowSketch, ExactOnShortUnmergedStreams) {
  // While every bucket is a singleton the sketch equals the exact centered
  // projection of the observed values.
  const std::size_t l = 6;
  const ProjectionSource proj(ProjectionKind::kGaussian, 21);
  FlowSketch sketch(128, 0.3, l, proj);
  std::vector<double> xs = {5.0, 9.0, 2.0, 7.5, 4.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sketch.add(static_cast<std::int64_t>(i), xs[i]);
  }
  const double mean = (5.0 + 9.0 + 2.0 + 7.5 + 4.0) / 5.0;
  const Vector z = sketch.sketch();
  for (std::size_t k = 0; k < l; ++k) {
    double expected = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      expected += (xs[i] - mean) *
                  proj.value(static_cast<std::int64_t>(i), k);
    }
    expected /= std::sqrt(static_cast<double>(l));
    EXPECT_NEAR(z[k], expected, 1e-10);
  }
}

TEST(FlowSketch, MeanAndCountTrackWindow) {
  const ProjectionSource proj(ProjectionKind::kTugOfWar, 4);
  FlowSketch sketch(16, 0.2, 2, proj);
  for (std::int64_t t = 0; t < 10; ++t) {
    sketch.add(t, 4.0);
  }
  EXPECT_EQ(sketch.count(), 10u);
  EXPECT_NEAR(sketch.mean(), 4.0, 1e-12);
}

TEST(FlowSketch, TwoInstancesWithSameSourceAgree) {
  // The distributed-parity property at the single-flow level.
  const ProjectionSource proj(ProjectionKind::kSparse, 77, 3.0);
  FlowSketch a(64, 0.05, 8, proj);
  FlowSketch b(64, 0.05, 8, proj);
  Xoshiro256 gen(3);
  for (std::int64_t t = 0; t < 200; ++t) {
    const double x = 50.0 + 10.0 * standard_normal(gen);
    a.add(t, x);
    b.add(t, x);
  }
  const Vector za = a.sketch();
  const Vector zb = b.sketch();
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(za[k], zb[k]);
  }
}

// Lemma 4: the sketch's squared norm approximates the centered window
// column's squared norm within a (1 +- 2eps)-ish factor for l large enough.
class FlowSketchNormTest : public ::testing::TestWithParam<ProjectionKind> {};

TEST_P(FlowSketchNormTest, SketchNormApproximatesCenteredColumnNorm) {
  const std::size_t n = 256;
  const std::size_t l = 512;  // generous l to make concentration tight
  const ProjectionSource proj =
      GetParam() == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(11, n)
          : ProjectionSource(GetParam(), 11, 3.0);
  FlowSketch sketch(n, 0.01, l, proj);

  Xoshiro256 gen(42);
  std::vector<double> window;
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(n); ++t) {
    const double x = 100.0 + 15.0 * standard_normal(gen);
    sketch.add(t, x);
    window.push_back(x);
  }
  double mean = 0.0;
  for (const double x : window) mean += x;
  mean /= static_cast<double>(n);
  double y_norm2 = 0.0;
  for (const double x : window) y_norm2 += (x - mean) * (x - mean);

  const double z_norm2 = norm_squared(sketch.sketch());
  EXPECT_NEAR(z_norm2 / y_norm2, 1.0, 0.25) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FlowSketchNormTest,
    ::testing::Values(ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
                      ProjectionKind::kSparse, ProjectionKind::kVerySparse));

TEST(FlowSketch, SlidingExpiryDropsOldContributions) {
  const std::size_t n = 32;
  const ProjectionSource proj(ProjectionKind::kGaussian, 5);
  FlowSketch sketch(n, 0.1, 4, proj);
  // Large burst far in the past, then a long quiet run.
  sketch.add(0, 1e9);
  for (std::int64_t t = 1; t < 200; ++t) {
    sketch.add(t, 10.0);
  }
  // The burst left the window long ago: mean must reflect only quiet data.
  EXPECT_NEAR(sketch.mean(), 10.0, 1e-9);
  EXPECT_LE(sketch.count(), n);
}

TEST(FlowSketch, BucketGrowthLogarithmic) {
  const std::size_t n = 4096;
  const ProjectionSource proj(ProjectionKind::kTugOfWar, 6);
  FlowSketch sketch(n, 0.05, 2, proj);
  Xoshiro256 gen(8);
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(2 * n); ++t) {
    sketch.add(t, 100.0 + standard_normal(gen));
  }
  EXPECT_LT(sketch.bucket_count(),
            static_cast<std::size_t>(
                (1.0 / 0.05) * std::log2(static_cast<double>(n)) * 8.0));
}

TEST(FlowSketch, RejectsZeroRows) {
  const ProjectionSource proj(ProjectionKind::kGaussian, 1);
  EXPECT_THROW(FlowSketch(32, 0.1, 0, proj), ContractViolation);
}

}  // namespace
}  // namespace spca
