#include "sketch/count_min.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "rand/zipf.hpp"

namespace spca {
namespace {

TEST(CountMinSketch, ExactForFewDistinctKeys) {
  CountMinSketch cm(64, 4, 1);
  cm.add(10, 5.0);
  cm.add(20, 3.0);
  cm.add(10, 2.0);
  EXPECT_DOUBLE_EQ(cm.estimate(10), 7.0);
  EXPECT_DOUBLE_EQ(cm.estimate(20), 3.0);
  EXPECT_DOUBLE_EQ(cm.total(), 10.0);
}

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cm(32, 3, 2);
  std::map<std::uint32_t, double> truth;
  Xoshiro256 gen(3);
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::uint32_t>(uniform_index(gen, 500));
    const double w = 1.0 + bits_to_unit_double(gen());
    cm.add(key, w);
    truth[key] += w;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cm.estimate(key), count - 1e-9) << "key " << key;
  }
}

TEST(CountMinSketch, AccuracyBoundHoldsOnAverage) {
  // Overshoot <= eps * total for most keys with the accuracy factory.
  const double eps = 0.01;
  CountMinSketch cm = CountMinSketch::with_accuracy(eps, 0.01, 7);
  std::map<std::uint32_t, double> truth;
  Xoshiro256 gen(5);
  const ZipfSampler zipf(2000, 1.1);
  for (int i = 0; i < 50000; ++i) {
    const auto key = static_cast<std::uint32_t>(zipf(gen));
    cm.add(key);
    truth[key] += 1.0;
  }
  std::size_t violations = 0;
  for (const auto& [key, count] : truth) {
    if (cm.estimate(key) - count > eps * cm.total()) ++violations;
  }
  EXPECT_LE(violations, truth.size() / 50);  // <= 2% of keys
}

TEST(CountMinSketch, UnseenKeysUsuallySmall) {
  CountMinSketch cm = CountMinSketch::with_accuracy(0.005, 0.01, 9);
  for (std::uint32_t k = 0; k < 100; ++k) cm.add(k, 10.0);
  // A key never added: estimate bounded by eps * total = 5.
  EXPECT_LE(cm.estimate(999999), 0.005 * cm.total() + 10.0);
}

TEST(CountMinSketch, MergeEqualsCombinedStream) {
  CountMinSketch a(64, 4, 11);
  CountMinSketch b(64, 4, 11);
  CountMinSketch combined(64, 4, 11);
  for (std::uint32_t k = 0; k < 50; ++k) {
    a.add(k, static_cast<double>(k));
    combined.add(k, static_cast<double>(k));
  }
  for (std::uint32_t k = 25; k < 75; ++k) {
    b.add(k, 2.0);
    combined.add(k, 2.0);
  }
  a.merge(b);
  for (std::uint32_t k = 0; k < 75; ++k) {
    EXPECT_DOUBLE_EQ(a.estimate(k), combined.estimate(k));
  }
  EXPECT_DOUBLE_EQ(a.total(), combined.total());
}

TEST(CountMinSketch, MergeShapeMismatchRejected) {
  CountMinSketch a(64, 4, 1);
  CountMinSketch b(32, 4, 1);
  CountMinSketch c(64, 4, 2);
  EXPECT_THROW(a.merge(b), ContractViolation);
  EXPECT_THROW(a.merge(c), ContractViolation);
}

TEST(CountMinSketch, ResetClears) {
  CountMinSketch cm(16, 2, 1);
  cm.add(5, 100.0);
  cm.reset();
  EXPECT_DOUBLE_EQ(cm.estimate(5), 0.0);
  EXPECT_DOUBLE_EQ(cm.total(), 0.0);
}

TEST(CountMinSketch, Validation) {
  EXPECT_THROW(CountMinSketch(0, 2, 1), ContractViolation);
  EXPECT_THROW(CountMinSketch(4, 0, 1), ContractViolation);
  EXPECT_THROW(CountMinSketch::with_accuracy(0.0, 0.1, 1),
               ContractViolation);
  CountMinSketch cm(4, 2, 1);
  EXPECT_THROW(cm.add(1, -1.0), ContractViolation);
}

TEST(HeavyHitterTracker, FindsDominantKeysInZipfStream) {
  HeavyHitterTracker tracker(32, 0.001, 0.01, 13);
  Xoshiro256 gen(17);
  const ZipfSampler zipf(5000, 1.2);
  for (int i = 0; i < 100000; ++i) {
    tracker.add(static_cast<std::uint32_t>(zipf(gen)));
  }
  // Rank 0 has probability ~0.29 under Zipf(1.2, 5000): clearly heavy.
  const auto hitters = tracker.hitters(0.05);
  ASSERT_FALSE(hitters.empty());
  EXPECT_EQ(hitters[0].key, 0u);
  // Results are sorted by estimate.
  for (std::size_t i = 1; i < hitters.size(); ++i) {
    EXPECT_GE(hitters[i - 1].estimate, hitters[i].estimate);
  }
}

TEST(HeavyHitterTracker, TopKRespectsK) {
  HeavyHitterTracker tracker(64, 0.001, 0.01, 19);
  for (std::uint32_t k = 0; k < 40; ++k) {
    tracker.add(k, static_cast<double>(40 - k));
  }
  const auto top = tracker.top(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].key, 0u);
  EXPECT_DOUBLE_EQ(top[0].estimate, 40.0);
}

TEST(HeavyHitterTracker, CapacityEvictsWeakest) {
  HeavyHitterTracker tracker(4, 0.001, 0.01, 23);
  // Five keys with clearly distinct weights; the lightest is evicted.
  tracker.add(1, 100.0);
  tracker.add(2, 80.0);
  tracker.add(3, 60.0);
  tracker.add(4, 40.0);
  tracker.add(5, 1.0);
  const auto top = tracker.top(10);
  EXPECT_EQ(top.size(), 4u);
  for (const auto& h : top) {
    EXPECT_NE(h.key, 5u);
  }
}

TEST(HeavyHitterTracker, ResetStartsFresh) {
  HeavyHitterTracker tracker(8, 0.01, 0.01, 29);
  tracker.add(1, 10.0);
  tracker.reset();
  EXPECT_TRUE(tracker.top(5).empty());
  EXPECT_DOUBLE_EQ(tracker.sketch().total(), 0.0);
}

}  // namespace
}  // namespace spca
