#include "sketch/random_projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/flow_sketch.hpp"

namespace spca {
namespace {

Matrix random_data(std::size_t n, std::size_t m, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      y(i, j) = standard_normal(gen);
    }
  }
  return y;
}

TEST(ProjectionMatrix, MaterializesCoefficients) {
  const ProjectionSource proj(ProjectionKind::kGaussian, 3);
  const Matrix r = projection_matrix(proj, 10, 5, 4);
  EXPECT_EQ(r.rows(), 5u);
  EXPECT_EQ(r.cols(), 4u);
  EXPECT_EQ(r(2, 3), proj.value(12, 3));
}

TEST(ProjectColumns, MatchesExplicitMatrixProduct) {
  const ProjectionSource proj(ProjectionKind::kTugOfWar, 8);
  const Matrix y = random_data(20, 6, 1);
  const Matrix z = project_columns(y, proj, 100, 7);
  const Matrix r = projection_matrix(proj, 100, 20, 7);
  // z = R^T y / sqrt(l)
  Matrix expected = multiply(transpose(r), y);
  expected *= 1.0 / std::sqrt(7.0);
  EXPECT_LT(max_abs_diff(z, expected), 1e-12);
}

// Lemma 2 / Lemma 3: E(|z|^2) = |y|^2 with exponential concentration, for
// both the Gaussian and the sparse schemes.
class ProjectionNormTest : public ::testing::TestWithParam<ProjectionKind> {};

TEST_P(ProjectionNormTest, NormPreservedWithinTolerance) {
  const std::size_t n = 300;
  const std::size_t l = 400;
  const ProjectionSource proj =
      GetParam() == ProjectionKind::kVerySparse
          ? ProjectionSource::very_sparse(19, n)
          : ProjectionSource(GetParam(), 19, 3.0);
  const Matrix y = random_data(n, 5, 77);
  const Matrix z = project_columns(y, proj, 0, l);
  for (std::size_t j = 0; j < 5; ++j) {
    const double yj2 = norm_squared(y.col(j));
    const double zj2 = norm_squared(z.col(j));
    EXPECT_NEAR(zj2 / yj2, 1.0, 0.35) << to_string(GetParam()) << " col " << j;
  }
}

TEST_P(ProjectionNormTest, AverageOverSeedsConvergesToNorm) {
  // Stronger check of E(|z|^2) = |y|^2: average over independent seeds.
  const std::size_t n = 100;
  const std::size_t l = 20;
  const Matrix y = random_data(n, 1, 5);
  const double y2 = norm_squared(y.col(0));
  double sum = 0.0;
  constexpr int kSeeds = 60;
  for (int s = 0; s < kSeeds; ++s) {
    const ProjectionSource proj =
        GetParam() == ProjectionKind::kVerySparse
            ? ProjectionSource::very_sparse(1000 + s, n)
            : ProjectionSource(GetParam(), 1000 + s, 3.0);
    sum += norm_squared(project_columns(y, proj, 0, l).col(0));
  }
  EXPECT_NEAR(sum / kSeeds / y2, 1.0, 0.15) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ProjectionNormTest,
    ::testing::Values(ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
                      ProjectionKind::kSparse, ProjectionKind::kVerySparse));

TEST(ProjectColumns, GramApproximatesDataGram) {
  // The covariance-approximation property behind Lemma 6: Z^T Z ~ Y^T Y.
  const std::size_t n = 500;
  const std::size_t l = 800;
  const ProjectionSource proj(ProjectionKind::kGaussian, 29);
  const Matrix y = random_data(n, 4, 33);
  const Matrix z = project_columns(y, proj, 0, l);
  const Matrix gy = gram(y);
  const Matrix gz = gram(z);
  EXPECT_LT(frobenius_norm(gz - gy) / frobenius_norm(gy), 0.25);
}

TEST(StreamingSketchMatchesExactProjection, CenteredColumns) {
  // End-to-end Lemma 4 check: the FlowSketch (streaming, merged buckets)
  // is close to the exact projection of the centered window column.
  const std::size_t n = 256;
  const std::size_t l = 64;
  const double epsilon = 0.05;
  const ProjectionSource proj(ProjectionKind::kGaussian, 101);
  FlowSketch sketch(n, epsilon, l, proj);

  Xoshiro256 gen(55);
  std::vector<double> xs;
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(n); ++t) {
    const double x = 200.0 + 30.0 * standard_normal(gen);
    sketch.add(t, x);
    xs.push_back(x);
  }
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) y(i, 0) = xs[i];
  const Matrix centered = center_columns(y);
  const Matrix z_exact = project_columns(centered, proj, 0, l);

  const Vector z_stream = sketch.sketch();
  const double exact_norm = norm(z_exact.col(0));
  double diff2 = 0.0;
  for (std::size_t k = 0; k < l; ++k) {
    const double d = z_stream[k] - z_exact(k, 0);
    diff2 += d * d;
  }
  // The VH-induced perturbation is bounded by ~eps * |y|^2; relative to the
  // sketch norm it must be small.
  EXPECT_LT(std::sqrt(diff2) / exact_norm, 0.30);
}

}  // namespace
}  // namespace spca
