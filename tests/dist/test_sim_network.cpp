#include "dist/sim_network.hpp"

#include <gtest/gtest.h>

namespace spca {
namespace {

Message make_message(NodeId from, NodeId to, MessageType type) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.values = {1.0, 2.0};
  return msg;
}

TEST(SimNetwork, DeliversInSendOrder) {
  SimNetwork net;
  Message a = make_message(1, 0, MessageType::kVolumeReport);
  a.interval = 1;
  Message b = make_message(2, 0, MessageType::kVolumeReport);
  b.interval = 2;
  net.send(a);
  net.send(b);
  const auto delivered = net.drain(0);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].interval, 1);
  EXPECT_EQ(delivered[1].interval, 2);
}

TEST(SimNetwork, DrainEmptiesQueue) {
  SimNetwork net;
  net.send(make_message(1, 0, MessageType::kVolumeReport));
  EXPECT_TRUE(net.has_mail(0));
  (void)net.drain(0);
  EXPECT_FALSE(net.has_mail(0));
  EXPECT_TRUE(net.drain(0).empty());
}

TEST(SimNetwork, RoutesByDestination) {
  SimNetwork net;
  net.send(make_message(0, 1, MessageType::kSketchRequest));
  net.send(make_message(0, 2, MessageType::kSketchRequest));
  EXPECT_EQ(net.drain(1).size(), 1u);
  EXPECT_EQ(net.drain(2).size(), 1u);
  EXPECT_TRUE(net.drain(3).empty());
}

TEST(SimNetwork, AccountsBytesAndMessagesByType) {
  SimNetwork net;
  const Message report = make_message(1, 0, MessageType::kVolumeReport);
  const Message request = make_message(0, 1, MessageType::kSketchRequest);
  net.send(report);
  net.send(report);
  net.send(request);
  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.bytes,
            2 * report.wire_bytes() + request.wire_bytes());
  EXPECT_EQ(stats.messages_by_type[static_cast<int>(
                MessageType::kVolumeReport)],
            2u);
  EXPECT_EQ(stats.bytes_by_type[static_cast<int>(
                MessageType::kSketchRequest)],
            request.wire_bytes());
}

TEST(SimNetwork, ResetStatsClearsCounters) {
  SimNetwork net;
  net.send(make_message(1, 0, MessageType::kAlarm));
  net.reset_stats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
  // Queued mail survives a stats reset.
  EXPECT_TRUE(net.has_mail(0));
}

TEST(SimNetwork, MessagesSurviveWireRoundTrip) {
  SimNetwork net;
  Message msg = make_message(4, 0, MessageType::kSketchResponse);
  msg.ids = {1, 2, 3};
  msg.values = {0.5, 1.5};
  msg.interval = 77;
  net.send(msg);
  const auto delivered = net.drain(0);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ids, msg.ids);
  EXPECT_EQ(delivered[0].values, msg.values);
  EXPECT_EQ(delivered[0].interval, 77);
}

}  // namespace
}  // namespace spca
