#include "dist/noc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/local_monitor.hpp"
#include "dist/sim_network.hpp"

namespace spca {
namespace {

NocConfig small_noc_config(std::size_t l) {
  NocConfig config;
  config.window = 16;
  config.sketch_rows = l;
  config.alpha = 0.01;
  config.rank_policy = RankPolicy::fixed(2);
  return config;
}

TEST(Noc, CollectsVolumesFromMultipleMonitors) {
  SimNetwork net;
  Noc noc(4, small_noc_config(4));
  Message r1;
  r1.type = MessageType::kVolumeReport;
  r1.from = 1;
  r1.to = kNocId;
  r1.interval = 5;
  r1.ids = {0, 2};
  r1.values = {10.0, 30.0};
  Message r2 = r1;
  r2.from = 2;
  r2.ids = {1, 3};
  r2.values = {20.0, 40.0};
  net.send(r1);
  net.send(r2);
  const Vector x = noc.collect_volumes(5, net);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(x[j], 10.0 * static_cast<double>(j + 1));
  }
}

TEST(Noc, MissingReportsRejected) {
  SimNetwork net;
  Noc noc(4, small_noc_config(4));
  Message r1;
  r1.type = MessageType::kVolumeReport;
  r1.from = 1;
  r1.to = kNocId;
  r1.interval = 0;
  r1.ids = {0, 1};
  r1.values = {1.0, 2.0};
  net.send(r1);
  EXPECT_THROW((void)noc.collect_volumes(0, net), ProtocolError);
}

TEST(Noc, DuplicateFlowReportRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(2));
  Message r;
  r.type = MessageType::kVolumeReport;
  r.from = 1;
  r.to = kNocId;
  r.interval = 0;
  r.ids = {0, 0};
  r.values = {1.0, 2.0};
  net.send(r);
  EXPECT_THROW((void)noc.collect_volumes(0, net), ProtocolError);
}

TEST(Noc, WrongIntervalRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(2));
  Message r;
  r.type = MessageType::kVolumeReport;
  r.from = 1;
  r.to = kNocId;
  r.interval = 3;
  r.ids = {0, 1};
  r.values = {1.0, 2.0};
  net.send(r);
  EXPECT_THROW((void)noc.collect_volumes(4, net), ProtocolError);
}

class NocProtocolTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kFlows = 4;
  static constexpr std::size_t kRows = 8;
  SimNetwork net_;
  ProjectionSource source_{ProjectionKind::kGaussian, 31};
  LocalMonitor monitor_a_{1, {0, 1}, 16, 0.05, kRows, source_};
  LocalMonitor monitor_b_{2, {2, 3}, 16, 0.05, kRows, source_};
  Noc noc_{kFlows, small_noc_config(kRows)};

  void feed_interval(std::int64_t t, const Vector& x) {
    monitor_a_.ingest_volume(0, x[0]);
    monitor_a_.ingest_volume(1, x[1]);
    monitor_b_.ingest_volume(2, x[2]);
    monitor_b_.ingest_volume(3, x[3]);
    monitor_a_.end_interval(t, net_);
    monitor_b_.end_interval(t, net_);
  }

  std::function<void()> pump() {
    return [this] {
      monitor_a_.handle_mail(net_);
      monitor_b_.handle_mail(net_);
    };
  }

  static Vector quiet_row(std::int64_t t) {
    Vector x(kFlows);
    for (std::size_t j = 0; j < kFlows; ++j) {
      x[j] = 1000.0 * static_cast<double>(j + 1) +
             25.0 * std::sin(static_cast<double>(t) * 0.4 +
                             static_cast<double>(j));
    }
    return x;
  }
};

TEST_F(NocProtocolTest, FirstDetectPullsSketchesOnce) {
  for (std::int64_t t = 0; t < 16; ++t) {
    feed_interval(t, quiet_row(t));
    const Vector x = noc_.collect_volumes(t, net_);
    if (t == 15) {
      const Detection det = noc_.detect(t, x, {1, 2}, net_, pump());
      EXPECT_TRUE(det.ready);
      EXPECT_TRUE(det.model_refreshed);
    }
  }
  EXPECT_EQ(noc_.sketch_pulls(), 1u);
  ASSERT_TRUE(noc_.model().has_value());
  EXPECT_EQ(noc_.model()->dimensions(), kFlows);
}

TEST_F(NocProtocolTest, QuietTrafficReusesStaleModel) {
  for (std::int64_t t = 0; t < 40; ++t) {
    feed_interval(t, quiet_row(t));
    const Vector x = noc_.collect_volumes(t, net_);
    if (t >= 15) {
      (void)noc_.detect(t, x, {1, 2}, net_, pump());
    }
  }
  // One initial pull plus at most a few suspicion-driven refreshes.
  EXPECT_LT(noc_.sketch_pulls(), 10u);
}

TEST_F(NocProtocolTest, SpikeForcesRefreshAndAlarm) {
  for (std::int64_t t = 0; t < 30; ++t) {
    Vector x = quiet_row(t);
    if (t == 29) {
      x[0] *= 8.0;
      x[2] *= 8.0;
    }
    feed_interval(t, x);
    const Vector assembled = noc_.collect_volumes(t, net_);
    if (t >= 15) {
      const Detection det = noc_.detect(t, assembled, {1, 2}, net_, pump());
      if (t == 29) {
        EXPECT_TRUE(det.model_refreshed);
        EXPECT_TRUE(det.alarm);
      }
    }
  }
  EXPECT_GE(noc_.alarms_sent(), 1u);
}

TEST(NocFailureInjection, MalformedSketchResponseRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(4));
  Message bad;
  bad.type = MessageType::kSketchResponse;
  bad.from = 1;
  bad.to = kNocId;
  bad.ids = {0, 1};
  bad.values = {1.0, 2.0, 3.0};  // wrong block size: needs 2 * (4 + 2)
  net.send(bad);
  EXPECT_THROW(noc.ingest_sketch_responses(net), ProtocolError);
}

TEST(NocFailureInjection, SketchForUnknownFlowRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(2));
  Message bad;
  bad.type = MessageType::kSketchResponse;
  bad.from = 1;
  bad.to = kNocId;
  bad.ids = {7};  // flow 7 does not exist in a 2-flow deployment
  bad.values = {0.0, 1.0, 0.5, 0.5};
  net.send(bad);
  EXPECT_THROW(noc.ingest_sketch_responses(net), ProtocolError);
}

TEST(NocFailureInjection, RefitBeforeAllSketchesRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(2));
  Message partial;
  partial.type = MessageType::kSketchResponse;
  partial.from = 1;
  partial.to = kNocId;
  partial.ids = {0};  // flow 1's sketch never arrives
  partial.values = {0.0, 4.0, 0.5, 0.5};
  net.send(partial);
  EXPECT_THROW(noc.ingest_sketch_responses(net), ProtocolError);
}

TEST(NocFailureInjection, WrongMessageTypeInSketchPhaseRejected) {
  SimNetwork net;
  Noc noc(2, small_noc_config(2));
  Message wrong;
  wrong.type = MessageType::kVolumeReport;
  wrong.from = 1;
  wrong.to = kNocId;
  wrong.ids = {0, 1};
  wrong.values = {1.0, 2.0};
  net.send(wrong);
  EXPECT_THROW(noc.ingest_sketch_responses(net), ProtocolError);
}

TEST_F(NocProtocolTest, EagerModePullsEveryInterval) {
  NocConfig eager = small_noc_config(kRows);
  eager.lazy = false;
  Noc noc(kFlows, eager);
  for (std::int64_t t = 0; t < 24; ++t) {
    feed_interval(t, quiet_row(t));
    const Vector x = noc.collect_volumes(t, net_);
    if (t >= 15) {
      (void)noc.detect(t, x, {1, 2}, net_, pump());
    }
  }
  EXPECT_EQ(noc.sketch_pulls(), 24u - 15u);
}

}  // namespace
}  // namespace spca
