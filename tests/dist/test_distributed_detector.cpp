#include "dist/distributed_detector.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "common/contracts.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

SketchDetectorConfig config_for(std::size_t window, std::size_t l) {
  SketchDetectorConfig config;
  config.window = window;
  config.epsilon = 0.01;
  config.sketch_rows = l;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 7;
  return config;
}

TEST(DistributedDetector, WarmupMirrorsSingleProcess) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 40, 1);
  DistributedDetector detector(trace.num_flows(), 4, config_for(32, 8));
  for (std::size_t t = 0; t < 31; ++t) {
    EXPECT_FALSE(
        detector.observe(static_cast<std::int64_t>(t), trace.row(t)).ready);
  }
  EXPECT_TRUE(detector.observe(31, trace.row(31)).ready);
}

TEST(DistributedDetector, MonitorCountRespected) {
  const Topology topo = small_topology();
  DistributedDetector detector(16, 5, config_for(16, 4));
  EXPECT_EQ(detector.num_monitors(), 5u);
}

TEST(DistributedDetector, VolumeReportsFlowEveryInterval) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 20, 2);
  DistributedDetector detector(trace.num_flows(), 4, config_for(16, 4));
  for (std::size_t t = 0; t < 20; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const NetworkStats& stats = detector.network_stats();
  // 4 monitors x 20 intervals volume reports.
  EXPECT_EQ(stats.messages_by_type[static_cast<int>(
                MessageType::kVolumeReport)],
            80u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(DistributedDetector, LazySavesSketchTrafficVersusEager) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 120, 3);
  SketchDetectorConfig lazy = config_for(64, 16);
  lazy.lazy = true;
  SketchDetectorConfig eager = lazy;
  eager.lazy = false;

  DistributedDetector lazy_det(trace.num_flows(), 4, lazy);
  DistributedDetector eager_det(trace.num_flows(), 4, eager);
  for (std::size_t t = 0; t < 120; ++t) {
    (void)lazy_det.observe(static_cast<std::int64_t>(t), trace.row(t));
    (void)eager_det.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const auto lazy_sketch_bytes =
      lazy_det.network_stats()
          .bytes_by_type[static_cast<int>(MessageType::kSketchResponse)];
  const auto eager_sketch_bytes =
      eager_det.network_stats()
          .bytes_by_type[static_cast<int>(MessageType::kSketchResponse)];
  EXPECT_LT(lazy_sketch_bytes, eager_sketch_bytes / 2);
}

TEST(DistributedDetector, AgreesWithSingleProcessSketchDetector) {
  // The load-bearing parity property: the distributed deployment is the
  // same algorithm as the single-process detector, verdict for verdict.
  const Topology topo = small_topology();
  const TraceSet trace =
      small_trace(topo, 150, 4, /*anomalies=*/4, /*warmup=*/70);
  const SketchDetectorConfig config = config_for(64, 24);
  SketchDetector reference(trace.num_flows(), config);
  DistributedDetector distributed(trace.num_flows(), 4, config);

  for (std::size_t t = 0; t < 150; ++t) {
    const Detection a =
        reference.observe(static_cast<std::int64_t>(t), trace.row(t));
    const Detection b =
        distributed.observe(static_cast<std::int64_t>(t), trace.row(t));
    ASSERT_EQ(a.ready, b.ready) << "t=" << t;
    if (!a.ready) continue;
    EXPECT_EQ(a.alarm, b.alarm) << "t=" << t;
    EXPECT_NEAR(a.distance, b.distance, 1e-6 * (1.0 + a.distance))
        << "t=" << t;
    EXPECT_NEAR(a.threshold, b.threshold, 1e-6 * (1.0 + a.threshold))
        << "t=" << t;
    EXPECT_EQ(a.normal_rank, b.normal_rank) << "t=" << t;
  }
}

TEST(DistributedDetector, NocHostedModeMatchesMonitorHostedVerdicts) {
  // Theorem 1's alternative deployment: identical algorithm, different
  // placement of the histograms — verdicts must agree bit for bit.
  const Topology topo = small_topology();
  const TraceSet trace =
      small_trace(topo, 140, 6, /*anomalies=*/3, /*warmup=*/70);
  const SketchDetectorConfig config = config_for(64, 16);
  DistributedDetector monitor_hosted(trace.num_flows(), 4, config, false);
  DistributedDetector noc_hosted(trace.num_flows(), 4, config, true);
  EXPECT_TRUE(noc_hosted.noc_hosted_sketches());

  for (std::size_t t = 0; t < 140; ++t) {
    const Detection a =
        monitor_hosted.observe(static_cast<std::int64_t>(t), trace.row(t));
    const Detection b =
        noc_hosted.observe(static_cast<std::int64_t>(t), trace.row(t));
    ASSERT_EQ(a.ready, b.ready) << "t=" << t;
    ASSERT_EQ(a.alarm, b.alarm) << "t=" << t;
    ASSERT_EQ(a.distance, b.distance) << "t=" << t;
  }
}

TEST(DistributedDetector, NocHostedModeSendsNoSketchMessages) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 100, 7);
  DistributedDetector deployment(trace.num_flows(), 4, config_for(64, 16),
                                 /*noc_hosted_sketches=*/true);
  for (std::size_t t = 0; t < 100; ++t) {
    (void)deployment.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const NetworkStats& stats = deployment.network_stats();
  EXPECT_EQ(stats.messages_by_type[static_cast<int>(
                MessageType::kSketchRequest)],
            0u);
  EXPECT_EQ(stats.messages_by_type[static_cast<int>(
                MessageType::kSketchResponse)],
            0u);
  // Monitors hold no sketch state at all in this mode.
  EXPECT_EQ(deployment.monitor_memory_bytes(), 0u);
  // The NOC still recomputed models (locally).
  EXPECT_GE(deployment.noc().sketch_pulls(), 1u);
}

TEST(DistributedDetector, MonitorMemoryScalesWithSketchRows) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 40, 5);
  DistributedDetector small(trace.num_flows(), 4, config_for(32, 4));
  DistributedDetector large(trace.num_flows(), 4, config_for(32, 64));
  for (std::size_t t = 0; t < 40; ++t) {
    (void)small.observe(static_cast<std::int64_t>(t), trace.row(t));
    (void)large.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  EXPECT_GT(large.monitor_memory_bytes(), 4 * small.monitor_memory_bytes());
}

TEST(DistributedDetector, ValidatesConstruction) {
  EXPECT_THROW(DistributedDetector(4, 0, config_for(16, 4)),
               ContractViolation);
  EXPECT_THROW(DistributedDetector(4, 5, config_for(16, 4)),
               ContractViolation);
  EXPECT_THROW(DistributedDetector(1, 1, config_for(16, 4)),
               ContractViolation);
}

}  // namespace
}  // namespace spca
