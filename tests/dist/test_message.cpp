#include "dist/message.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spca {
namespace {

Message sample_message() {
  Message msg;
  msg.type = MessageType::kSketchResponse;
  msg.from = 3;
  msg.to = kNocId;
  msg.interval = 12345;
  msg.ids = {7, 11, 13};
  msg.values = {1.5, -2.25, 1e300, 0.0};
  return msg;
}

TEST(Message, SerializeDeserializeRoundTrip) {
  const Message original = sample_message();
  const Message parsed = deserialize(serialize(original));
  EXPECT_EQ(parsed.type, original.type);
  EXPECT_EQ(parsed.from, original.from);
  EXPECT_EQ(parsed.to, original.to);
  EXPECT_EQ(parsed.interval, original.interval);
  EXPECT_EQ(parsed.ids, original.ids);
  EXPECT_EQ(parsed.values, original.values);
}

TEST(Message, WireBytesMatchesSerializedSize) {
  const Message msg = sample_message();
  EXPECT_EQ(serialize(msg).size(), msg.wire_bytes());
}

TEST(Message, EmptyPayloadsSupported) {
  Message msg;
  msg.type = MessageType::kSketchRequest;
  msg.interval = -5;
  const Message parsed = deserialize(serialize(msg));
  EXPECT_TRUE(parsed.ids.empty());
  EXPECT_TRUE(parsed.values.empty());
  EXPECT_EQ(parsed.interval, -5);
}

TEST(Message, TruncatedBufferRejected) {
  auto wire = serialize(sample_message());
  wire.resize(wire.size() - 3);
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, TrailingBytesRejected) {
  auto wire = serialize(sample_message());
  wire.push_back(std::byte{0});
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, UnknownTypeRejected) {
  auto wire = serialize(sample_message());
  wire[0] = std::byte{9};
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, HeaderOnlySizeIs25Bytes) {
  Message msg;
  EXPECT_EQ(msg.wire_bytes(), 25u);
}

TEST(Message, PayloadScalesWireSize) {
  Message msg;
  msg.ids.assign(10, 0);
  msg.values.assign(10, 0.0);
  EXPECT_EQ(msg.wire_bytes(), 25u + 10 * 4 + 10 * 8);
}

}  // namespace
}  // namespace spca
