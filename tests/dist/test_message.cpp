#include "dist/message.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace spca {
namespace {

Message sample_message() {
  Message msg;
  msg.type = MessageType::kSketchResponse;
  msg.from = 3;
  msg.to = kNocId;
  msg.interval = 12345;
  msg.ids = {7, 11, 13};
  msg.values = {1.5, -2.25, 1e300, 0.0};
  return msg;
}

TEST(Message, SerializeDeserializeRoundTrip) {
  const Message original = sample_message();
  const Message parsed = deserialize(serialize(original));
  EXPECT_EQ(parsed.type, original.type);
  EXPECT_EQ(parsed.from, original.from);
  EXPECT_EQ(parsed.to, original.to);
  EXPECT_EQ(parsed.interval, original.interval);
  EXPECT_EQ(parsed.ids, original.ids);
  EXPECT_EQ(parsed.values, original.values);
}

TEST(Message, WireBytesMatchesSerializedSize) {
  const Message msg = sample_message();
  EXPECT_EQ(serialize(msg).size(), msg.wire_bytes());
}

TEST(Message, EmptyPayloadsSupported) {
  Message msg;
  msg.type = MessageType::kSketchRequest;
  msg.interval = -5;
  const Message parsed = deserialize(serialize(msg));
  EXPECT_TRUE(parsed.ids.empty());
  EXPECT_TRUE(parsed.values.empty());
  EXPECT_EQ(parsed.interval, -5);
}

TEST(Message, TruncatedBufferRejected) {
  auto wire = serialize(sample_message());
  wire.resize(wire.size() - 3);
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, TrailingBytesRejected) {
  auto wire = serialize(sample_message());
  wire.push_back(std::byte{0});
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, UnknownTypeRejected) {
  auto wire = serialize(sample_message());
  wire[0] = std::byte{9};
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

// --- wire-hardening edge cases -------------------------------------------

// A length field implying more payload than the buffer holds must be
// rejected up front, before any allocation sized from it.
TEST(Message, OversizedIdCountRejected) {
  auto wire = serialize(sample_message());
  // id_count lives at offset 17 (type 1 + from 4 + to 4 + interval 8).
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(wire.data() + 17, &huge, sizeof(huge));
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, OversizedValueCountRejected) {
  auto wire = serialize(sample_message());
  const std::uint32_t huge = 0xffffffffu;  // * sizeof(double) wraps 32-bit
  std::memcpy(wire.data() + 21, &huge, sizeof(huge));
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

// Counts that individually fit but jointly exceed the payload.
TEST(Message, InconsistentCountsRejected) {
  Message msg = sample_message();
  auto wire = serialize(msg);
  const auto id_count = static_cast<std::uint32_t>(msg.ids.size() + 1);
  std::memcpy(wire.data() + 17, &id_count, sizeof(id_count));
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, HeaderShorterThanHeaderRejected) {
  const std::vector<std::byte> wire(10, std::byte{1});
  EXPECT_THROW((void)deserialize(wire), ProtocolError);
}

TEST(Message, SingleFlowSketchBlockRoundTrip) {
  // The smallest sketch response: one flow, one [mean, count, z...] block.
  Message msg;
  msg.type = MessageType::kSketchResponse;
  msg.from = 1;
  msg.to = kNocId;
  msg.interval = 0;
  msg.ids = {0};
  msg.values = {123.5, 17.0, -0.25, 0.75, 1.0};
  const Message parsed = deserialize(serialize(msg));
  EXPECT_EQ(parsed.ids, msg.ids);
  EXPECT_EQ(parsed.values, msg.values);
}

TEST(Message, MaxMessageTypeRoundTrip) {
  Message msg;
  msg.type = MessageType::kAlarm;  // the highest defined type value
  msg.from = kNocId;
  msg.to = kNocId;
  msg.interval = std::numeric_limits<std::int64_t>::max();
  const Message parsed = deserialize(serialize(msg));
  EXPECT_EQ(parsed.type, MessageType::kAlarm);
  EXPECT_EQ(parsed.interval, std::numeric_limits<std::int64_t>::max());
}

TEST(Message, ExtremeIntervalValuesRoundTrip) {
  for (const std::int64_t interval :
       {std::numeric_limits<std::int64_t>::min(), std::int64_t{-1},
        std::int64_t{0}, std::numeric_limits<std::int64_t>::max()}) {
    Message msg;
    msg.type = MessageType::kVolumeReport;
    msg.interval = interval;
    EXPECT_EQ(deserialize(serialize(msg)).interval, interval);
  }
}

TEST(Message, NonFiniteValuesSurviveTheWire) {
  Message msg = sample_message();
  msg.values = {std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::denorm_min()};
  const Message parsed = deserialize(serialize(msg));
  EXPECT_EQ(parsed.values, msg.values);
}

TEST(Message, HeaderOnlySizeIs25Bytes) {
  Message msg;
  EXPECT_EQ(msg.wire_bytes(), 25u);
}

TEST(Message, PayloadScalesWireSize) {
  Message msg;
  msg.ids.assign(10, 0);
  msg.values.assign(10, 0.0);
  EXPECT_EQ(msg.wire_bytes(), 25u + 10 * 4 + 10 * 8);
}

}  // namespace
}  // namespace spca
