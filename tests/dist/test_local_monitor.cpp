#include "dist/local_monitor.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dist/sim_network.hpp"
#include "sketch/flow_sketch.hpp"

namespace spca {
namespace {

ProjectionSource source() {
  return ProjectionSource(ProjectionKind::kGaussian, 5);
}

TEST(LocalMonitor, VolumeReportCarriesOwnedFlows) {
  SimNetwork net;
  LocalMonitor monitor(1, {3, 7}, 32, 0.1, 4, source());
  monitor.record(3, 100);
  monitor.record(3, 50);
  monitor.record(7, 42);
  monitor.end_interval(0, net);

  const auto mail = net.drain(kNocId);
  ASSERT_EQ(mail.size(), 1u);
  const Message& report = mail[0];
  EXPECT_EQ(report.type, MessageType::kVolumeReport);
  EXPECT_EQ(report.from, 1u);
  EXPECT_EQ(report.ids, (std::vector<std::uint32_t>{3, 7}));
  EXPECT_DOUBLE_EQ(report.values[0], 150.0);
  EXPECT_DOUBLE_EQ(report.values[1], 42.0);
}

TEST(LocalMonitor, CounterResetsBetweenIntervals) {
  SimNetwork net;
  LocalMonitor monitor(1, {0}, 32, 0.1, 4, source());
  monitor.record(0, 10);
  monitor.end_interval(0, net);
  monitor.end_interval(1, net);
  const auto mail = net.drain(kNocId);
  ASSERT_EQ(mail.size(), 2u);
  EXPECT_DOUBLE_EQ(mail[1].values[0], 0.0);
}

TEST(LocalMonitor, SketchResponseMatchesStandaloneFlowSketch) {
  SimNetwork net;
  const std::size_t l = 6;
  LocalMonitor monitor(2, {5}, 64, 0.05, l, source());
  FlowSketch expected(64, 0.05, l, source());
  for (std::int64_t t = 0; t < 40; ++t) {
    const double volume = 1000.0 + 13.0 * static_cast<double>(t % 7);
    monitor.ingest_volume(5, volume);
    monitor.end_interval(t, net);
    expected.add(t, volume);
  }
  (void)net.drain(kNocId);  // discard volume reports

  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = kNocId;
  request.to = 2;
  request.interval = 39;
  net.send(request);
  monitor.handle_mail(net);

  const auto mail = net.drain(kNocId);
  ASSERT_EQ(mail.size(), 1u);
  const Message& response = mail[0];
  EXPECT_EQ(response.type, MessageType::kSketchResponse);
  ASSERT_EQ(response.values.size(), l + 2);
  EXPECT_DOUBLE_EQ(response.values[0], expected.mean());
  EXPECT_DOUBLE_EQ(response.values[1],
                   static_cast<double>(expected.count()));
  const Vector z = expected.sketch();
  for (std::size_t k = 0; k < l; ++k) {
    EXPECT_DOUBLE_EQ(response.values[2 + k], z[k]);
  }
}

TEST(LocalMonitor, RejectsUnownedFlows) {
  LocalMonitor monitor(1, {2, 4}, 32, 0.1, 2, source());
  EXPECT_THROW(monitor.record(3, 10), ContractViolation);
  EXPECT_THROW(monitor.ingest_volume(0, 5.0), ContractViolation);
}

TEST(LocalMonitor, RejectsUnexpectedMessageTypes) {
  SimNetwork net;
  LocalMonitor monitor(1, {0}, 32, 0.1, 2, source());
  Message bogus;
  bogus.type = MessageType::kVolumeReport;
  bogus.from = kNocId;
  bogus.to = 1;
  net.send(bogus);
  EXPECT_THROW(monitor.handle_mail(net), ProtocolError);
}

TEST(LocalMonitor, CannotUseNocId) {
  EXPECT_THROW(LocalMonitor(kNocId, {0}, 32, 0.1, 2, source()),
               ContractViolation);
}

TEST(LocalMonitor, MemoryGrowsWithSketches) {
  SimNetwork net;
  LocalMonitor monitor(1, {0, 1, 2}, 64, 0.1, 8, source());
  const std::size_t before = monitor.memory_bytes();
  for (std::int64_t t = 0; t < 32; ++t) {
    monitor.ingest_volume(0, 100.0 + static_cast<double>(t));
    monitor.ingest_volume(1, 50.0);
    monitor.ingest_volume(2, 10.0 * static_cast<double>(t % 3));
    monitor.end_interval(t, net);
  }
  EXPECT_GT(monitor.memory_bytes(), before);
}

}  // namespace
}  // namespace spca
