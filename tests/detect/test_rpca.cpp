#include "detect/rpca.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

/// Stationary rank-2 background row: fixed mixing directions with fresh
/// random amplitudes every interval, plus unit noise. Window rows and
/// future rows are exchangeable, which is the regime the detector's
/// empirical inlier-quantile threshold is calibrated for.
Vector background_row(Xoshiro256& gen, std::size_t m) {
  const double c1 = 30.0 * standard_normal(gen);
  const double c2 = 20.0 * standard_normal(gen);
  Vector x(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double w = 2.0 * std::numbers::pi * static_cast<double>(j) /
                     static_cast<double>(m);
    x[j] = 100.0 + c1 * std::sin(w) + c2 * std::cos(w) + standard_normal(gen);
  }
  return x;
}

TEST(RpcaDecompose, ZeroMatrixSplitsTrivially) {
  const Matrix zero(6, 4);
  const RpcaSplit split = rpca_decompose(zero);
  EXPECT_EQ(frobenius_norm(split.low_rank), 0.0);
  EXPECT_EQ(frobenius_norm(split.sparse), 0.0);
}

TEST(RpcaDecompose, RecoversLowRankPlusSparse) {
  // M = L0 + S0 with L0 rank 1 and S0 a handful of large spikes. PCP must
  // put the spikes into S, not tilt L towards them.
  const std::size_t n = 24;
  const std::size_t m = 12;
  Matrix l0(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = 1.0 + 0.05 * static_cast<double>(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double v = 10.0 + static_cast<double>(j);
      l0(i, j) = u * v;
    }
  }
  Matrix observed = l0;
  const std::size_t spike_rows[] = {5, 13, 20};
  for (const std::size_t r : spike_rows) {
    observed(r, (r * 3) % m) += 200.0;
  }

  const RpcaSplit split = rpca_decompose(observed, 0.0, 60, 1e-7);
  Matrix l_err = split.low_rank;
  l_err -= l0;
  EXPECT_LT(frobenius_norm(l_err) / frobenius_norm(l0), 0.05);
  // The sparse part concentrates on the spiked entries.
  for (const std::size_t r : spike_rows) {
    EXPECT_GT(split.sparse(r, (r * 3) % m), 100.0) << "row " << r;
  }
  // The split reconstructs the observation.
  Matrix recon = split.low_rank;
  recon += split.sparse;
  recon -= observed;
  EXPECT_LT(frobenius_norm(recon) / frobenius_norm(observed), 1e-4);
}

TEST(RpcaDetector, WarmsUpThenFlagsInjectedSpike) {
  const std::size_t m = 10;
  RpcaDetectorConfig config;
  config.window = 24;
  config.recompute_period = 6;
  config.alpha = 0.02;
  config.max_iters = 20;
  config.tol = 1e-5;
  RpcaDetector detector(m, config);

  Xoshiro256 gen(77);
  std::int64_t t = 0;
  // Warm-up: no verdicts until the window fills.
  for (; t < static_cast<std::int64_t>(config.window) - 1; ++t) {
    EXPECT_FALSE(detector.observe(t, background_row(gen, m)).ready);
  }

  // Steady state: the empirical threshold keeps ordinary rows mostly quiet.
  std::size_t alarms = 0;
  const std::int64_t steady = 40;
  for (std::int64_t k = 0; k < steady; ++k, ++t) {
    const Detection det = detector.observe(t, background_row(gen, m));
    EXPECT_TRUE(det.ready);
    if (det.alarm) ++alarms;
  }
  EXPECT_LT(alarms, static_cast<std::size_t>(steady / 4));
  EXPECT_GE(detector.refits(), 2u);

  // A broad additive spike far outside the background subspace must alarm.
  // The even-coordinate pattern is orthogonal to both mixing directions.
  Vector spike = background_row(gen, m);
  for (std::size_t j = 0; j < m; j += 2) spike[j] += 80.0;
  const Detection det = detector.observe(t, spike);
  EXPECT_TRUE(det.ready);
  EXPECT_TRUE(det.alarm);
  EXPECT_GT(det.distance, det.threshold);
}

}  // namespace
}  // namespace spca
