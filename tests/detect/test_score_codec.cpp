#include "detect/score_codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "dist/aggregate.hpp"

namespace spca {
namespace {

TEST(ScoreCodec, ReportRoundTrip) {
  FirstLineScore score;
  score.entropy_z = -2.25;
  score.rate_z = 4.5;
  const Message msg = make_score_report(3, kNocId, 17, score);
  EXPECT_EQ(msg.type, MessageType::kScoreReport);
  EXPECT_EQ(msg.from, 3);
  EXPECT_EQ(msg.to, kNocId);
  EXPECT_EQ(msg.interval, 17);

  const std::vector<MonitorScore> decoded = parse_score_report(msg);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].monitor, 3);
  EXPECT_EQ(decoded[0].entropy_z, -2.25);
  EXPECT_EQ(decoded[0].rate_z, 4.5);
}

TEST(ScoreCodec, RejectsMalformedPayloads) {
  Message wrong_type = make_score_report(1, kNocId, 0, {});
  wrong_type.type = MessageType::kVolumeReport;
  EXPECT_THROW((void)parse_score_report(wrong_type), ProtocolError);

  Message odd_values = make_score_report(1, kNocId, 0, {});
  odd_values.values.pop_back();  // 1 value for 1 id: not score-shaped
  EXPECT_THROW((void)parse_score_report(odd_values), ProtocolError);

  Message no_ids = make_score_report(1, kNocId, 0, {});
  no_ids.ids.clear();
  EXPECT_THROW((void)parse_score_report(no_ids), ProtocolError);
}

TEST(ScoreCodec, RegionalMergeSurvivesAggregateWrap) {
  // A regional NOC merges its shard's score reports into one kAggregate;
  // the root must recognize the shape and decode every monitor back out in
  // ascending monitor order, bit-exactly.
  constexpr std::size_t kSketchRows = 8;
  const NodeId region = region_node_id(0);
  std::vector<Message> parts;
  parts.push_back(make_score_report(
      2, region, 9, FirstLineScore{.entropy_z = 0.5, .rate_z = -1.5}));
  parts.push_back(make_score_report(
      1, region, 9, FirstLineScore{.entropy_z = -3.75, .rate_z = 2.125}));

  const Message agg = merge_aggregate(std::move(parts), region, kNocId);
  EXPECT_EQ(agg.type, MessageType::kAggregate);
  EXPECT_TRUE(aggregate_shape_is(agg, MessageType::kScoreReport, kSketchRows));
  EXPECT_FALSE(aggregate_shape_is(agg, MessageType::kVolumeReport,
                                  kSketchRows));
  EXPECT_FALSE(aggregate_shape_is(agg, MessageType::kSketchResponse,
                                  kSketchRows));

  const Message unwrapped =
      unwrap_aggregate(agg, MessageType::kScoreReport, kSketchRows);
  const std::vector<MonitorScore> decoded = parse_score_report(unwrapped);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].monitor, 1);
  EXPECT_EQ(decoded[0].entropy_z, -3.75);
  EXPECT_EQ(decoded[0].rate_z, 2.125);
  EXPECT_EQ(decoded[1].monitor, 2);
  EXPECT_EQ(decoded[1].entropy_z, 0.5);
  EXPECT_EQ(decoded[1].rate_z, -1.5);
}

}  // namespace
}  // namespace spca
