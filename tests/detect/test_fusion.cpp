#include "detect/fusion.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace spca {
namespace {

Detection sketch_detection(bool alarm, double distance, double threshold) {
  Detection det;
  det.ready = true;
  det.alarm = alarm;
  det.distance = distance;
  det.threshold = threshold;
  return det;
}

TEST(FusionRuleParsing, RoundTripsAndRejects) {
  for (const char* name : {"off", "any", "all", "weighted"}) {
    EXPECT_EQ(to_string(parse_fusion_rule(name)), name);
  }
  EXPECT_THROW((void)parse_fusion_rule("sometimes"), InputError);
  EXPECT_THROW((void)parse_fusion_rule(""), InputError);
}

TEST(FusionEngine, AbstainsWhileSketchWarmsUp) {
  FusionEngine engine{FusionConfig{}};
  const std::vector<MonitorScore> scores{
      {.monitor = 1, .entropy_z = 10.0, .rate_z = 10.0}};
  const FusedDecision d = engine.fuse(0, Detection{}, scores);
  EXPECT_FALSE(d.ready);
  EXPECT_FALSE(d.alarm);
}

TEST(FusionEngine, AnyRuleTripsOnFirstLineAlone) {
  FusionConfig config;
  config.rule = FusionRule::kAny;
  config.score_threshold = 3.0;
  FusionEngine engine(config);
  // Sketch quiet, monitor 2 trips on entropy: the OR rule must alarm and
  // name the tripping monitor.
  const std::vector<MonitorScore> scores{
      {.monitor = 3, .entropy_z = 0.5, .rate_z = 0.5},
      {.monitor = 2, .entropy_z = -4.0, .rate_z = 0.0}};
  const FusedDecision d =
      engine.fuse(5, sketch_detection(false, 0.2, 1.0), scores);
  EXPECT_TRUE(d.ready);
  EXPECT_TRUE(d.alarm);
  EXPECT_GE(d.statistic, 1.0);
  EXPECT_EQ(d.monitors, 2u);
  ASSERT_EQ(d.tripped_monitors.size(), 1u);
  EXPECT_EQ(d.tripped_monitors[0], 2);
}

TEST(FusionEngine, AnyRuleTripsOnSketchAlone) {
  FusionConfig config;
  config.rule = FusionRule::kAny;
  FusionEngine engine(config);
  const std::vector<MonitorScore> quiet{
      {.monitor = 1, .entropy_z = 0.1, .rate_z = 0.1}};
  const FusedDecision d =
      engine.fuse(6, sketch_detection(true, 2.0, 1.0), quiet);
  EXPECT_TRUE(d.alarm);
  EXPECT_TRUE(d.tripped_monitors.empty());
}

TEST(FusionEngine, AllRuleNeedsCorroboration) {
  FusionConfig config;
  config.rule = FusionRule::kAll;
  config.score_threshold = 3.0;
  FusionEngine engine(config);
  const std::vector<MonitorScore> quiet{
      {.monitor = 1, .entropy_z = 0.1, .rate_z = 0.1}};
  const std::vector<MonitorScore> loud{
      {.monitor = 1, .entropy_z = 0.0, .rate_z = 5.0}};
  // Sketch alarm without a first-line trip: vetoed.
  EXPECT_FALSE(engine.fuse(7, sketch_detection(true, 2.0, 1.0), quiet).alarm);
  // First-line trip without a sketch alarm: vetoed.
  EXPECT_FALSE(engine.fuse(8, sketch_detection(false, 0.2, 1.0), loud).alarm);
  // Both: alarm.
  EXPECT_TRUE(engine.fuse(9, sketch_detection(true, 2.0, 1.0), loud).alarm);
}

TEST(FusionEngine, WeightedVoteCrossesOneAtTheBoundary) {
  FusionConfig config;
  config.rule = FusionRule::kWeighted;
  config.score_threshold = 3.0;
  config.weight_spca = 0.6;
  config.weight_entropy = 0.2;
  config.weight_rate = 0.2;
  FusionEngine engine(config);
  // Every component exactly at its own trip boundary: the vote is the
  // weight sum, here 1.0 — not strictly above, so no alarm.
  const std::vector<MonitorScore> boundary{
      {.monitor = 1, .entropy_z = 3.0, .rate_z = 3.0}};
  const FusedDecision at =
      engine.fuse(10, sketch_detection(false, 1.0, 1.0), boundary);
  EXPECT_NEAR(at.statistic, 1.0, 1e-12);
  EXPECT_FALSE(at.alarm);
  // Push one component past its boundary and the vote crosses 1.
  const std::vector<MonitorScore> over{
      {.monitor = 1, .entropy_z = 3.0, .rate_z = 6.0}};
  const FusedDecision above =
      engine.fuse(11, sketch_detection(false, 1.0, 1.0), over);
  EXPECT_GT(above.statistic, 1.0);
  EXPECT_TRUE(above.alarm);
}

TEST(FusionEngine, StatisticIsOrderInsensitive) {
  FusionEngine engine{FusionConfig{}};
  const Detection det = sketch_detection(false, 0.4, 1.0);
  const std::vector<MonitorScore> forward{
      {.monitor = 1, .entropy_z = 1.0, .rate_z = -2.0},
      {.monitor = 2, .entropy_z = -3.5, .rate_z = 0.25}};
  const std::vector<MonitorScore> reversed{forward[1], forward[0]};
  const FusedDecision a = engine.fuse(12, det, forward);
  const FusedDecision b = engine.fuse(13, det, reversed);
  EXPECT_EQ(a.statistic, b.statistic);
  EXPECT_EQ(a.alarm, b.alarm);
  EXPECT_EQ(a.tripped_monitors, b.tripped_monitors);
}

}  // namespace
}  // namespace spca
