#include "synth/adversarial.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "traffic/topology.hpp"

namespace spca {
namespace {

AdversarialConfig small_config() {
  AdversarialConfig config;
  config.window = 16;
  config.eval_intervals = 48;
  return config;
}

TEST(AdversarialCatalog, BuildsEveryScenarioInCanonicalOrder) {
  const Topology topo = abilene11_topology();
  const auto catalog = make_adversarial_catalog(topo, small_config());
  const auto names = adversarial_scenario_names();
  ASSERT_EQ(catalog.size(), names.size());
  ASSERT_GE(catalog.size(), 4u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, names[i]);
    EXPECT_FALSE(catalog[i].description.empty());
  }
}

TEST(AdversarialCatalog, ScenariosCarryGroundTruthWithinBounds) {
  const Topology topo = abilene11_topology();
  const AdversarialConfig config = small_config();
  const auto total = static_cast<std::int64_t>(config.total_intervals());
  for (const AdversarialScenario& s : make_adversarial_catalog(topo,
                                                               config)) {
    EXPECT_EQ(s.trace.num_intervals(), config.total_intervals()) << s.name;
    EXPECT_EQ(s.trace.num_flows(),
              static_cast<std::size_t>(topo.num_od_flows()))
        << s.name;
    ASSERT_FALSE(s.trace.events().empty()) << s.name;
    for (const AnomalyEvent& e : s.trace.events()) {
      EXPECT_GE(e.start, static_cast<std::int64_t>(config.window)) << s.name;
      EXPECT_LE(e.start, e.end) << s.name;
      EXPECT_LT(e.end, total) << s.name;
      EXPECT_FALSE(e.flows.empty()) << s.name;
      for (const std::uint32_t f : e.flows) {
        EXPECT_LT(f, s.trace.num_flows()) << s.name;
      }
    }
    // Volumes stay finite and nonnegative under every manipulation.
    for (std::size_t t = 0; t < s.trace.num_intervals(); t += 7) {
      for (std::size_t f = 0; f < s.trace.num_flows(); f += 11) {
        const double v = s.trace.volumes()(t, f);
        EXPECT_TRUE(std::isfinite(v)) << s.name;
        EXPECT_GE(v, 0.0) << s.name;
      }
    }
  }
}

TEST(AdversarialCatalog, ScenariosAreDeterministic) {
  const Topology topo = abilene_topology();
  const AdversarialConfig config = small_config();
  const AdversarialScenario a =
      make_adversarial_scenario("stealth-probe", topo, config);
  const AdversarialScenario b =
      make_adversarial_scenario("stealth-probe", topo, config);
  ASSERT_EQ(a.trace.num_intervals(), b.trace.num_intervals());
  const Matrix& va = a.trace.volumes();
  const Matrix& vb = b.trace.volumes();
  ASSERT_EQ(va.rows(), vb.rows());
  ASSERT_EQ(va.cols(), vb.cols());
  for (std::size_t t = 0; t < va.rows(); ++t) {
    for (std::size_t f = 0; f < va.cols(); ++f) {
      ASSERT_EQ(va(t, f), vb(t, f)) << "t=" << t << " f=" << f;
    }
  }
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
}

TEST(AdversarialCatalog, StealthProbeTargetsOneMonitorSlice) {
  // The stealth scenario bumps only flows owned by monitor 1 (round-robin
  // ownership j % k == 0), the blind spot it exists to probe.
  const Topology topo = abilene_topology();
  const AdversarialConfig config = small_config();
  const AdversarialScenario s =
      make_adversarial_scenario("stealth-probe", topo, config);
  for (const AnomalyEvent& e : s.trace.events()) {
    for (const std::uint32_t f : e.flows) {
      EXPECT_EQ(f % config.monitors, 0u);
    }
  }
}

TEST(AdversarialCatalog, UnknownScenarioNameIsRejected) {
  const Topology topo = abilene_topology();
  EXPECT_THROW(
      (void)make_adversarial_scenario("not-a-scenario", topo, small_config()),
      InputError);
}

}  // namespace
}  // namespace spca
