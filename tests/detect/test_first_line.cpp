#include "detect/first_line.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/serialize.hpp"

namespace spca {
namespace {

std::vector<double> flat_interval(std::size_t w, double level) {
  return std::vector<double>(w, level);
}

TEST(FirstLineScorer, WarmupEmitsZeroScores) {
  FirstLineConfig config;
  config.warmup = 6;
  FirstLineScorer scorer(config);
  for (std::uint64_t t = 0; t < config.warmup; ++t) {
    const FirstLineScore s = scorer.observe(flat_interval(8, 100.0 + t));
    EXPECT_EQ(s.entropy_z, 0.0) << "interval " << t;
    EXPECT_EQ(s.rate_z, 0.0) << "interval " << t;
  }
  EXPECT_EQ(scorer.observed(), config.warmup);
}

TEST(FirstLineScorer, RateStepAfterWarmupTrips) {
  FirstLineConfig config;
  config.warmup = 8;
  FirstLineScorer scorer(config);
  // A gently wiggling baseline so the EWMA variance is positive but small.
  for (int t = 0; t < 40; ++t) {
    (void)scorer.observe(flat_interval(8, 100.0 + (t % 2)));
  }
  // A 5x aggregate-rate step must z-score far above any sane trip threshold.
  const FirstLineScore s = scorer.observe(flat_interval(8, 500.0));
  EXPECT_GT(s.rate_z, 5.0);
  EXPECT_EQ(s, scorer.last());
}

TEST(FirstLineScorer, ConcentrationMovesEntropyScore) {
  FirstLineConfig config;
  config.warmup = 8;
  FirstLineScorer scorer(config);
  // Flat intervals have exactly log2(16) bits of entropy regardless of
  // level, so the entropy stream is constant; run long enough for the
  // EWMA variance left over from the cold start to decay away.
  for (int t = 0; t < 120; ++t) {
    (void)scorer.observe(flat_interval(16, 50.0 + (t % 2)));
  }
  // Concentrate the same total volume on one flow: the rate baseline barely
  // moves but the entropy of the owned-flow distribution collapses.
  std::vector<double> spiked(16, 1.0);
  spiked[3] = 50.0 * 16.0 - 15.0;
  const FirstLineScore s = scorer.observe(spiked);
  EXPECT_GT(std::abs(s.entropy_z), 5.0);
}

TEST(FirstLineScorer, ScoresAgainstPreUpdateBaseline) {
  // West-style ordering: the first post-warmup interval is scored against
  // baselines that do NOT yet contain it, so two scorers fed identical
  // prefixes and then different values diverge immediately.
  FirstLineConfig config;
  config.warmup = 4;
  FirstLineScorer a(config);
  FirstLineScorer b(config);
  for (int t = 0; t < 20; ++t) {
    (void)a.observe(flat_interval(4, 10.0 + (t % 2)));
    (void)b.observe(flat_interval(4, 10.0 + (t % 2)));
  }
  EXPECT_EQ(a, b);
  const FirstLineScore sa = a.observe(flat_interval(4, 10.0));
  const FirstLineScore sb = b.observe(flat_interval(4, 80.0));
  EXPECT_LT(std::abs(sa.rate_z), std::abs(sb.rate_z));
}

TEST(FirstLineScorer, SaveRestoreRoundTripContinuesBitIdentically) {
  FirstLineConfig config;
  config.smoothing = 0.07;
  config.warmup = 5;
  FirstLineScorer original(config);
  for (int t = 0; t < 17; ++t) {
    (void)original.observe(flat_interval(6, 30.0 + 3.0 * (t % 3)));
  }

  ByteWriter out;
  original.save(out);
  const std::vector<std::byte> blob = std::move(out).take();
  ByteReader in(blob);
  FirstLineScorer restored = FirstLineScorer::restore(in);
  EXPECT_EQ(original, restored);

  // The restored scorer must track the original exactly on the tail.
  for (int t = 0; t < 10; ++t) {
    const std::vector<double> x = flat_interval(6, 28.0 + 5.0 * (t % 2));
    const FirstLineScore sa = original.observe(x);
    const FirstLineScore sb = restored.observe(x);
    EXPECT_EQ(sa, sb) << "tail interval " << t;
  }
}

}  // namespace
}  // namespace spca
