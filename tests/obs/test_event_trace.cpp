// The detection-event ring buffer and its JSON-lines export format.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "obs/event_trace.hpp"

namespace spca {
namespace {

DetectionEvent make_event(std::int64_t t) {
  DetectionEvent e;
  e.detector = "sketch-pca";
  e.interval = t;
  e.distance_squared = 1.5e9 + static_cast<double>(t);
  e.threshold_squared = 2.25e9;
  e.rank = 6;
  e.refreshed = (t % 3) == 0;
  e.alarm = (t % 2) == 0;
  return e;
}

TEST(EventTrace, KeepsInsertionOrderBelowCapacity) {
  EventTrace trace(8);
  for (std::int64_t t = 0; t < 5; ++t) trace.record(make_event(t));
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(trace.recorded(), 5u);
  for (std::int64_t t = 0; t < 5; ++t) {
    EXPECT_EQ(events[static_cast<std::size_t>(t)], make_event(t));
  }
}

TEST(EventTrace, RingOverwritesOldestFirst) {
  EventTrace trace(4);
  for (std::int64_t t = 0; t < 10; ++t) trace.record(make_event(t));
  EXPECT_EQ(trace.recorded(), 10u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, oldest first: intervals 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].interval, static_cast<std::int64_t>(6 + i));
  }
}

TEST(EventTrace, ClearEmptiesBufferAndTotal) {
  EventTrace trace(4);
  trace.record(make_event(1));
  trace.clear();
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
  EXPECT_EQ(trace.to_jsonl(), "");
}

TEST(EventTrace, JsonObjectHasTheDocumentedKeys) {
  const std::string json = to_json(make_event(7));
  for (const char* key : {"\"detector\"", "\"interval\"", "\"distance2\"",
                          "\"threshold2\"", "\"rank\"", "\"refreshed\"",
                          "\"alarm\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(EventTrace, JsonlRoundTripIsExact) {
  EventTrace trace(64);
  for (std::int64_t t = 0; t < 20; ++t) trace.record(make_event(t));
  // Doubles must survive the text round trip bit-for-bit (max_digits10).
  DetectionEvent awkward;
  awkward.detector = "noc";
  awkward.interval = -3;
  awkward.distance_squared = 0.1;  // not exactly representable
  awkward.threshold_squared = 998151833861420.25;
  awkward.rank = 1;
  trace.record(awkward);

  const auto parsed = EventTrace::parse_jsonl(trace.to_jsonl());
  const auto original = trace.snapshot();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], original[i]) << "event " << i;
  }
}

TEST(EventTrace, ParseSkipsBlankLines) {
  const std::string text = "\n" + to_json(make_event(1)) + "\n   \n" +
                           to_json(make_event(2)) + "\n\n";
  const auto events = EventTrace::parse_jsonl(text);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], make_event(1));
  EXPECT_EQ(events[1], make_event(2));
}

TEST(EventTrace, ParseRejectsMalformedLines) {
  EXPECT_THROW((void)EventTrace::parse_jsonl("not json"), InputError);
  EXPECT_THROW((void)EventTrace::parse_jsonl("{\"detector\":\"x\""),
               InputError);
  EXPECT_THROW((void)EventTrace::parse_jsonl("{\"interval\":abc}"),
               InputError);
  EXPECT_THROW((void)EventTrace::parse_jsonl("{\"unknown\":1}"), InputError);
  EXPECT_THROW(
      (void)EventTrace::parse_jsonl(to_json(make_event(1)) + " trailing"),
      InputError);
}

TEST(EventTrace, DetectorNamesWithQuotesRoundTrip) {
  DetectionEvent e = make_event(0);
  e.detector = "odd\"name\\with escapes";
  EventTrace trace(2);
  trace.record(e);
  const auto parsed = EventTrace::parse_jsonl(trace.to_jsonl());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].detector, e.detector);
}

TEST(EventTrace, GlobalTraceIsASingleton) {
  EXPECT_EQ(&EventTrace::global(), &EventTrace::global());
}

}  // namespace
}  // namespace spca
