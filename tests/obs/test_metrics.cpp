// Instrument semantics of the obs layer: counter/gauge/histogram behavior,
// quantile accuracy on known distributions, thread-safety of the hot-path
// operations, and registry rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace spca {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_EQ(g.value(), 2.25);
  g.set(7.0);  // last write wins over accumulated state
  EXPECT_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, TracksExactCountSumMinMax) {
  Histogram h;
  h.record(0.010);
  h.record(0.002);
  h.record(0.500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 0.512, 1e-12);
  EXPECT_NEAR(h.mean(), 0.512 / 3.0, 1e-12);
  EXPECT_EQ(h.min(), 0.002);
  EXPECT_EQ(h.max(), 0.500);
}

TEST(Histogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (double v = Histogram::kMinTracked; v < 1.0; v *= 1.3) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
  // 8 buckets per octave: doubling a value advances the index by 8.
  EXPECT_EQ(Histogram::bucket_index(2e-3),
            Histogram::bucket_index(1e-3) + Histogram::kBucketsPerOctave);
}

TEST(Histogram, QuantilesOfUniformDistributionWithinBucketResolution) {
  Histogram h;
  // 1 ms .. 1000 ms uniformly: the q-quantile is ~q * 1s.
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double expected = q * 1.0;
    // Geometric buckets are ~9% wide; allow one full bucket of slack.
    EXPECT_NEAR(h.quantile(q), expected, expected * 0.10) << "q=" << q;
  }
  // Extreme quantiles clamp to the exact observed range.
  EXPECT_EQ(h.quantile(0.0), 1e-3);
  EXPECT_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, QuantileOfPointMassIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(0.125);
  // All mass in one bucket, clamped to [min, max] = [0.125, 0.125].
  EXPECT_EQ(h.quantile(0.5), 0.125);
  EXPECT_EQ(h.quantile(0.99), 0.125);
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.record(0.25);
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 0.25);
}

TEST(MetricsRegistry, ResolvingTheSameNameYieldsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(b.value(), 5u);
  // Distinct kinds with the same name are distinct instruments.
  Gauge& g = registry.gauge("x.count");
  g.set(1.0);
  EXPECT_EQ(a.value(), 5u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  Gauge& g = registry.gauge("level");
  Histogram& h = registry.histogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
        h.record(1e-3);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), kThreads * kPerThread * 1e-3, 1e-6);
  EXPECT_EQ(h.min(), 1e-3);
  EXPECT_EQ(h.max(), 1e-3);
}

TEST(MetricsRegistry, RenderTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("z.total").inc(3);
  registry.gauge("a.bytes").set(128.0);
  registry.histogram("m.seconds").record(0.5);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("z.total"), std::string::npos);
  EXPECT_NE(text.find("a.bytes"), std::string::npos);
  EXPECT_NE(text.find("m.seconds"), std::string::npos);
}

TEST(MetricsRegistry, RenderJsonCarriesValuesAndQuantiles) {
  MetricsRegistry registry;
  registry.counter("pulls").inc(7);
  registry.gauge("bytes").set(42.5);
  for (int i = 0; i < 10; ++i) registry.histogram("svd").record(0.25);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"pulls\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":42.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"svd\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesWithoutInvalidatingReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("n");
  Histogram& h = registry.histogram("t");
  c.inc(9);
  h.record(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(registry.counter("n").value(), 1u);
}

TEST(MetricsRegistry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(MetricsRegistry, EmptyHistogramRendersNullStatsInJson) {
  MetricsRegistry registry;
  (void)registry.histogram("never.recorded");
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":null"), std::string::npos);
  EXPECT_NE(json.find("\"min\":null"), std::string::npos);
  EXPECT_NE(json.find("\"max\":null"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":null"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":null"), std::string::npos);
  // A single observation flips every stat to a real number.
  registry.histogram("never.recorded").record(0.5);
  const std::string after = registry.render_json();
  EXPECT_EQ(after.find("null"), std::string::npos);
}

TEST(MetricsRegistry, RenderJsonEscapesMetricNames) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\nnasties").inc();
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnasties"), std::string::npos);
  // The rendered text must not contain a raw newline inside the name.
  EXPECT_EQ(json.find("with\nnasties"), std::string::npos);
}

TEST(MetricsRegistry, RenderPrometheusMapsNamesAndEmitsTypes) {
  MetricsRegistry registry;
  registry.counter("spca.noc.sketch_pulls").inc(4);
  registry.gauge("spca.sketch.memory_bytes").set(2048.0);
  for (int i = 0; i < 8; ++i) {
    registry.histogram("spca.noc.detect_seconds").record(0.25);
  }
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE spca_noc_sketch_pulls counter"),
            std::string::npos);
  EXPECT_NE(text.find("spca_noc_sketch_pulls 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spca_sketch_memory_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("spca_sketch_memory_bytes 2048"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spca_noc_detect_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("spca_noc_detect_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("spca_noc_detect_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("spca_noc_detect_seconds_count 8"), std::string::npos);
  // Documented names carry their catalog help line.
  EXPECT_NE(text.find("# HELP spca_noc_sketch_pulls"), std::string::npos);
}

TEST(MetricsRegistry, RenderPrometheusSkipsQuantilesOfEmptyHistograms) {
  MetricsRegistry registry;
  (void)registry.histogram("spca.noc.refit_seconds");
  const std::string text = registry.render_prometheus();
  EXPECT_EQ(text.find("quantile"), std::string::npos);
  // _sum and _count still appear so the series exists from first scrape.
  EXPECT_NE(text.find("spca_noc_refit_seconds_sum 0"), std::string::npos);
  EXPECT_NE(text.find("spca_noc_refit_seconds_count 0"), std::string::npos);
}

TEST(MetricsRegistry, NameAccessorsReportRegisteredInstrumentsSorted) {
  MetricsRegistry registry;
  (void)registry.counter("b.count");
  (void)registry.counter("a.count");
  (void)registry.gauge("g.value");
  (void)registry.histogram("h.seconds");
  const std::vector<std::string> counters = registry.counter_names();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0], "a.count");
  EXPECT_EQ(counters[1], "b.count");
  EXPECT_EQ(registry.gauge_names(),
            std::vector<std::string>{std::string("g.value")});
  EXPECT_EQ(registry.histogram_names(),
            std::vector<std::string>{std::string("h.seconds")});
}

TEST(MetricsRegistry, ConcurrentWritersAndRenderingReaderAreRaceFree) {
  // Exercised under TSan in CI: writers hammer all three instrument kinds
  // (and keep registering fresh names) while a reader renders every
  // exposition format — the documented "mutex guards registration and
  // rendering only" contract must hold under real contention.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      Counter& c = registry.counter("stress.count");
      Gauge& g = registry.gauge("stress.level");
      Histogram& h = registry.histogram("stress.seconds");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
        h.record(1e-3 * (1 + (i % 7)));
        if (i % 512 == 0) {
          (void)registry.counter("stress.dynamic." + std::to_string(w) + "." +
                                 std::to_string(i));
        }
      }
    });
  }
  std::thread reader([&registry, &stop] {
    std::size_t renders = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = registry.render_json();
      const std::string prom = registry.render_prometheus();
      const std::string text = registry.render_text();
      EXPECT_FALSE(json.empty());
      EXPECT_FALSE(prom.empty());
      EXPECT_FALSE(text.empty());
      ++renders;
    }
    EXPECT_GT(renders, 0u);
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(registry.counter("stress.count").value(),
            static_cast<std::uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(registry.histogram("stress.seconds").count(),
            static_cast<std::uint64_t>(kWriters) * kPerThread);
}

}  // namespace
}  // namespace spca
