// Live-status endpoint behavior over real loopback sockets: routing,
// content types, health transitions, HEAD handling, request caps, and both
// drive modes (owner-polled and background thread). The HTTP client is the
// net-layer TcpStream — the test binary links the umbrella library, so the
// layering restriction on src/obs itself does not apply here.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>

#include "common/error.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"
#include "obs/status_server.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

/// Sends one HTTP request and returns the full raw response (the server
/// closes the connection after responding, HTTP/1.0 style). `server` is
/// polled from this thread, so no background thread is needed.
std::string polled_request(StatusServer& server, const std::string& request) {
  TcpStream stream = TcpStream::connect(
      "127.0.0.1", static_cast<std::uint16_t>(server.port()), 2000ms);
  stream.send_all(reinterpret_cast<const std::byte*>(request.data()),
                  request.size(), 2000ms);
  std::string response;
  std::byte buf[4096];
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    server.poll();
    const std::ptrdiff_t n = stream.recv_some(buf, sizeof(buf), 10ms);
    if (n == 0) return response;  // orderly close: response complete
    if (n > 0) {
      response.append(reinterpret_cast<const char*>(buf),
                      static_cast<std::size_t>(n));
    }
  }
  ADD_FAILURE() << "no complete response within the deadline";
  return response;
}

std::string get(StatusServer& server, const std::string& path) {
  return polled_request(server, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(StatusServer, BindsAnEphemeralPortAndReportsIt) {
  StatusServer server(StatusServerConfig{});
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(StatusServer, RejectsAnUnbindableAddress) {
  StatusServerConfig config;
  config.host = "not-an-address";
  EXPECT_THROW((void)StatusServer(std::move(config)), InputError);
}

TEST(StatusServer, ServesTheRegistryJson) {
  MetricsRegistry::global().counter("spca.test.status_json").inc(3);
  StatusServer server(StatusServerConfig{});
  const std::string response = get(server, "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(body_of(response).find("\"spca.test.status_json\":3"),
            std::string::npos);
}

TEST(StatusServer, ServesThePrometheusExposition) {
  MetricsRegistry::global().counter("spca.test.status_prom").inc();
  StatusServer server(StatusServerConfig{});
  const std::string response = get(server, "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // Dots map to underscores in the exposition format.
  EXPECT_NE(body_of(response).find("spca_test_status_prom"),
            std::string::npos);
}

TEST(StatusServer, ServesTheGlobalSpanLogAsJsonl) {
  {
    const ScopedSpan span("status_test", kStageDecision, 77);
  }
  StatusServer server(StatusServerConfig{});
  const std::string body = body_of(get(server, "/spans"));
  EXPECT_NE(body.find("\"node\":\"status_test\""), std::string::npos);
  EXPECT_NE(body.find("\"interval\":77"), std::string::npos);
}

TEST(StatusServer, HealthzFollowsTheOwnerCallback) {
  bool healthy = true;
  StatusServerConfig config;
  config.healthy = [&healthy] { return healthy; };
  StatusServer server(std::move(config));
  std::string response = get(server, "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(body_of(response).find("\"healthy\":true"), std::string::npos);
  healthy = false;
  response = get(server, "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(body_of(response).find("\"healthy\":false"), std::string::npos);
}

TEST(StatusServer, HealthzUsesTheCustomBodyWhenProvided) {
  StatusServerConfig config;
  config.health_body = [] {
    return std::string("{\"healthy\":true,\"role\":\"noc\",\"interval\":12}");
  };
  StatusServer server(std::move(config));
  EXPECT_NE(body_of(get(server, "/healthz")).find("\"role\":\"noc\""),
            std::string::npos);
}

TEST(StatusServer, UnknownPathIs404AndCountsAnHttpError) {
  StatusServer server(StatusServerConfig{});
  Counter& errors =
      MetricsRegistry::global().counter("spca.status.http_errors");
  Counter& requests = MetricsRegistry::global().counter("spca.status.requests");
  const std::uint64_t errors_before = errors.value();
  const std::uint64_t requests_before = requests.value();
  const std::string response = get(server, "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_EQ(errors.value(), errors_before + 1);
  EXPECT_EQ(requests.value(), requests_before + 1);
}

TEST(StatusServer, NonGetMethodsAre405) {
  StatusServer server(StatusServerConfig{});
  const std::string response =
      polled_request(server, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos);
}

TEST(StatusServer, HeadReturnsHeadersWithoutABody) {
  StatusServer server(StatusServerConfig{});
  const std::string response =
      polled_request(server, "HEAD /metrics.json HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(body_of(response), "");
}

TEST(StatusServer, OversizedRequestHeadIsRejectedWith431) {
  StatusServerConfig config;
  config.max_request_bytes = 64;
  StatusServer server(std::move(config));
  const std::string huge(256, 'x');
  const std::string response =
      polled_request(server, "GET /" + huge + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 431"), std::string::npos);
}

TEST(StatusServer, BackgroundModeServesWithoutOwnerPolling) {
  StatusServer server(StatusServerConfig{});
  server.serve_in_background(1ms);
  TcpStream stream = TcpStream::connect(
      "127.0.0.1", static_cast<std::uint16_t>(server.port()), 2000ms);
  const std::string request = "GET /healthz HTTP/1.0\r\n\r\n";
  stream.send_all(reinterpret_cast<const std::byte*>(request.data()),
                  request.size(), 2000ms);
  std::string response;
  std::byte buf[1024];
  for (;;) {
    const std::ptrdiff_t n = stream.recv_some(buf, sizeof(buf), 5000ms);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buf),
                    static_cast<std::size_t>(n));
  }
  server.stop_background();
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

}  // namespace
}  // namespace spca
