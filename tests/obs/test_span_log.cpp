// Interval tracing semantics: span ring behavior, JSONL round trips
// (including multi-process concatenation), the ScopedSpan probe, the
// latency-histogram feed, and the structural signature the sim-vs-TCP
// parity tests compare.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span_log.hpp"

namespace spca {
namespace {

Span make_span(const char* node, const char* stage, std::int64_t interval,
               double start = 100.0, double duration = 0.25) {
  Span span;
  span.node = node;
  span.stage = stage;
  span.interval = interval;
  span.start_unix_seconds = start;
  span.duration_seconds = duration;
  return span;
}

TEST(SpanLog, RecordsInOrderAndCountsLifetimeTotal) {
  SpanLog log(8);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
  log.record(make_span("noc", kStageRefit, 3));
  log.record(make_span("monitor1", kStageWireTx, 3));
  const std::vector<Span> spans = log.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].node, "noc");
  EXPECT_EQ(spans[1].node, "monitor1");
  EXPECT_EQ(log.recorded(), 2u);
}

TEST(SpanLog, RingOverwritesOldestWhenFull) {
  SpanLog log(4);
  for (std::int64_t t = 0; t < 10; ++t) {
    log.record(make_span("noc", kStageDecision, t));
  }
  EXPECT_EQ(log.recorded(), 10u);
  const std::vector<Span> spans = log.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: intervals 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].interval, static_cast<std::int64_t>(6 + i));
  }
}

TEST(SpanLog, ClearEmptiesTheRingAndTheLifetimeCount) {
  SpanLog log(4);
  log.record(make_span("noc", kStageRefit, 1));
  log.clear();
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(SpanLog, JsonlRoundTripIsLossless) {
  SpanLog log(16);
  log.record(make_span("monitor2", kStageIngestAbsorb, 7, 1e9 + 0.5, 1e-4));
  log.record(make_span("noc", kStageNocFeed, 7, 1e9 + 0.6, 2.5e-3));
  const std::string jsonl = log.to_jsonl();
  const std::vector<Span> parsed = SpanLog::parse_jsonl(jsonl);
  EXPECT_EQ(parsed, log.snapshot());
}

TEST(SpanLog, ParseJsonlSkipsBlankLinesSoFilesConcatenate) {
  SpanLog monitor_log(4);
  monitor_log.record(make_span("monitor1", kStageSketchClose, 2));
  SpanLog noc_log(4);
  noc_log.record(make_span("noc", kStageRefit, 2));
  const std::string merged =
      monitor_log.to_jsonl() + "\n" + noc_log.to_jsonl();
  const std::vector<Span> parsed = SpanLog::parse_jsonl(merged);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].node, "monitor1");
  EXPECT_EQ(parsed[1].node, "noc");
}

TEST(SpanLog, ParseJsonlRejectsMalformedLines) {
  EXPECT_THROW((void)SpanLog::parse_jsonl("{\"node\":\"noc\"}\n"),
               InputError);
  EXPECT_THROW((void)SpanLog::parse_jsonl("not json\n"), InputError);
}

TEST(SpanLog, RecordFeedsTheStageLatencyHistogram) {
  Histogram& h = MetricsRegistry::global().histogram(
      std::string("spca.latency.") + kStageSketchClose);
  const std::uint64_t before = h.count();
  SpanLog log(4);
  log.record(make_span("monitor1", kStageSketchClose, 0, 1.0, 0.125));
  EXPECT_EQ(h.count(), before + 1);
  EXPECT_GE(h.max(), 0.125);
}

TEST(SpanLog, ConcurrentRecordsAreLossless) {
  SpanLog log(1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&log, w] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span;
        span.node = "monitor" + std::to_string(w);
        span.stage = kStageWireTx;
        span.interval = i;
        log.record(std::move(span));
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(log.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.snapshot().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ScopedSpan, RecordsIntoTheGlobalLogOnDestruction) {
  SpanLog& global = SpanLog::global();
  const std::uint64_t before = global.recorded();
  {
    const ScopedSpan span("test_node", kStageDecision, 42);
  }
  ASSERT_EQ(global.recorded(), before + 1);
  const std::vector<Span> spans = global.snapshot();
  const Span& last = spans.back();
  EXPECT_EQ(last.node, "test_node");
  EXPECT_EQ(last.stage, kStageDecision);
  EXPECT_EQ(last.interval, 42);
  EXPECT_GE(last.duration_seconds, 0.0);
  EXPECT_GT(last.start_unix_seconds, 0.0);
}

TEST(ScopedSpan, DismissCancelsTheRecording) {
  SpanLog& global = SpanLog::global();
  const std::uint64_t before = global.recorded();
  {
    ScopedSpan span("test_node", kStageRefit, 1);
    span.dismiss();
  }
  EXPECT_EQ(global.recorded(), before);
}

TEST(StructuralSignature, StripsTimingAndSortsDeterministically) {
  // Same stages recorded in different orders with different timings must
  // produce equal signatures — that is the sim-vs-TCP comparison.
  const std::vector<Span> a = {
      make_span("noc", kStageRefit, 12, 5.0, 0.1),
      make_span("monitor1", kStageWireTx, 12, 4.0, 0.2),
  };
  const std::vector<Span> b = {
      make_span("monitor1", kStageWireTx, 12, 99.0, 7.0),
      make_span("noc", kStageRefit, 12, 98.0, 8.0),
  };
  const std::vector<std::string> signature = structural_signature(a);
  EXPECT_EQ(signature, structural_signature(b));
  EXPECT_TRUE(std::is_sorted(signature.begin(), signature.end()));
  // A differing stage set must be visible.
  const std::vector<Span> c = {
      make_span("noc", kStageDecision, 12, 5.0, 0.1),
      make_span("monitor1", kStageWireTx, 12, 4.0, 0.2),
  };
  EXPECT_NE(structural_signature(a), structural_signature(c));
}

TEST(RenderBreakdown, GroupsByIntervalWithStageAndNode) {
  const std::vector<Span> spans = {
      make_span("monitor1", kStageSketchClose, 9, 10.0, 1e-4),
      make_span("noc", kStageRefit, 9, 10.1, 2e-3),
      make_span("noc", kStageDecision, 10, 11.0, 5e-5),
  };
  const std::string text = render_breakdown(spans);
  EXPECT_NE(text.find("interval 9"), std::string::npos);
  EXPECT_NE(text.find("interval 10"), std::string::npos);
  EXPECT_NE(text.find(kStageSketchClose), std::string::npos);
  EXPECT_NE(text.find("monitor1"), std::string::npos);
}

}  // namespace
}  // namespace spca
