// File export of the observability state (--metrics-out / --trace-out).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace spca {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

class TempDir final {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("spca-obs-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(Report, WriteTextFileRoundTripsAndThrowsOnBadPath) {
  const TempDir dir;
  const auto file = dir.path() / "out.txt";
  write_text_file(file.string(), "hello\n");
  EXPECT_EQ(slurp(file), "hello\n");
  EXPECT_THROW(write_text_file((dir.path() / "no/such/dir/x").string(), "x"),
               InputError);
}

TEST(Report, ExportWritesGlobalStateAndSkipsEmptyPaths) {
  const TempDir dir;
  MetricsRegistry::global().counter("report.test.counter").inc(11);
  DetectionEvent event;
  event.detector = "report-test";
  event.interval = 123;
  EventTrace::global().record(event);

  const auto metrics = dir.path() / "metrics.json";
  const auto trace = dir.path() / "trace.jsonl";
  export_observability(metrics.string(), trace.string());

  const std::string json = slurp(metrics);
  EXPECT_NE(json.find("\"report.test.counter\":11"), std::string::npos);
  bool found = false;
  for (const DetectionEvent& e : EventTrace::parse_jsonl(slurp(trace))) {
    found = found || e == event;
  }
  EXPECT_TRUE(found);

  // Empty paths are a no-op, not an error.
  export_observability("", "");
}

TEST(Report, FlagsOverloadReadsTheStandardPair) {
  const TempDir dir;
  CliFlags flags("test");
  define_observability_flags(flags);
  const std::string metrics_arg =
      "--metrics-out=" + (dir.path() / "m.json").string();
  const char* argv[] = {"test", metrics_arg.c_str()};
  ASSERT_TRUE(flags.parse(2, argv));
  export_observability(flags);
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "m.json"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "t.jsonl"));
}

}  // namespace
}  // namespace spca
