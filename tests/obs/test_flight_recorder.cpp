// Flight-recorder semantics: disabled-by-default no-ops, ring wrap, the
// JSONL dump format (header line + oldest-first entries), the async-safe
// request/poll dump handshake, and entry serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace spca {
namespace {

namespace fs = std::filesystem;

/// A fresh temp dump directory per test, removed on destruction.
class DumpDir {
 public:
  explicit DumpDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("spca_flight_") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~DumpDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::size_t files() const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(path_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

 private:
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(FlightRecorder, DisabledRecorderIgnoresEverything) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.note("kill", 7, "monitor 1");
  recorder.capture_metrics("interval", 7);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dump("manual"), "");
  // request_dump is safe while disabled and the poll stays a no-op.
  recorder.request_dump();
  EXPECT_EQ(recorder.poll_dump_request(), "");
}

TEST(FlightRecorder, NotesAndMetricSnapshotsLandInTheRing) {
  DumpDir dir("ring");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  EXPECT_TRUE(recorder.enabled());
  recorder.note("kill", 18, "monitor 2 (crash)");
  recorder.capture_metrics("noc_interval", 18);
  const std::vector<FlightEntry> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, "event");
  EXPECT_EQ(entries[0].label, "kill");
  EXPECT_EQ(entries[0].interval, 18);
  EXPECT_EQ(entries[0].detail, "monitor 2 (crash)");
  EXPECT_GT(entries[0].unix_seconds, 0.0);
  EXPECT_EQ(entries[1].kind, "metrics");
  // The metrics entry embeds the full registry JSON.
  EXPECT_NE(entries[1].detail.find("\"counters\""), std::string::npos);
  // Sequence numbers are the lifetime order.
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[1].seq, 1u);
}

TEST(FlightRecorder, RingKeepsOnlyTheMostRecentEntries) {
  DumpDir dir("wrap");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 4);
  for (int i = 0; i < 10; ++i) {
    recorder.note("tick", i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<FlightEntry> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].interval, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(entries[i].seq, 6 + i);
  }
}

TEST(FlightRecorder, DumpWritesHeaderThenEntriesOldestFirst) {
  DumpDir dir("dump");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  recorder.note("reset", 9, "monitor 1");
  recorder.note("divergence");
  const std::string path = recorder.dump("divergence");
  ASSERT_NE(path, "");
  EXPECT_TRUE(fs::exists(path));
  EXPECT_NE(path.find("divergence"), std::string::npos);

  const std::string text = slurp(path);
  std::istringstream lines(text);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"reason\":\"divergence\""), std::string::npos);
  EXPECT_NE(header.find("\"entries\":2"), std::string::npos);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_NE(first.find("\"label\":\"reset\""), std::string::npos);
  EXPECT_NE(first.find("\"interval\":9"), std::string::npos);
  EXPECT_NE(second.find("\"label\":\"divergence\""), std::string::npos);
}

TEST(FlightRecorder, ConsecutiveDumpsGetDistinctPaths) {
  DumpDir dir("multi");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  recorder.note("a");
  const std::string first = recorder.dump("reason");
  const std::string second = recorder.dump("reason");
  ASSERT_NE(first, "");
  ASSERT_NE(second, "");
  EXPECT_NE(first, second);
  EXPECT_EQ(dir.files(), 2u);
}

TEST(FlightRecorder, PollDumpRequestFiresExactlyOncePerRequest) {
  DumpDir dir("poll");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  recorder.note("running", 3);
  // No request pending: nothing happens.
  EXPECT_EQ(recorder.poll_dump_request(), "");
  recorder.request_dump();
  const std::string path = recorder.poll_dump_request();
  ASSERT_NE(path, "");
  EXPECT_TRUE(fs::exists(path));
  // The flag is consumed.
  EXPECT_EQ(recorder.poll_dump_request(), "");
}

TEST(FlightRecorder, ResetDisablesAndClears) {
  DumpDir dir("reset");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  recorder.note("x");
  recorder.reset();
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.note("ignored");
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorder, DumpCountsIntoTheGlobalMetric) {
  DumpDir dir("metric");
  FlightRecorder recorder;
  recorder.configure(dir.str(), 8);
  recorder.note("x");
  Counter& dumps = MetricsRegistry::global().counter("spca.flight.dumps");
  const std::uint64_t before = dumps.value();
  ASSERT_NE(recorder.dump("count"), "");
  EXPECT_EQ(dumps.value(), before + 1);
}

TEST(FlightEntryJson, EscapesEventDetailAndEmbedsMetricsVerbatim) {
  FlightEntry event;
  event.seq = 5;
  event.unix_seconds = 12.5;
  event.kind = "event";
  event.label = "protocol_error";
  event.interval = -1;
  event.detail = "bad \"frame\"\nfrom peer";
  const std::string event_json = to_json(event);
  EXPECT_NE(event_json.find("\\\"frame\\\""), std::string::npos);
  EXPECT_NE(event_json.find("\\n"), std::string::npos);
  EXPECT_EQ(event_json.find('\n'), std::string::npos);

  FlightEntry metrics;
  metrics.kind = "metrics";
  metrics.label = "interval";
  metrics.interval = 3;
  metrics.detail = "{\"counters\":{}}";
  const std::string metrics_json = to_json(metrics);
  EXPECT_NE(metrics_json.find("\"metrics\":{\"counters\":{}}"),
            std::string::npos);
}

}  // namespace
}  // namespace spca
