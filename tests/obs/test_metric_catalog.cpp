// The metric catalog as the enforced source of truth: the table is sorted
// and unique, docs/METRICS.md is exactly its rendering (regenerate with
// SPCA_UPDATE_METRICS_DOC=1), and every spca.* metric a full detection run
// registers has a documented row — an undocumented instrument fails CI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/scenario.hpp"
#include "obs/metric_catalog.hpp"
#include "obs/metrics.hpp"

namespace spca {
namespace {

TEST(MetricCatalog, IsSortedByNameWithoutDuplicates) {
  const std::vector<MetricInfo>& catalog = metric_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].name), std::string(catalog[i].name))
        << "catalog out of order near '" << catalog[i].name << "'";
  }
}

TEST(MetricCatalog, EveryRowHasANonEmptyHelpString) {
  for (const MetricInfo& info : metric_catalog()) {
    EXPECT_NE(std::string(info.help), "") << info.name;
    // Help lines land in a markdown table: pipes would break the row.
    EXPECT_EQ(std::string(info.help).find('|'), std::string::npos)
        << info.name;
  }
}

TEST(MetricCatalog, FindMetricResolvesDocumentedNamesOnly) {
  const MetricInfo* info = find_metric("spca.noc.sketch_pulls");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(std::string(info->name), "spca.noc.sketch_pulls");
  EXPECT_EQ(find_metric("spca.no.such.metric"), nullptr);
  EXPECT_EQ(find_metric(""), nullptr);
}

TEST(MetricCatalog, KindNamesRender) {
  EXPECT_EQ(std::string(to_string(MetricKind::kCounter)), "counter");
  EXPECT_EQ(std::string(to_string(MetricKind::kGauge)), "gauge");
  EXPECT_EQ(std::string(to_string(MetricKind::kHistogram)), "histogram");
}

TEST(MetricCatalog, RenderedDocListsEveryRow) {
  const std::string doc = render_metrics_doc();
  EXPECT_NE(doc.find("# Metrics reference"), std::string::npos);
  for (const MetricInfo& info : metric_catalog()) {
    EXPECT_NE(doc.find(info.name), std::string::npos)
        << "doc is missing " << info.name;
  }
}

TEST(MetricCatalog, DocsFileMatchesTheRenderedCatalog) {
  const std::string path = std::string(SPCA_SOURCE_DIR) + "/docs/METRICS.md";
  const std::string rendered = render_metrics_doc();
  if (std::getenv("SPCA_UPDATE_METRICS_DOC") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " is missing; regenerate it with\n"
      << "  SPCA_UPDATE_METRICS_DOC=1 ctest -R DocsFileMatches";
  std::ostringstream oss;
  oss << in.rdbuf();
  EXPECT_EQ(oss.str(), rendered)
      << "docs/METRICS.md is stale; regenerate it with\n"
      << "  SPCA_UPDATE_METRICS_DOC=1 ctest -R DocsFileMatches";
}

TEST(MetricCatalog, AFullDetectionRunRegistersOnlyDocumentedMetrics) {
  // Drive the whole sim pipeline so the instrumentation sites of every
  // layer below net/ resolve their metrics, then require a catalog row for
  // each. Test-only instruments use the reserved spca.test. prefix and are
  // exempt; names outside spca.* are not part of the public surface.
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 24;
  config.window = 8;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 11;
  config.anomalies = 1;
  const NetScenario scenario = build_scenario(config);
  (void)run_scenario_reference(scenario);

  MetricsRegistry& registry = MetricsRegistry::global();
  const auto check = [&](const std::vector<std::string>& names,
                         MetricKind kind) {
    for (const std::string& name : names) {
      if (name.rfind("spca.", 0) != 0) continue;
      if (name.rfind("spca.test.", 0) == 0) continue;
      const MetricInfo* info = find_metric(name);
      ASSERT_NE(info, nullptr)
          << "metric '" << name << "' is registered at runtime but has no "
          << "row in src/obs/metric_catalog.cpp (add it, then regenerate "
          << "docs/METRICS.md with SPCA_UPDATE_METRICS_DOC=1)";
      EXPECT_EQ(info->kind, kind) << name << " is documented as the wrong "
                                  << "instrument kind";
    }
  };
  check(registry.counter_names(), MetricKind::kCounter);
  check(registry.gauge_names(), MetricKind::kGauge);
  check(registry.histogram_names(), MetricKind::kHistogram);
}

}  // namespace
}  // namespace spca
