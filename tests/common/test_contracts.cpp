#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace spca {
namespace {

TEST(Contracts, ExpectsPassesOnTrueCondition) {
  EXPECT_NO_THROW(SPCA_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsContractViolationOnFalse) {
  EXPECT_THROW(SPCA_EXPECTS(false), ContractViolation);
}

TEST(Contracts, EnsuresThrowsContractViolationOnFalse) {
  EXPECT_THROW(SPCA_ENSURES(2 > 3), ContractViolation);
}

TEST(Contracts, MessageNamesConditionAndLocation) {
  try {
    SPCA_EXPECTS(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresMessageSaysPostcondition) {
  try {
    SPCA_ENSURES(false);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, ConditionWithSideEffectEvaluatedOnce) {
  int calls = 0;
  const auto bump = [&] {
    ++calls;
    return true;
  };
  SPCA_EXPECTS(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace spca
