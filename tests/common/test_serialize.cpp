#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace spca {
namespace {

TEST(ByteWriterReader, ScalarsRoundTrip) {
  ByteWriter out;
  out.put(std::uint8_t{7});
  out.put(std::int64_t{-123456789});
  out.put(3.14159);
  out.put(std::uint32_t{0xdeadbeef});
  const std::vector<std::byte> blob = std::move(out).take();

  ByteReader in(blob);
  EXPECT_EQ(in.get<std::uint8_t>(), 7u);
  EXPECT_EQ(in.get<std::int64_t>(), -123456789);
  EXPECT_EQ(in.get<double>(), 3.14159);
  EXPECT_EQ(in.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_TRUE(in.exhausted());
}

TEST(ByteWriterReader, VectorsRoundTrip) {
  ByteWriter out;
  const std::vector<double> values = {1.0, -2.5, 1e300};
  const std::vector<std::uint32_t> ids = {3, 1, 4, 1, 5};
  out.put_all(values);
  out.put_all(ids);
  const std::vector<std::byte> blob = std::move(out).take();

  ByteReader in(blob);
  EXPECT_EQ(in.get_all<double>(), values);
  EXPECT_EQ(in.get_all<std::uint32_t>(), ids);
  EXPECT_TRUE(in.exhausted());
}

TEST(ByteWriterReader, EmptyVectorRoundTrips) {
  ByteWriter out;
  out.put_all(std::vector<double>{});
  const std::vector<std::byte> blob = std::move(out).take();
  ByteReader in(blob);
  EXPECT_TRUE(in.get_all<double>().empty());
  EXPECT_TRUE(in.exhausted());
}

TEST(ByteReader, TruncatedScalarThrows) {
  ByteWriter out;
  out.put(std::uint8_t{1});
  const std::vector<std::byte> blob = std::move(out).take();
  ByteReader in(blob);
  EXPECT_THROW((void)in.get<std::uint64_t>(), ProtocolError);
}

TEST(ByteReader, TruncatedArrayThrows) {
  ByteWriter out;
  out.put(std::uint64_t{1000});  // claims 1000 doubles follow
  const std::vector<std::byte> blob = std::move(out).take();
  ByteReader in(blob);
  EXPECT_THROW((void)in.get_all<double>(), ProtocolError);
}

TEST(ByteReader, RemainingTracksConsumption) {
  ByteWriter out;
  out.put(std::uint32_t{1});
  out.put(std::uint32_t{2});
  const std::vector<std::byte> blob = std::move(out).take();
  ByteReader in(blob);
  EXPECT_EQ(in.remaining(), 8u);
  (void)in.get<std::uint32_t>();
  EXPECT_EQ(in.remaining(), 4u);
  EXPECT_FALSE(in.exhausted());
}

}  // namespace
}  // namespace spca
