#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "spca_csv_test.csv")
                          .string();

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, RoundTripsHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b", "c"});
    w.row({"1", "2", "3"});
    w.row({"x", "y", "z"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  CsvReader r(path_);
  ASSERT_EQ(r.header(), (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][1], "2");
  EXPECT_EQ(r.rows()[1][2], "z");
}

TEST_F(CsvTest, NumericRowsRoundTripExactly) {
  const double value = 0.1234567890123456789;
  {
    CsvWriter w(path_, {"v"});
    w.row_numeric({value});
  }
  CsvReader r(path_);
  EXPECT_EQ(std::stod(r.rows()[0][0]), value);
}

TEST_F(CsvTest, ColumnLookupFindsAndThrows) {
  {
    CsvWriter w(path_, {"alpha", "beta"});
    w.row({"1", "2"});
  }
  CsvReader r(path_);
  EXPECT_EQ(r.column("beta"), 1u);
  EXPECT_THROW((void)r.column("gamma"), InputError);
}

TEST_F(CsvTest, WriterRejectsWrongWidthRow) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), ContractViolation);
}

TEST_F(CsvTest, WriterRejectsFieldsWithCommas) {
  CsvWriter w(path_, {"a"});
  EXPECT_THROW(w.row({"has,comma"}), ContractViolation);
}

TEST_F(CsvTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(CsvReader("/nonexistent/file.csv"), InputError);
}

TEST_F(CsvTest, ReaderRejectsRaggedRows) {
  {
    std::ofstream out(path_);
    out << "a,b\n1,2\n3\n";
  }
  EXPECT_THROW(CsvReader reader(path_), InputError);
}

TEST(CsvSplit, HandlesEmptyFields) {
  const auto fields = split_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvFormat, FormatDoubleRoundTrips) {
  for (const double v : {1.0, -0.5, 3.141592653589793, 1e-300, 2.5e17}) {
    EXPECT_EQ(std::stod(format_double(v)), v) << v;
  }
}

}  // namespace
}  // namespace spca
