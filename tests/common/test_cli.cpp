#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"

namespace spca {
namespace {

CliFlags make_flags() {
  CliFlags flags("test program");
  flags.define("count", "10", "an integer");
  flags.define("rate", "0.5", "a real");
  flags.define("name", "abc", "a string");
  flags.define("verbose", "false", "a boolean");
  return flags;
}

TEST(CliFlags, DefaultsApplyWithoutArguments) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv.data()));
  EXPECT_EQ(flags.integer("count"), 10);
  EXPECT_DOUBLE_EQ(flags.real("rate"), 0.5);
  EXPECT_EQ(flags.str("name"), "abc");
  EXPECT_FALSE(flags.boolean("verbose"));
}

TEST(CliFlags, ParsesEqualsSyntax) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--count=42", "--rate=2.25"};
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.integer("count"), 42);
  EXPECT_DOUBLE_EQ(flags.real("rate"), 2.25);
}

TEST(CliFlags, ParsesSpaceSyntax) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--name", "hello", "--verbose", "true"};
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.str("name"), "hello");
  EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(CliFlags, HelpShortCircuits) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliFlags, RejectsUnknownFlag) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--nope=1"};
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()),
               InputError);
}

TEST(CliFlags, RejectsMissingValue) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--count"};
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()),
               InputError);
}

TEST(CliFlags, RejectsPositionalArguments) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "stray"};
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()),
               InputError);
}

TEST(CliFlags, RejectsMalformedNumbers) {
  CliFlags flags = make_flags();
  const std::array argv = {"prog", "--count=12x", "--rate=zz"};
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)flags.integer("count"), InputError);
  EXPECT_THROW((void)flags.real("rate"), InputError);
}

TEST(CliFlags, UsageListsFlagsAndDefaults) {
  CliFlags flags = make_flags();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
  EXPECT_NE(usage.find("an integer"), std::string::npos);
}

}  // namespace
}  // namespace spca
