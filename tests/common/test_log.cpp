// Leveled logging: line format, level filtering, SPCA_LOG_LEVEL parsing,
// and the SPCA_LOG_EVERY_N rate limiter.
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "common/log.hpp"

namespace spca {
namespace {

// Every test restores the global level so ordering does not matter.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

 private:
  LogLevel saved_ = LogLevel::kInfo;
};

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST_F(LogTest, ParseLogLevelAcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST_F(LogTest, TimestampIsIso8601UtcWithMilliseconds) {
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z$)");
  EXPECT_TRUE(std::regex_match(detail::iso8601_utc_now(), pattern));
}

TEST_F(LogTest, LinesCarryTimestampAndLevelTag) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello ", 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[INFO\] hello 42\n$)");
  EXPECT_TRUE(std::regex_match(out, pattern)) << out;
}

TEST_F(LogTest, MessagesBelowTheMinimumLevelAreDropped) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_debug("dropped");
  log_info("dropped");
  log_warn("kept");
  log_error("kept");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_lines(out), 2u);
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("[WARN] kept"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] kept"), std::string::npos);
}

TEST_F(LogTest, LogEveryNFiresOnFirstAndEveryNthExecution) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    SPCA_LOG_EVERY_N(5, LogLevel::kInfo, "tick ", i);
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_lines(out), 2u);  // executions 1 and 6
  EXPECT_NE(out.find("tick 0"), std::string::npos);
  EXPECT_NE(out.find("tick 5"), std::string::npos);
}

TEST_F(LogTest, LogEveryNCountsPerCallSite) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) {
    SPCA_LOG_EVERY_N(100, LogLevel::kInfo, "site-a");
  }
  for (int i = 0; i < 3; ++i) {
    SPCA_LOG_EVERY_N(100, LogLevel::kInfo, "site-b");
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_lines(out), 2u);  // first execution of each site
}

}  // namespace
}  // namespace spca
