#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"

namespace spca {
namespace {

TEST(TablePrinter, AlignsColumnsRightJustified) {
  TablePrinter table({"x", "value"});
  table.row({"1", "10"});
  table.row({"100", "2"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  // Widest cells define the column width; shorter cells are padded left.
  EXPECT_NE(out.find("  x  value"), std::string::npos);
  EXPECT_NE(out.find("  1     10"), std::string::npos);
  EXPECT_NE(out.find("100      2"), std::string::npos);
}

TEST(TablePrinter, NumericRowsUseRequestedPrecision) {
  TablePrinter table({"v"});
  table.row_numeric({1.23456789}, 3);
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("1.23"), std::string::npos);
  EXPECT_EQ(oss.str().find("1.2345"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.row({"only"}), ContractViolation);
}

TEST(TablePrinter, CountsRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.size(), 0u);
  table.row({"1"});
  table.row({"2"});
  EXPECT_EQ(table.size(), 2u);
}

TEST(TablePrinter, SeparatorMatchesHeaderWidth) {
  TablePrinter table({"abc"});
  table.row({"xy"});
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("---"), std::string::npos);
}

}  // namespace
}  // namespace spca
